"""Shared fixtures for the benchmark suite.

Each bench regenerates one paper artifact (table, figure, or headline
claim), prints the same rows/series the paper reports, and writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
outputs.

Benches run the ``ci`` measurement preset by default; set the
``REPRO_PRESET`` environment variable to ``paper`` for the full
Sec. 4 protocol (T_sim = 600 s x 3 replicates — hours of compute).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so CI
    can split fast tests from artifact regeneration with ``-m "not
    bench"`` without per-file annotations."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def preset() -> str:
    return os.environ.get("REPRO_PRESET", "ci")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Write a formatted experiment report and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
