"""A1-A3 — ablations of the design choices DESIGN.md calls out.

* A1 (MILP-only): the analytical model alone picks the globally cheapest
  configuration; the bench shows its simulated PDR violates meaningful
  reliability bounds — the reason the paper couples the MILP with a
  simulator at all.
* A2 (α-correction): removing α from the termination bound may stop the
  search prematurely at a worse optimum; the bench quantifies simulations
  saved vs. solution quality.
* A3 (candidate-pool size S): sweeping the per-iteration pool size shows
  the cost/quality trade of the solution-pool heuristic.
"""

import pytest

from repro.experiments.ablations import (
    run_alpha_ablation,
    run_candidate_cap_ablation,
    run_milp_only_ablation,
)


class TestMilpOnlyAblation:
    @pytest.fixture(scope="class")
    def result(self, preset):
        return run_milp_only_ablation(pdr_min=0.95, preset=preset, seed=0)

    def test_bench_milp_only(self, benchmark, result, save_report, preset):
        def render():
            lines = [
                "A1: trusting the analytical model (Eq. 9) alone, "
                f"PDRmin=95% (preset={preset})",
                f"  analytic choice : {result.analytic_choice.label()} "
                f"(P_bar={result.analytic_power_mw:.3f} mW)",
                f"  simulated PDR   : {result.simulated.pdr_percent:.1f}% "
                f"-> {'meets' if result.meets_constraint else 'VIOLATES'} "
                "the bound",
            ]
            if result.alg1_choice is not None:
                lines.append(
                    f"  Algorithm 1     : {result.alg1_choice.label()} "
                    f"(PDR={100 * (result.alg1_pdr or 0):.1f}%)"
                )
            return "\n".join(lines)

        save_report(f"ablation_milp_only_{preset}", benchmark(render))

    def test_analytic_optimum_unreliable(self, result):
        """The coarse model's optimum (min power = lowest TX star) cannot
        satisfy a 95% bound — simulation feedback is necessary."""
        assert not result.meets_constraint

    def test_full_algorithm_fixes_it(self, result):
        assert result.alg1_choice is not None
        assert result.alg1_pdr is not None and result.alg1_pdr >= 0.95


class TestAlphaAblation:
    @pytest.fixture(scope="class")
    def result(self, preset):
        return run_alpha_ablation(pdr_min=0.8, preset=preset, seed=0)

    def test_bench_alpha(self, benchmark, result, save_report, preset):
        def render():
            return (
                f"A2: alpha-corrected termination, PDRmin=80% (preset={preset})\n"
                f"  with alpha    : P={result.with_alpha_power_mw} mW in "
                f"{result.with_alpha_simulations} simulations\n"
                f"  without alpha : P={result.without_alpha_power_mw} mW in "
                f"{result.without_alpha_simulations} simulations\n"
                f"  premature termination without alpha: "
                f"{result.premature_termination}"
            )

        save_report(f"ablation_alpha_{preset}", benchmark(render))

    def test_both_variants_found_solutions(self, result):
        assert result.with_alpha_power_mw is not None
        assert result.without_alpha_power_mw is not None

    def test_alpha_never_worse_quality(self, result):
        """With α the search can only run longer, never return a worse
        optimum."""
        assert (
            result.with_alpha_power_mw
            <= result.without_alpha_power_mw + 1e-9
        )

    def test_dropping_alpha_saves_simulations(self, result):
        assert (
            result.without_alpha_simulations <= result.with_alpha_simulations
        )


class TestCandidateCapAblation:
    @pytest.fixture(scope="class")
    def result(self, preset):
        return run_candidate_cap_ablation(
            pdr_min=0.8, preset=preset, seed=0, caps=[4, 16, 64]
        )

    def test_bench_candidate_cap(self, benchmark, result, save_report, preset):
        def render():
            lines = [f"A3: candidate-pool size S, PDRmin=80% (preset={preset})"]
            for cap, (sims, power, iters) in result.by_cap.items():
                lines.append(
                    f"  S={cap}: {sims} fresh simulations, "
                    f"{iters} iterations, optimum P={power} mW"
                )
            return "\n".join(lines)

        save_report(f"ablation_candidate_cap_{preset}", benchmark(render))

    def test_all_caps_found_solutions(self, result):
        assert all(power is not None for _s, power, _i in result.by_cap.values())

    def test_larger_pools_weakly_better_quality(self, result):
        caps = sorted(k for k in result.by_cap)
        powers = [result.by_cap[c][1] for c in caps]
        # A larger pool sees a superset of candidates per level; with the
        # shared oracle its optimum power can only improve or tie.
        assert powers == sorted(powers, reverse=True) or len(set(powers)) == 1
