"""R2 — regenerate the comparison with simulated annealing.

The paper reports that Algorithm 1 runs on average 3x faster than
simulated annealing across the PDR_min range of interest.  Cost is counted
in distinct simulations over *complete runs*: Algorithm 1 stops when its
optimum is certified; SA has no certificate and must finish its cooling
schedule before it has an answer at all.  Each row also records whether
SA's final answer matched Algorithm 1's solution quality.
"""

import pytest

from repro.experiments.annealing_cmp import (
    format_annealing_comparison,
    run_annealing_comparison,
)

#: A subset of the sweep keeps the bench affordable; the three bounds span
#: the star regime, the transition, and the mesh regime.
BENCH_BOUNDS = (0.50, 0.80, 0.95)


@pytest.fixture(scope="module")
def data(preset):
    return run_annealing_comparison(
        preset=preset, seed=0, pdr_mins=BENCH_BOUNDS, sa_steps=150
    )


def test_bench_annealing(benchmark, data, save_report, preset):
    table = benchmark(format_annealing_comparison, data)
    assert "speedup" in table
    save_report(f"annealing_{preset}", table)


class TestSpeedupShape:
    def test_rows_complete(self, data):
        assert set(data.rows) == set(BENCH_BOUNDS)
        for row in data.rows.values():
            assert row.alg1_simulations > 0
            assert row.sa_simulations > 0

    def test_alg1_found_solutions_everywhere(self, data):
        assert all(r.alg1_power_mw is not None for r in data.rows.values())

    def test_mean_speedup_at_least_two(self, data):
        """Paper: ~3x on their instances; assert the same direction with
        headroom for protocol noise (>= 2x mean)."""
        assert data.mean_speedup >= 2.0

    def test_alg1_never_slower(self, data):
        assert all(r.speedup >= 1.0 for r in data.rows.values())
