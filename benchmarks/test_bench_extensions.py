"""E1-E3 — extension benches (no direct paper artifact; they quantify the
design arguments the paper makes in prose).

* E1 quantifies Sec. 2.1.2's flooding-vs-forwarding argument;
* E2 quantifies the daily-activity channel effect the NICTA traces embed;
* E3 runs the reliability-first dual formulation the introduction
  motivates with the insulin-pump example.
"""

import pytest

from repro.experiments.extensions import (
    format_dual_staircase,
    format_posture_sensitivity,
    format_routing_comparison,
    run_dual_staircase,
    run_posture_sensitivity,
    run_routing_comparison,
)
from repro.library.mac_options import RoutingKind


class TestRoutingComparison:
    @pytest.fixture(scope="class")
    def data(self, preset):
        return run_routing_comparison(preset=preset, seed=0)

    def test_bench_routing_comparison(self, benchmark, data, save_report, preset):
        table = benchmark(format_routing_comparison, data)
        save_report(f"ext_routing_{preset}", table)

    def test_flooding_most_reliable_and_most_expensive(self, data):
        star = data.rows[RoutingKind.STAR]
        mesh = data.rows[RoutingKind.MESH]
        p2p = data.rows[RoutingKind.P2P]
        assert mesh.pdr >= star.pdr
        assert mesh.pdr >= p2p.pdr
        assert mesh.power_mw > star.power_mw
        assert mesh.power_mw > p2p.power_mw

    def test_p2p_cheapest_transmission_count(self, data):
        counts = {r: row.transmissions for r, row in data.rows.items()}
        assert counts[RoutingKind.P2P] <= counts[RoutingKind.STAR]
        assert counts[RoutingKind.P2P] < counts[RoutingKind.MESH]


class TestPostureSensitivity:
    @pytest.fixture(scope="class")
    def data(self, preset):
        return run_posture_sensitivity(preset=preset, seed=0)

    def test_bench_posture(self, benchmark, data, save_report, preset):
        table = benchmark(format_posture_sensitivity, data)
        save_report(f"ext_posture_{preset}", table)

    def test_posture_costs_reliability(self, data):
        for routing, (plain, postured) in data.rows.items():
            assert postured <= plain + 0.01, routing

    def test_flooding_more_robust_than_single_path_forwarding(self, data):
        """Redundancy absorbs the posture-induced losses better than the
        single-route scheme: P2P pays the largest reliability cost."""
        costs = {
            routing: plain - postured
            for routing, (plain, postured) in data.rows.items()
        }
        assert costs[RoutingKind.MESH] <= costs[RoutingKind.P2P] + 0.01


class TestDualStaircase:
    @pytest.fixture(scope="class")
    def data(self, preset):
        return run_dual_staircase(preset=preset, seed=0)

    def test_bench_dual(self, benchmark, data, save_report, preset):
        table = benchmark(format_dual_staircase, data)
        save_report(f"ext_dual_{preset}", table)

    def test_all_bounds_feasible(self, data):
        assert all(r.found for r in data.results.values())

    def test_looser_lifetime_never_less_reliable(self, data):
        bounds = sorted(data.results)  # ascending lifetime requirement
        pdrs = [data.results[b].best.pdr for b in bounds]
        # Tighter lifetime requirement (larger bound) -> PDR can only drop.
        for looser, tighter in zip(pdrs, pdrs[1:]):
            assert tighter <= looser + 1e-9

    def test_solutions_respect_their_budget(self, data):
        for bound, result in data.results.items():
            assert result.best.power_mw <= result.max_power_mw + 1e-9
            assert result.best.nlt_days >= bound - 1e-6
