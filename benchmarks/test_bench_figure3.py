"""F3 — regenerate Figure 3: PDR vs. NLT scatter of MILP-suggested
configurations with the optimum per PDR_min (the paper's arrows).

Asserted shape (robust to the ``ci`` preset's single-replicate estimator
noise; the strictest claims are checked only under ``REPRO_PRESET=paper``):

* feasible configurations span a wide PDR range and NLT from ~10 days to
  over a month (paper: 0-100% and 2 days to >1 month);
* loose bounds select a minimum-size star at reduced TX power;
* tightening the bound first raises TX power within the star, then
  switches the routing to mesh (paper: crossover above ~90%);
* the optimum's lifetime decreases monotonically as PDR_min rises;
* under the paper protocol, the 100%-reliability optimum is a mesh with an
  extra (5th) node and a lifetime of only days.
"""

import pytest

from repro.experiments.figure3 import format_figure3, run_figure3
from repro.library.mac_options import RoutingKind


@pytest.fixture(scope="module")
def data(preset):
    return run_figure3(preset=preset, seed=0)


def test_bench_figure3(benchmark, data, save_report, preset):
    # The experiment itself runs once (module fixture); the benchmark hook
    # times the cached-scatter reconstruction so pytest-benchmark reports
    # the artifact without re-simulating for minutes per round.
    series = benchmark(data.scatter_series)
    assert len(series) == len(data.scatter)
    save_report(f"figure3_{preset}", format_figure3(data))


class TestScatterShape:
    def test_scatter_covers_wide_pdr_range(self, data):
        pdrs = [e.pdr_percent for e in data.scatter]
        assert min(pdrs) < 60.0
        assert max(pdrs) > 99.0

    def test_scatter_covers_wide_lifetime_range(self, data):
        nlts = [e.nlt_days for e in data.scatter]
        assert max(nlts) > 25.0  # the star regime lives about a month
        assert min(nlts) < 15.0  # the mesh regime pays days of lifetime
        assert max(nlts) / min(nlts) > 3.0

    def test_mesh_points_trade_lifetime_for_reliability(self, data):
        star = [e for e in data.scatter if e.config.routing is RoutingKind.STAR]
        mesh = [e for e in data.scatter if e.config.routing is RoutingKind.MESH]
        assert star and mesh
        # Mesh at full TX power is more reliable and shorter-lived than the
        # star population on average.
        star_top = max(e.pdr for e in star)
        mesh_top = max(e.pdr for e in mesh)
        assert mesh_top >= star_top
        assert min(e.nlt_days for e in mesh) < min(e.nlt_days for e in star)


class TestOptimaStaircase:
    def test_all_bounds_feasible(self, data):
        assert all(best is not None for best in data.optima.values())

    def test_loose_bound_minimum_star(self, data):
        lowest = min(data.optima)
        best = data.optima[lowest]
        assert best.config.routing is RoutingKind.STAR
        assert best.config.num_nodes == 4
        assert best.config.tx_dbm < 0.0  # reduced TX power

    def test_strictest_bound_mesh(self, data):
        highest = max(data.optima)
        best = data.optima[highest]
        assert best.config.routing is RoutingKind.MESH

    def test_lifetime_monotone_in_bound(self, data):
        bounds = sorted(data.optima)
        lifetimes = [data.optima[b].nlt_days for b in bounds]
        for earlier, later in zip(lifetimes, lifetimes[1:]):
            assert later <= earlier + 1e-9

    def test_tx_power_never_decreases_within_star_regime(self, data):
        bounds = sorted(data.optima)
        star_tx = [
            data.optima[b].config.tx_dbm
            for b in bounds
            if data.optima[b].config.routing is RoutingKind.STAR
        ]
        for earlier, later in zip(star_tx, star_tx[1:]):
            assert later >= earlier - 1e-9

    def test_optima_meet_their_bounds(self, data):
        for bound, best in data.optima.items():
            assert best.pdr >= bound - 1e-12

    def test_paper_preset_fifth_node_at_full_reliability(self, data, preset):
        if preset != "paper":
            pytest.skip("strict 100%-bound structure asserted under the "
                        "paper protocol only (CI estimator noise)")
        best = data.optima[max(data.optima)]
        assert best.config.num_nodes >= 5
        assert best.nlt_days < 10.0
