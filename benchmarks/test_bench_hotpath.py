"""Hot-path microbenchmarks: DES kernel, PHY fan-out, MILP warm starts,
batched ensemble kernel.

Runs the same five measurements as ``repro bench`` (see
``repro.bench.hotpath``) and writes ``BENCH_hotpath.json`` to the repo
root plus a copy under ``benchmarks/results/``.

Opt-in like every bench (``pytest benchmarks/``): tier-1 never pays for
this.  The assertions are about *correctness* — the legacy reference
stack and the optimized stack must produce bit-identical simulations and
identical MILP optima — not about wall-clock ratios, which depend on the
machine and its load.  The committed artifact records the measured
speedups together with an explanatory note.
"""

import json
import pathlib

import pytest

from repro.bench.hotpath import run_hotpath_benchmarks, write_report

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = "BENCH_hotpath.json"


@pytest.fixture(scope="module")
def report(preset):
    return run_hotpath_benchmarks(preset=preset, repeats=3)


def test_bench_hotpath(report, preset, results_dir):
    # Correctness gates: the harness itself raises if either side of any
    # A/B pair diverges, so reaching this point already proves equality.
    assert report["des_throughput"]["identical_event_counts"]
    assert report["single_replicate"]["bit_identical_outcome"]
    assert report["milp_warm_vs_cold"]["identical_objectives"]
    assert report["explore_smoke"]["status"] == "optimal"
    assert report["ensemble_batched"]["identical_outcomes"]

    write_report(report, str(REPO_ROOT / ARTIFACT))
    write_report(report, str(results_dir / ARTIFACT))
    print(f"\n{json.dumps(report, indent=2)}\n"
          f"[saved to {REPO_ROOT / ARTIFACT}]")

    # Sanity on the measured ratios (not a speed assertion: those numbers
    # are meaningful only on a quiet machine; the committed artifact is
    # produced by a dedicated `repro bench` run).
    assert report["speedup_single_replicate"] > 0
    assert report["speedup_milp_warm"] > 0
    assert report["speedup_ensemble_batched"] > 0
