"""P1 — microbenchmark of the parallel oracle and the persistent cache.

Times the same small configuration sweep three ways — serial
(``n_jobs=1``), parallel (``n_jobs=2``), and warm-disk-cache — and writes
the measurements to ``BENCH_parallel.json`` (repo root, plus a copy under
``benchmarks/results/``).

Opt-in like every bench (``pytest benchmarks/``): tier-1 never pays for
this.  The assertions are deliberately about *correctness* (bit-identical
results, zero warm-cache simulations), not speed: wall-clock speedup
depends on the core count of the machine, and a single-core box (CI
containers often are) cannot show one — process fan-out there only adds
fork/IPC overhead.  The JSON artifact records ``cpu_count`` and an
explanatory note so the numbers are interpretable either way.
"""

import json
import os
import pathlib
import time

import pytest

from repro.core.evaluator import SimulationOracle
from repro.experiments.scenario import make_scenario, make_space

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = "BENCH_parallel.json"
SWEEP_SIZE = 12


def _sweep_configs(preset):
    space = make_space(preset)
    configs = list(space.feasible_configurations())
    # Spread the sample across the grid so per-config costs vary the way a
    # real sweep's do (different node counts / routing schemes).
    step = max(1, len(configs) // SWEEP_SIZE)
    return configs[::step][:SWEEP_SIZE]


def _timed_sweep(scenario, configs, n_jobs):
    start = time.perf_counter()
    with SimulationOracle(scenario, n_jobs=n_jobs) as oracle:
        records = oracle.evaluate_many(configs)
        stats = oracle.stats()
    return records, stats, time.perf_counter() - start


@pytest.fixture(scope="module")
def measurements(preset, tmp_path_factory):
    configs = _sweep_configs(preset)
    scenario = make_scenario(preset, seed=0)

    serial_records, serial_stats, serial_wall = _timed_sweep(
        scenario, configs, n_jobs=1
    )
    parallel_records, parallel_stats, parallel_wall = _timed_sweep(
        scenario, configs, n_jobs=2
    )

    cache_dir = tmp_path_factory.mktemp("oracle-cache")
    cached_scenario = make_scenario(preset, seed=0, cache_dir=str(cache_dir))
    _timed_sweep(cached_scenario, configs, n_jobs=1)  # populate the cache
    warm_records, warm_stats, warm_wall = _timed_sweep(
        cached_scenario, configs, n_jobs=1
    )

    return {
        "configs": configs,
        "serial": (serial_records, serial_stats, serial_wall),
        "parallel": (parallel_records, parallel_stats, parallel_wall),
        "warm": (warm_records, warm_stats, warm_wall),
    }


def test_bench_parallel(measurements, preset, results_dir):
    serial_records, serial_stats, serial_wall = measurements["serial"]
    parallel_records, parallel_stats, parallel_wall = measurements["parallel"]
    warm_records, warm_stats, warm_wall = measurements["warm"]

    # Correctness first: fan-out and cache replay reproduce serial exactly.
    for a, b in zip(serial_records, parallel_records):
        assert a.pdr == b.pdr
        assert a.power_mw == b.power_mw
        assert a.nlt_days == b.nlt_days
    for a, b in zip(serial_records, warm_records):
        assert a.pdr == b.pdr and a.power_mw == b.power_mw
    assert warm_stats["simulations_run"] == 0
    assert warm_stats["cache_hits"] == len(serial_records)

    cpu_count = os.cpu_count() or 1
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else float("inf")
    if cpu_count < 2:
        note = (
            f"machine has {cpu_count} CPU core(s): two worker processes "
            "time-slice one core, so process fan-out cannot beat serial "
            "here (fork/IPC overhead only). Expect >=1.3x with 2 workers "
            "on a multi-core machine; results are bit-identical either way."
        )
    elif speedup >= 1.3:
        note = "parallel speedup meets the >=1.3x target with 2 workers."
    else:
        note = (
            "speedup below the 1.3x target despite multiple cores — the "
            "per-configuration simulations of this preset may be too short "
            "to amortize process fan-out; try REPRO_PRESET=paper."
        )

    payload = {
        "benchmark": "parallel_oracle_sweep",
        "preset": preset,
        "sweep_configurations": len(serial_records),
        "cpu_count": cpu_count,
        "serial_wall_seconds": round(serial_wall, 4),
        "parallel_wall_seconds": round(parallel_wall, 4),
        "parallel_n_jobs": 2,
        "speedup_parallel_vs_serial": round(speedup, 3),
        "warm_cache_wall_seconds": round(warm_wall, 4),
        "speedup_warm_cache_vs_serial": round(
            serial_wall / warm_wall if warm_wall > 0 else float("inf"), 1
        ),
        "warm_cache_simulations_run": warm_stats["simulations_run"],
        "serial_p50_wall_seconds": serial_stats["p50_wall_seconds"],
        "serial_p95_wall_seconds": serial_stats["p95_wall_seconds"],
        "bit_identical_serial_vs_parallel": True,
        "note": note,
    }
    text = json.dumps(payload, indent=2)
    (REPO_ROOT / ARTIFACT).write_text(text + "\n")
    (results_dir / ARTIFACT).write_text(text + "\n")
    print(f"\n{text}\n[saved to {REPO_ROOT / ARTIFACT}]")

    # The warm cache must win regardless of core count: replaying JSONL is
    # orders of magnitude cheaper than event-driven simulation.
    assert warm_wall < serial_wall
    # On a multi-core machine the parallel sweep must not lose to serial.
    if cpu_count >= 2:
        assert parallel_wall <= serial_wall * 1.05
