"""R1 — regenerate the "87% fewer simulations than exhaustive search"
comparison.

Exhaustive search needs one simulation per constraint-satisfying
configuration (1,320 in the design example's space); Algorithm 1 simulates
only the MILP-suggested candidate pools it visits.  The bench prints the
per-PDR_min reduction table and asserts a substantial mean reduction.
"""

import pytest

from repro.experiments.reduction import format_reduction, run_reduction


@pytest.fixture(scope="module")
def data(preset):
    return run_reduction(preset=preset, seed=0)


def test_bench_reduction(benchmark, data, save_report, preset):
    table = benchmark(format_reduction, data)
    assert "reduction" in table
    save_report(f"reduction_{preset}", table)


class TestReductionShape:
    def test_exhaustive_count_matches_design_space(self, data):
        assert data.exhaustive_simulations == 1320

    def test_every_run_cheaper_than_exhaustive(self, data):
        for pdr_min, sims in data.algorithm_simulations.items():
            assert 0 < sims < data.exhaustive_simulations, pdr_min

    def test_mean_reduction_substantial(self, data):
        """The paper reports 87%; our candidate pools and level walk differ
        in detail, so assert the same order of magnitude (>= 70%)."""
        assert data.mean_reduction_percent >= 70.0

    def test_loose_bounds_converge_fastest(self, data):
        sims = data.algorithm_simulations
        loosest, strictest = min(sims), max(sims)
        assert sims[loosest] <= sims[strictest]
