"""Micro-benchmarks of the substrates underneath the reproduction.

Not a paper artifact — these keep the cost of the building blocks visible
so regressions in the event kernel, the channel samplers, the network
stack, or the MILP solver show up in the benchmark report before they
silently inflate the experiment runtimes.
"""

from repro.channel.link import Channel
from repro.core.milp_builder import MilpFormulation
from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.experiments.scenario import make_problem
from repro.library.mac_options import MacKind, MacOptions, RoutingKind, RoutingOptions
from repro.library.radios import CC2650
from repro.net.app import AppParameters
from repro.net.network import Network


def test_bench_event_kernel(benchmark):
    """Throughput of the bare event loop (schedule + dispatch)."""

    def run():
        sim = Simulator()

        def reschedule(remaining):
            if remaining:
                sim.schedule(0.001, reschedule, remaining - 1)

        for _ in range(100):
            sim.schedule(0.0, reschedule, 99)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 100 * 100


def test_bench_channel_sampling(benchmark):
    """Cost of one instantaneous path-loss query (OU + shadowing)."""
    channel = Channel(RngStreams(seed=0))
    state = {"t": 0.0}

    def sample():
        state["t"] += 0.01
        return channel.path_loss(0, 3, state["t"])

    value = benchmark(sample)
    assert 40.0 < value < 140.0


def test_bench_star_network_second(benchmark):
    """One simulated second of the 4-node star at the design example's
    traffic (the inner loop of every Figure 3 point)."""

    def run():
        network = Network(
            placement=(0, 1, 3, 6),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(0.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.STAR, coordinator=0),
            app_params=AppParameters(),
            seed=0,
        )
        return network.run(tsim_s=1.0).pdr

    pdr = benchmark(run)
    assert 0.0 <= pdr <= 1.0


def test_bench_mesh_network_second(benchmark):
    """One simulated second of the 5-node mesh (the most event-dense
    configuration class in the design space)."""

    def run():
        network = Network(
            placement=(0, 1, 3, 4, 5),
            radio_spec=CC2650,
            tx_mode=CC2650.tx_mode_by_dbm(0.0),
            mac_options=MacOptions(kind=MacKind.TDMA),
            routing_options=RoutingOptions(kind=RoutingKind.MESH, max_hops=2),
            app_params=AppParameters(),
            seed=0,
        )
        return network.run(tsim_s=1.0).pdr

    pdr = benchmark(run)
    assert 0.0 <= pdr <= 1.0


def test_bench_milp_level_solve(benchmark):
    """One RunMILP call (solve + tied-optimum expansion) on the full
    design-example model with an active power cut."""
    formulation = MilpFormulation(make_problem(0.9, "ci"))
    levels = formulation.distinct_power_levels_mw()

    def solve():
        status, configs, p_star = formulation.enumerate_candidates(
            [levels[2]], max_solutions=16
        )
        return configs

    configs = benchmark(solve)
    assert configs
