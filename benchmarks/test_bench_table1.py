"""T1 — regenerate Table 1 (TI CC2650 radio specifications).

The table is a library transcription; the bench asserts the paper's exact
values and times the component-library access path (trivially fast, but it
keeps the artifact in the benchmark report alongside the others).
"""

from repro.experiments.table1 import format_table1, table1_rows
from repro.library.radios import CC2650


def test_bench_table1(benchmark, save_report):
    rows = benchmark(table1_rows)

    # The paper's exact numbers.
    by_param = {r["parameter"]: r for r in rows}
    assert by_param["fc"]["value"] == 2.4
    assert by_param["BR"]["value"] == 1024.0
    assert by_param["RxdBm"]["value"] == -97.0
    assert by_param["RxmW"]["value"] == 17.7
    assert by_param["Tx mode p1"]["TxdBm"] == -20.0
    assert by_param["Tx mode p1"]["TxmW"] == 9.55
    assert by_param["Tx mode p2"]["TxdBm"] == -10.0
    assert by_param["Tx mode p2"]["TxmW"] == 11.56
    assert by_param["Tx mode p3"]["TxdBm"] == 0.0
    assert by_param["Tx mode p3"]["TxmW"] == 18.3

    # Derived quantity used throughout Sec. 4.1.
    assert abs(CC2650.packet_airtime_s(100) - 800 / 1024e3) < 1e-12

    save_report("table1", format_table1())
