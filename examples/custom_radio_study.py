#!/usr/bin/env python3
"""Scenario: swapping the radio — exploring beyond the paper's library.

The methodology is radio-agnostic: the component library carries the radio
parameters (Eq. 2) and everything downstream — the analytical power model,
the MILP cost table, the simulator's link budgets — derives from them.
This study re-runs the mapping problem with a sub-GHz low-power radio
(better sensitivity, lower RX draw, slower bit rate) and contrasts the
selected designs, demonstrating how the framework answers "what if we
changed chips?" without touching any algorithm code.

Note the interacting effects the coarse model captures: the sub-GHz radio's
longer airtime (lower BR) raises the per-packet energy and channel
occupancy, while its sensitivity closes links at lower TX power.
"""

import dataclasses

from repro import HumanIntranetExplorer
from repro.core.design_space import DesignSpace
from repro.core.problem import DesignProblem
from repro.experiments.scenario import get_preset, make_scenario
from repro.library.radios import CC1310_LIKE, CC2650


def explore_with_radio(radio, tx_levels, pdr_min: float = 0.9):
    # The TDMA slot must fit the radio's airtime: a slower bit rate means
    # longer packets, so the slot scales with the chip (the design
    # example's 1 ms slot is CC2650-specific).
    slot_s = max(1e-3, 1.25 * radio.packet_airtime_s(100))
    scenario = dataclasses.replace(
        make_scenario("ci", seed=0), radio=radio, tdma_slot_s=slot_s
    )
    space = DesignSpace(tx_levels_dbm=tx_levels)
    problem = DesignProblem(pdr_min=pdr_min, scenario=scenario, space=space)
    preset = get_preset("ci")
    explorer = HumanIntranetExplorer(problem, candidate_cap=preset.candidate_cap)
    return explorer.explore()


def main() -> None:
    pdr_min = 0.9
    print(f"Radio substitution study at PDRmin = {100 * pdr_min:.0f}%\n")

    for radio, levels in (
        (CC2650, (-20.0, -10.0, 0.0)),
        (CC1310_LIKE, (-10.0, 0.0, 10.0)),
    ):
        tpkt_ms = 1e3 * radio.packet_airtime_s(100)
        print(
            f"{radio.name}: sensitivity {radio.sensitivity_dbm:.0f} dBm, "
            f"Rx {radio.rx_power_mw:.1f} mW, Tpkt {tpkt_ms:.2f} ms"
        )
        result = explore_with_radio(radio, levels, pdr_min)
        if result.best is None:
            print("  -> infeasible\n")
            continue
        best = result.best
        print(
            f"  -> {best.config.label()}  PDR={best.pdr_percent:.1f}%  "
            f"NLT={best.nlt_days:.1f} days  "
            f"({result.simulations_run} simulations)\n"
        )

    print(
        "Reading: the sub-GHz radio's 13 dB sensitivity advantage closes\n"
        "the limb links at lower TX power, but its 2x airtime raises the\n"
        "RX-side energy of every overheard packet; which effect wins is\n"
        "exactly the kind of cross-layer question the explorer settles\n"
        "quantitatively."
    )


if __name__ == "__main__":
    main()
