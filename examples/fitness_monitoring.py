#!/usr/bin/env python3
"""Scenario: everyday fitness monitoring — lifetime first.

The paper's introduction motivates this class of application directly:
"for an everyday physical activity monitoring application, achieving the
longest possible battery lifetime is preferred, while a few packet drops
can occasionally be tolerated."

We therefore solve the mapping problem with a relaxed reliability bound
(PDR_min = 60%) and compare the selected design against progressively
stricter bounds, showing how much lifetime each extra "nine" of
reliability costs — the trade-off curve a product team would actually
consult.
"""

from repro import HumanIntranetExplorer, make_problem
from repro.core.evaluator import SimulationOracle
from repro.experiments.scenario import get_preset, make_scenario


def main() -> None:
    preset = get_preset("ci")
    scenario = make_scenario("ci", seed=0)
    oracle = SimulationOracle(scenario)  # shared: stricter runs reuse sims

    print("Fitness-monitoring study: lifetime cost of reliability")
    print(f"{'PDRmin':>8}  {'configuration':<42} {'PDR':>7}  {'NLT':>9}")
    previous_nlt = None
    for pdr_min in (0.60, 0.80, 0.90, 0.95):
        problem = make_problem(pdr_min, "ci", seed=0)
        explorer = HumanIntranetExplorer(
            problem, oracle=oracle, candidate_cap=preset.candidate_cap
        )
        result = explorer.explore()
        if result.best is None:
            print(f"{100 * pdr_min:>7.0f}%  infeasible")
            continue
        best = result.best
        delta = ""
        if previous_nlt is not None:
            delta = f"  ({best.nlt_days - previous_nlt:+.1f} d vs previous)"
        print(
            f"{100 * pdr_min:>7.0f}%  {best.config.label():<42} "
            f"{best.pdr_percent:>6.1f}%  {best.nlt_days:>6.1f} d{delta}"
        )
        previous_nlt = best.nlt_days

    print()
    print(
        "Reading: at fitness-grade reliability the explorer picks a small\n"
        "star at reduced TX power (a month of battery); each reliability\n"
        "step first buys TX power, then switches the routing to mesh,\n"
        "trading days of lifetime for redundancy."
    )


if __name__ == "__main__":
    main()
