#!/usr/bin/env python3
"""Scenario: designing against a battery-replacement schedule.

A deployment often starts from the other end of the trade-off: the clinic
schedules battery swaps (say, every two weeks), and the designer wants the
most reliable network that survives until the next appointment.  This is
the dual of the paper's Problem (8) — maximize PDR subject to NLT ≥ bound —
implemented by ``HumanIntranetExplorer.explore_max_reliability``.

The study sweeps maintenance intervals from monthly to every-other-day,
prints the best design per schedule, and overlays the selected points on
the Pareto front of everything evaluated along the way.
"""

from repro import HumanIntranetExplorer, make_problem
from repro.analysis.pareto import front_summary, pareto_front
from repro.core.evaluator import SimulationOracle
from repro.experiments.scenario import get_preset, make_scenario


def main() -> None:
    preset = get_preset("ci")
    scenario = make_scenario("ci", seed=0)
    oracle = SimulationOracle(scenario)
    problem = make_problem(0.5, "ci", seed=0)  # pdr_min unused by the dual
    explorer = HumanIntranetExplorer(
        problem, oracle=oracle, candidate_cap=preset.candidate_cap
    )

    print("Battery-schedule study: best reliability per maintenance interval")
    print(f"{'swap every':>12}  {'best design':<44} {'PDR':>7}  {'NLT':>8}")
    for days in (30.0, 14.0, 7.0, 2.0):
        result = explorer.explore_max_reliability(min_lifetime_days=days)
        if result.best is None:
            print(f"{days:>9.0f} d   (infeasible at this budget)")
            continue
        best = result.best
        print(
            f"{days:>9.0f} d   {best.config.label():<44} "
            f"{best.pdr_percent:>6.1f}%  {best.nlt_days:>6.1f} d"
        )

    print()
    print(front_summary(pareto_front(oracle.all_records)))
    print()
    print(
        "Reading: a monthly swap schedule forces a reduced-power star; a\n"
        "weekly schedule affords the full-power star; once swaps are\n"
        "frequent enough, the budget admits mesh redundancy and the\n"
        "reliability ceiling."
    )


if __name__ == "__main__":
    main()
