#!/usr/bin/env python3
"""Quickstart: explore the paper's design example end to end.

This walks the public API in the order a new user would:

1. inspect the component library (Table 1 radio, batteries, locations);
2. look at the design space and its constraints (Sec. 4.1);
3. simulate one hand-picked configuration;
4. run Algorithm 1 to find the lifetime-optimal configuration for a
   90% reliability bound.

Run time is a few tens of seconds (``ci`` measurement preset).
"""

from repro import HumanIntranetExplorer, make_problem
from repro.core.design_space import Configuration
from repro.core.evaluator import SimulationOracle
from repro.experiments.scenario import get_preset, make_scenario, make_space
from repro.experiments.table1 import format_table1
from repro.library.locations import LOCATION_SHORT_NAMES
from repro.library.mac_options import MacKind, RoutingKind


def main() -> None:
    # 1. The component library ------------------------------------------------
    print(format_table1())
    print()

    # 2. The design space ------------------------------------------------------
    space = make_space()
    print("Design space of the Sec. 4.1 example:")
    print(f"  grid points:                  {space.total_size}")
    print(f"  constraint-satisfying points: {space.feasible_count()}")
    print(f"  body locations: {sorted(LOCATION_SHORT_NAMES.values())}")
    print()

    # 3. Simulate one configuration manually ----------------------------------
    scenario = make_scenario(preset="ci", seed=0)
    oracle = SimulationOracle(scenario)
    config = Configuration(
        placement=(0, 1, 3, 6),  # chest, left hip, left ankle, right wrist
        tx_dbm=-10.0,
        mac=MacKind.CSMA,
        routing=RoutingKind.STAR,
    )
    record = oracle.evaluate(config)
    print(f"Hand-picked configuration {config.label()}:")
    print(f"  PDR  = {record.pdr_percent:.1f} %")
    print(f"  P    = {record.power_mw:.3f} mW (worst battery-limited node)")
    print(f"  NLT  = {record.nlt_days:.1f} days on a CR2032")
    print()

    # 4. Run Algorithm 1 --------------------------------------------------------
    pdr_min = 0.90
    problem = make_problem(pdr_min, preset="ci", seed=0)
    preset = get_preset("ci")
    explorer = HumanIntranetExplorer(
        problem, oracle=oracle, candidate_cap=preset.candidate_cap
    )
    result = explorer.explore()
    print(f"Algorithm 1 at PDRmin = {100 * pdr_min:.0f} %:")
    print(f"  {result.summary()}")
    print("  iteration trace:")
    for it in result.iterations:
        print(
            f"    #{it.index}: analytic P = {it.analytic_power_mw:.3f} mW, "
            f"simulated {it.num_candidates} candidates, "
            f"{len(it.feasible)} feasible"
        )


if __name__ == "__main__":
    main()
