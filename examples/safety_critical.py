#!/usr/bin/env python3
"""Scenario: safety-critical insulin delivery — reliability first.

The paper's introduction: "When a safety-critical node such as a wearable
insulin delivery device is part of the network, reliability becomes of
utmost importance."

This study pins PDR_min at the strictest bound the measurement protocol
can certify and inspects *why* the selected design looks the way it does:
it prints the per-node PDRs and the link budget of the weakest link for
the best star, the best 4-node mesh, and the selected configuration, so
the mechanism (mesh redundancy + an extra node covering the weak limb
link) is visible, not just the headline numbers.
"""

from repro import HumanIntranetExplorer, make_problem
from repro.channel.body import STANDARD_BODY
from repro.channel.pathloss import MeanPathLossModel
from repro.core.design_space import Configuration
from repro.core.evaluator import SimulationOracle
from repro.experiments.scenario import get_preset, make_scenario
from repro.library.locations import LOCATION_SHORT_NAMES
from repro.library.mac_options import MacKind, RoutingKind
from repro.library.radios import CC2650


def describe(record, pathloss: MeanPathLossModel) -> None:
    config = record.config
    print(f"  {config.label()}")
    print(f"    network PDR = {record.pdr_percent:.2f}%  "
          f"NLT = {record.nlt_days:.1f} days")
    node_pdrs = ", ".join(
        f"{LOCATION_SHORT_NAMES[loc]}={100 * value:.1f}%"
        for loc, value in sorted(record.outcome.node_pdrs.items())
    )
    print(f"    per-node PDR: {node_pdrs}")
    (i, j), loss = pathloss.worst_link(config.placement)
    margin = config.tx_dbm - CC2650.sensitivity_dbm - loss
    print(
        f"    weakest link {LOCATION_SHORT_NAMES[i]}-{LOCATION_SHORT_NAMES[j]}: "
        f"mean path loss {loss:.1f} dB, fading margin {margin:.1f} dB"
    )


def main() -> None:
    preset = get_preset("ci")
    scenario = make_scenario("ci", seed=0)
    oracle = SimulationOracle(scenario)
    pathloss = MeanPathLossModel(STANDARD_BODY)

    print("Safety-critical study (insulin pump on the network)\n")

    print("Reference designs:")
    star = oracle.evaluate(
        Configuration((0, 1, 3, 6), 0.0, MacKind.TDMA, RoutingKind.STAR)
    )
    describe(star, pathloss)
    mesh4 = oracle.evaluate(
        Configuration((0, 1, 4, 5), 0.0, MacKind.TDMA, RoutingKind.MESH)
    )
    describe(mesh4, pathloss)
    print()

    pdr_min = 0.999
    problem = make_problem(pdr_min, "ci", seed=0)
    explorer = HumanIntranetExplorer(
        problem, oracle=oracle, candidate_cap=preset.candidate_cap
    )
    result = explorer.explore()
    print(f"Algorithm 1 at PDRmin = {100 * pdr_min:.1f}%:")
    if result.best is None:
        print("  infeasible under this measurement protocol")
        return
    describe(result.best, pathloss)
    print()
    print(
        "Reading: the star tops out well below the bound (its reliability\n"
        "is limited by the single worst body link), a minimal mesh gets\n"
        "close, and the selected design adds redundancy — at the price of\n"
        "a network lifetime measured in days, the paper's safety-critical\n"
        "trade-off."
    )


if __name__ == "__main__":
    main()
