#!/usr/bin/env python
"""Chaos smoke: SIGKILL a journaled exploration run, resume it, and diff
the final summary against an uninterrupted golden run.

For each mode (nominal ``solve`` and chance-constrained ``robust``):

1. run the campaign uninterrupted with ``--out`` → ``summary.json`` is
   the golden artifact (a deterministic projection: wall-clock stripped);
2. re-run it as a victim process and ``SIGKILL`` its whole process group
   at a randomized instant (the kill seed is logged, so any failure is
   replayable with ``--kill-seed``);
3. resume the murdered run with ``--resume`` — it must exit 0;
4. require the resumed ``summary.json`` to be byte-identical to the
   golden one.

Any divergence, resume failure, or missing artifact exits nonzero.  The
CI job uploads both run directories either way.

Usage::

    python scripts/chaos_smoke.py [--preset ci] [--workdir chaos-smoke]
                                  [--kill-seed N]
"""

import argparse
import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MODES = {
    "solve": ["solve", "--pdr-min", "90"],
    "robust": [
        "robust", "--pdr-min", "85", "--seed", "3", "--ensemble-size", "2",
        "--hub-stress", "--quantile", "0", "--outage-fraction", "0.2",
    ],
}


def log(message: str) -> None:
    print(f"chaos-smoke: {message}", flush=True)


def cli_argv(mode: str, preset: str) -> list:
    return (
        [sys.executable, "-m", "repro.cli"]
        + MODES[mode]
        + ["--preset", preset, "--jobs", "2"]
    )


def child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return env


def run_golden(mode: str, preset: str, out_dir: pathlib.Path) -> float:
    start = time.monotonic()
    subprocess.run(
        cli_argv(mode, preset) + ["--out", str(out_dir)],
        env=child_env(),
        check=True,
        stdout=subprocess.DEVNULL,
    )
    wall = time.monotonic() - start
    log(f"[{mode}] golden run finished in {wall:.2f}s")
    return wall


def run_victim(
    mode: str,
    preset: str,
    out_dir: pathlib.Path,
    kill_after_s: float,
) -> bool:
    """Start the campaign and SIGKILL its process group mid-flight.
    Returns True if the kill landed before the run finished."""
    victim = subprocess.Popen(
        cli_argv(mode, preset) + ["--out", str(out_dir)],
        env=child_env(),
        stdout=subprocess.DEVNULL,
        start_new_session=True,  # so the kill also takes pool workers
    )
    try:
        victim.wait(timeout=kill_after_s)
        log(f"[{mode}] victim finished before the kill point — "
            "resume will be a pure-replay check")
        return False
    except subprocess.TimeoutExpired:
        pass
    os.killpg(victim.pid, signal.SIGKILL)
    victim.wait()
    log(f"[{mode}] SIGKILLed victim after {kill_after_s:.2f}s "
        f"(exit {victim.returncode})")
    summary = out_dir / "summary.json"
    if summary.exists():
        # the kill landed during final-artifact writing; drop it so the
        # diff below proves the *resume* rewrote it
        summary.unlink()
    return True


def resume(mode: str, preset: str, out_dir: pathlib.Path) -> None:
    proc = subprocess.run(
        cli_argv(mode, preset) + ["--resume", str(out_dir)],
        env=child_env(),
        stdout=subprocess.DEVNULL,
    )
    if proc.returncode != 0:
        log(f"[{mode}] FAIL: resume exited {proc.returncode}")
        sys.exit(1)
    log(f"[{mode}] resume completed")


def diff_summaries(mode: str, golden: pathlib.Path, resumed: pathlib.Path):
    golden_text = (golden / "summary.json").read_text()
    resumed_text = (resumed / "summary.json").read_text()
    if golden_text != resumed_text:
        log(f"[{mode}] FAIL: resumed summary differs from golden")
        log(f"golden:  {json.loads(golden_text)}")
        log(f"resumed: {json.loads(resumed_text)}")
        sys.exit(1)
    log(f"[{mode}] resumed summary is byte-identical to golden")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="ci")
    parser.add_argument("--workdir", default="chaos-smoke")
    parser.add_argument(
        "--kill-seed",
        type=int,
        default=None,
        help="seed for the randomized kill point (default: from the "
        "clock, logged for replay)",
    )
    args = parser.parse_args(argv)

    kill_seed = (
        args.kill_seed
        if args.kill_seed is not None
        else int(time.time()) % 1_000_000
    )
    log(f"kill seed: {kill_seed} (replay with --kill-seed {kill_seed})")
    rng = random.Random(kill_seed)
    workdir = pathlib.Path(args.workdir)

    for mode in MODES:
        golden_dir = workdir / f"{mode}-golden"
        victim_dir = workdir / f"{mode}-victim"
        wall = run_golden(mode, args.preset, golden_dir)
        kill_after = max(0.2, rng.uniform(0.15, 0.85) * wall)
        run_victim(mode, args.preset, victim_dir, kill_after)
        resume(mode, args.preset, victim_dir)
        diff_summaries(mode, golden_dir, victim_dir)

    log("OK: every killed run resumed to a bit-identical summary")
    return 0


if __name__ == "__main__":
    sys.exit(main())
