#!/usr/bin/env python
"""Failover smoke: kill the primary coordinator mid-campaign, promote
the standby, and require byte-identical artifacts.

The DESIGN.md §14 hardening contract, exercised end to end with real
processes on localhost and fabric auth enabled throughout:

1. run the campaign single-host with ``--out`` → golden
   ``aggregate.json``/``atlas.json``;
2. start a **primary** ``hi-explore serve`` and a **warm standby**
   (``--standby-of``) sharing one campaign root, both holding the
   fabric secret; submit the spec with ``{"execution": "fleet"}``;
3. start two workers with the *ordered coordinator list*
   ``primary,standby`` and a short ``--rpc-timeout``;
4. once the first shard commit lands (mid-campaign, work in flight),
   ``SIGSTOP`` the primary — the cruellest failure mode: the process is
   alive, the sockets accept, nothing answers.  The standby misses its
   health probes and self-promotes at fencing epoch 2; the workers'
   RPCs time out and fail over down their list;
5. poll the standby until the campaign is ``done``, then ``SIGCONT``
   the old primary (a *resurrected* zombie, the split-brain scenario)
   and send it a correctly **signed** mutation: it must answer
   ``410 {"fenced": true}`` — a valid signature does not outrank a
   fencing epoch;
6. require the fleet ``aggregate.json``/``atlas.json`` under the shared
   root to be **byte-identical** to the golden single-host run, and an
   unsigned request to the promoted standby to be refused 401.

If the campaign finishes before the first-commit checkpoint the run
degrades to a post-hoc promotion (still asserting the fencing 410 and
byte identity).  Any divergence, hang, or missing rejection exits
nonzero.

Usage::

    python scripts/failover_smoke.py [--wearers 4] [--preset smoke]
                                     [--workdir failover-smoke]
                                     [--lease-ttl 5.0]
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

FABRIC_SECRET = "failover-smoke-secret"


def log(message: str) -> None:
    print(f"failover-smoke: {message}", flush=True)


def child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    env["REPRO_FABRIC_SECRET"] = FABRIC_SECRET
    return env


def cli(*argv) -> list:
    return [sys.executable, "-m", "repro.cli", *argv]


def http_json(method, url, payload=None, headers=None, timeout=10.0):
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


def signed_post(base_url: str, path: str, payload, timeout=10.0):
    """A correctly HMAC-signed fabric POST (what a real worker sends)."""
    from repro.campaign.auth import FabricAuth

    body = json.dumps(payload).encode()
    headers = FabricAuth(FABRIC_SECRET).sign("POST", path, body)
    request = urllib.request.Request(
        base_url + path, data=body, method="POST",
        headers={"Content-Type": "application/json", **headers},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


def start_serve(label: str, *argv):
    """Launch ``hi-explore serve``; returns ``(process, base_url)`` once
    the startup banner names the bound port."""
    proc = subprocess.Popen(
        cli("serve", "--port", "0", *argv),
        env=child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner: list = []

    def pump():
        for line in proc.stdout:
            print(f"  [{label}] {line.rstrip()}", flush=True)
            match = re.search(r"on (http://[\d.]+:\d+)", line)
            if match and not banner:
                banner.append(match.group(1))

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 30.0
    while not banner and time.monotonic() < deadline:
        if proc.poll() is not None:
            log(f"FAIL: {label} exited during startup")
            sys.exit(1)
        time.sleep(0.05)
    if not banner:
        log(f"FAIL: {label} never printed its URL")
        proc.kill()
        sys.exit(1)
    return proc, banner[0]


def start_worker(name, coordinators, workdir):
    return subprocess.Popen(
        cli(
            "worker", "--coordinator", coordinators,
            "--workdir", str(workdir), "--name", name,
            "--poll", "0.2", "--exit-idle", "15", "--rpc-timeout", "3",
        ),
        env=child_env(),
        stdout=None,
        start_new_session=True,
    )


def wait_first_commit(base_url, cid, timeout):
    """True once ≥1 shard is committed while the campaign is still
    running — the mid-campaign checkpoint for the kill."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, payload = http_json(
                "GET", f"{base_url}/campaigns/{cid}/status", timeout=3.0
            )
        except OSError:
            return False
        if status == 200:
            if payload.get("state") == "done":
                return False
            committed = sum(
                1 for s in payload.get("shards", ())
                if s.get("state") == "committed"
            )
            if committed >= 1:
                return True
        time.sleep(0.05)
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wearers", type=int, default=4)
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--workdir", default="failover-smoke")
    parser.add_argument("--lease-ttl", type=float, default=5.0)
    args = parser.parse_args(argv)

    from repro.campaign.spec import make_population

    spec = make_population(
        args.wearers, preset=args.preset, base_seed=40,
        pdr_bounds=(90, 95), name="failover-smoke",
    )
    cid = spec.fingerprint()
    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    spec_path = workdir / "spec.json"
    spec.save(spec_path)

    golden_dir = workdir / "golden"
    log(f"golden single-host run of {cid} ({args.wearers} wearers)")
    subprocess.run(
        cli(
            "campaign", "--spec", str(spec_path), "--jobs", "1",
            "--shards", "4", "--out", str(golden_dir),
        ),
        env=child_env(),
        check=True,
        stdout=subprocess.DEVNULL,
    )

    root = workdir / "coord"
    primary, primary_url = start_serve(
        "primary", "--root", str(root), "--lease-ttl", str(args.lease_ttl),
        "--shards", "4", "--node-name", "primary",
    )
    standby, standby_url = start_serve(
        "standby", "--root", str(root), "--lease-ttl", str(args.lease_ttl),
        "--shards", "4", "--node-name", "standby",
        "--standby-of", primary_url,
        "--ping-interval", "0.3", "--ping-misses", "3",
    )
    coordinators = f"{primary_url},{standby_url}"
    workers = []
    stopped_primary = False
    try:
        status, payload = signed_post(
            primary_url, "/fabric/sync",
            {"worker": "probe", "acquire": False, "heartbeats": []},
        )
        if status != 200:
            log(f"FAIL: signed probe sync returned {status}: {payload}")
            return 1
        status, payload = http_json(
            "POST", f"{primary_url}/campaigns",
            {**spec.to_dict(), "execution": "fleet"},
        )
        if status not in (200, 202):
            log(f"FAIL: fleet submission returned {status}: {payload}")
            return 1
        log(f"submitted fleet campaign {payload['id']} "
            f"(state {payload['state']})")

        workers = [
            start_worker(f"w{i}", coordinators, workdir / "work")
            for i in (1, 2)
        ]

        if wait_first_commit(primary_url, cid, timeout=120.0):
            os.kill(primary.pid, signal.SIGSTOP)
            stopped_primary = True
            log("SIGSTOPped the primary after the first shard commit — "
                "alive but unresponsive, the zombie-coordinator case")
        else:
            log("campaign finished before the first-commit checkpoint — "
                "degrading to post-hoc promotion")
            os.kill(primary.pid, signal.SIGSTOP)
            stopped_primary = True

        # the standby must notice the dead air and promote itself
        deadline = time.monotonic() + 60.0
        promoted = None
        while time.monotonic() < deadline:
            try:
                status, health = http_json(
                    "GET", f"{standby_url}/healthz", timeout=3.0
                )
            except OSError:
                status, health = 0, {}
            if status == 200 and health.get("role") == "primary":
                promoted = health
                break
            time.sleep(0.1)
        if promoted is None:
            log("FAIL: standby never promoted itself")
            return 1
        if int(promoted.get("epoch", 0)) < 2:
            log(f"FAIL: promoted standby reports epoch "
                f"{promoted.get('epoch')} (expected >= 2)")
            return 1
        log(f"standby promoted: epoch {promoted['epoch']}, "
            f"node {promoted['node']}")

        # workers fail over down their list; the campaign finishes on
        # the new primary
        deadline = time.monotonic() + 600.0
        while time.monotonic() < deadline:
            status, payload = http_json(
                "GET", f"{standby_url}/campaigns/{cid}", timeout=5.0
            )
            if status == 200 and payload.get("state") == "done":
                break
            if all(w.poll() not in (None, 0) for w in workers):
                log("FAIL: every worker exited nonzero before the "
                    "campaign finished")
                return 1
            time.sleep(0.25)
        else:
            log(f"FAIL: campaign never reached done: {payload}")
            return 1
        log(f"campaign done on the promoted standby: {payload['queue']}")

        # resurrect the deposed primary: a correctly signed mutation
        # must be refused 410/fenced — signatures do not outrank epochs
        os.kill(primary.pid, signal.SIGCONT)
        stopped_primary = False
        status, refusal = signed_post(
            primary_url, "/fabric/sync",
            {"worker": "stale", "acquire": True, "heartbeats": []},
            timeout=15.0,
        )
        if status != 410 or refusal.get("fenced") is not True:
            log(f"FAIL: resurrected primary answered {status} "
                f"{refusal} (expected 410 fenced)")
            return 1
        log("resurrected primary refused a signed mutation with "
            "410/fenced")

        # and the promoted standby still enforces auth: unsigned → 401
        status, refusal = http_json(
            "POST", f"{standby_url}/fabric/sync",
            {"worker": "intruder", "heartbeats": []},
        )
        if status != 401:
            log(f"FAIL: unsigned sync to the promoted standby answered "
                f"{status} (expected 401)")
            return 1
        log("promoted standby refused an unsigned sync with 401")
    finally:
        if stopped_primary:
            try:
                os.kill(primary.pid, signal.SIGCONT)
            except OSError:
                pass
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
                proc.wait()
        for proc in (standby, primary):
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    fleet_dir = root / cid
    for name in ("aggregate.json", "atlas.json"):
        golden_blob = (golden_dir / name).read_bytes()
        fleet_blob = (fleet_dir / name).read_bytes()
        if golden_blob != fleet_blob:
            log(f"FAIL: {name} differs from the single-host run")
            return 1
        log(f"{name}: bytes identical to single-host "
            f"({len(fleet_blob)} bytes)")

    log("OK: primary killed mid-campaign, standby promoted with a "
        "fencing epoch, the resurrected primary is fenced out, and the "
        "artifacts are byte-identical to single-host")
    return 0


if __name__ == "__main__":
    sys.exit(main())
