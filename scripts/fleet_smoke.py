#!/usr/bin/env python
"""Fleet smoke: a real coordinator + two worker processes, one murdered.

The cross-host fabric's correctness contract, exercised end to end with
real processes on localhost:

1. run the campaign single-host with ``--out`` → golden
   ``aggregate.json``/``atlas.json``;
2. start ``hi-explore serve`` on an ephemeral port with a short lease
   TTL, submit the same spec with ``{"execution": "fleet"}``;
3. start two ``hi-explore worker`` agents sharing one ``--workdir``;
   SIGKILL one of them while it holds a shard lease — the lease expires
   and the surviving worker is reassigned the shard, resuming from the
   dead worker's journals;
4. poll until the campaign is ``done`` and require the fleet
   ``aggregate.json``/``atlas.json`` to be **byte-identical** to the
   golden run (``cmp`` semantics, done in-process);
5. submit a **second** campaign over the same wearer population under a
   different name against the same coordinator: every wearer must be
   served from the cross-campaign wearer cache — the warm worker may
   write **zero** run journals — and the artifacts must again be
   byte-identical to a single-host run of the warm spec.

If the doomed worker finishes its shard before the kill lands the test
degrades to a plain two-worker fleet run — still asserting byte
identity.  Any divergence, hang, re-simulation in the warm phase, or
worker failure exits nonzero.

Usage::

    python scripts/fleet_smoke.py [--wearers 4] [--preset smoke]
                                  [--workdir fleet-smoke]
                                  [--lease-ttl 2.0]
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def log(message: str) -> None:
    print(f"fleet-smoke: {message}", flush=True)


def child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    # The whole smoke runs with fabric auth enabled: coordinator and
    # workers pick the shared secret up from the environment, so every
    # lease/commit/cache RPC below is HMAC-signed end to end.
    env.setdefault("REPRO_FABRIC_SECRET", "fleet-smoke-secret")
    return env


def cli(*argv) -> list:
    return [sys.executable, "-m", "repro.cli", *argv]


def http_json(method: str, url: str, payload=None, timeout=10.0):
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode() or "{}")


def start_coordinator(root: pathlib.Path, lease_ttl: float, shards: int):
    """Launch ``hi-explore serve`` on an ephemeral port; returns
    ``(process, base_url)`` once the startup banner names the port."""
    proc = subprocess.Popen(
        cli(
            "serve", "--root", str(root), "--port", "0",
            "--lease-ttl", str(lease_ttl), "--shards", str(shards),
        ),
        env=child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner: list = []

    def pump():
        for line in proc.stdout:
            print(f"  [serve] {line.rstrip()}", flush=True)
            match = re.search(r"on (http://[\d.]+:\d+)", line)
            if match and not banner:
                banner.append(match.group(1))

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 30.0
    while not banner and time.monotonic() < deadline:
        if proc.poll() is not None:
            log("FAIL: coordinator exited during startup")
            sys.exit(1)
        time.sleep(0.05)
    if not banner:
        log("FAIL: coordinator never printed its URL")
        proc.kill()
        sys.exit(1)
    return proc, banner[0]


def start_worker(name: str, base_url: str, workdir: pathlib.Path):
    return subprocess.Popen(
        cli(
            "worker", "--coordinator", base_url, "--workdir", str(workdir),
            "--name", name, "--poll", "0.2", "--exit-idle", "10",
        ),
        env=child_env(),
        stdout=None,  # workers log their own pull/commit lines
        start_new_session=True,  # the SIGKILL must not splash the script
    )


def wait_for_lease(base_url: str, cid: str, worker: str, timeout: float):
    """Wait until ``worker`` holds a shard lease (True) or the campaign
    finishes without it ever leasing one (False)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = http_json(
            "GET", f"{base_url}/campaigns/{cid}/status"
        )
        if status == 200:
            for shard in payload.get("shards", ()):
                if (
                    shard.get("state") == "leased"
                    and shard.get("worker") == worker
                ):
                    return True
            if payload.get("state") == "done":
                return False
        time.sleep(0.05)
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wearers", type=int, default=4)
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--workdir", default="fleet-smoke")
    parser.add_argument("--lease-ttl", type=float, default=2.0)
    args = parser.parse_args(argv)

    from repro.campaign.spec import make_population

    spec = make_population(
        args.wearers, preset=args.preset, base_seed=40,
        pdr_bounds=(90, 95), name="fleet-smoke",
    )
    cid = spec.fingerprint()
    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    spec_path = workdir / "spec.json"
    spec.save(spec_path)

    golden_dir = workdir / "golden"
    log(f"golden single-host run of {cid} ({args.wearers} wearers)")
    subprocess.run(
        cli(
            "campaign", "--spec", str(spec_path), "--jobs", "1",
            "--shards", "2", "--out", str(golden_dir),
        ),
        env=child_env(),
        check=True,
        stdout=subprocess.DEVNULL,
    )

    coordinator, base_url = start_coordinator(
        workdir / "coord", args.lease_ttl, shards=2
    )
    doomed = survivor = None
    try:
        status, payload = http_json(
            "POST", f"{base_url}/campaigns",
            {**spec.to_dict(), "execution": "fleet"},
        )
        if status not in (200, 202):
            log(f"FAIL: fleet submission returned {status}: {payload}")
            return 1
        log(f"submitted fleet campaign {payload['id']} "
            f"(state {payload['state']})")

        doomed = start_worker("doomed", base_url, workdir / "work")
        if wait_for_lease(base_url, cid, "doomed", timeout=60.0):
            os.killpg(doomed.pid, signal.SIGKILL)
            doomed.wait()
            log("SIGKILLed worker 'doomed' while it held a shard lease; "
                "its lease will expire and the shard be reassigned")
        else:
            log("worker 'doomed' never held a lease at the check point — "
                "degrading to a plain fleet run")
            doomed.terminate()
            doomed.wait()
        survivor = start_worker("survivor", base_url, workdir / "work")

        deadline = time.monotonic() + 600.0
        while time.monotonic() < deadline:
            status, payload = http_json("GET", f"{base_url}/campaigns/{cid}")
            if status == 200 and payload.get("state") == "done":
                break
            if survivor.poll() not in (None, 0):
                log(f"FAIL: survivor worker exited "
                    f"{survivor.returncode} before the campaign finished")
                return 1
            time.sleep(0.25)
        else:
            log(f"FAIL: campaign never reached done: {payload}")
            return 1
        log(f"campaign done: {payload['queue']}")

        # -- phase 2: warm-cache campaign (same wearers, new name) ------
        # The coordinator's wearer cache was fed by phase 1's commits;
        # this campaign must be a download, not a simulation.
        warm_spec = make_population(
            args.wearers, preset=args.preset, base_seed=40,
            pdr_bounds=(90, 95), name="fleet-smoke-warm",
        )
        warm_cid = warm_spec.fingerprint()
        warm_spec_path = workdir / "spec-warm.json"
        warm_spec.save(warm_spec_path)
        warm_golden_dir = workdir / "golden-warm"
        log(f"golden single-host run of warm campaign {warm_cid}")
        subprocess.run(
            cli(
                "campaign", "--spec", str(warm_spec_path), "--jobs", "1",
                "--shards", "2", "--out", str(warm_golden_dir),
            ),
            env=child_env(),
            check=True,
            stdout=subprocess.DEVNULL,
        )
        status, payload = http_json(
            "POST", f"{base_url}/campaigns",
            {**warm_spec.to_dict(), "execution": "fleet"},
        )
        if status not in (200, 202):
            log(f"FAIL: warm submission returned {status}: {payload}")
            return 1
        log(f"submitted warm fleet campaign {payload['id']} "
            f"(state {payload['state']})")
        warm_worker = start_worker(
            "warm", base_url, workdir / "work-warm"
        )
        try:
            deadline = time.monotonic() + 600.0
            while time.monotonic() < deadline:
                status, payload = http_json(
                    "GET", f"{base_url}/campaigns/{warm_cid}"
                )
                if status == 200 and payload.get("state") == "done":
                    break
                if warm_worker.poll() not in (None, 0):
                    log(f"FAIL: warm worker exited "
                        f"{warm_worker.returncode} mid-campaign")
                    return 1
                time.sleep(0.25)
            else:
                log(f"FAIL: warm campaign never reached done: {payload}")
                return 1
        finally:
            if warm_worker.poll() is None:
                warm_worker.terminate()
                warm_worker.wait()
        log(f"warm campaign done: {payload['queue']}")
    finally:
        for proc in (doomed, survivor):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                proc.wait()
        coordinator.terminate()
        coordinator.wait()

    for label, campaign, gold in (
        ("fleet", cid, golden_dir),
        ("warm fleet", warm_cid, warm_golden_dir),
    ):
        fleet_dir = workdir / "coord" / campaign
        for name in ("aggregate.json", "atlas.json"):
            golden_blob = (gold / name).read_bytes()
            fleet_blob = (fleet_dir / name).read_bytes()
            if golden_blob != fleet_blob:
                log(f"FAIL: {label} {name} differs from the "
                    "single-host run")
                return 1
            log(f"{label} {name}: bytes identical to single-host "
                f"({len(fleet_blob)} bytes)")

    # Zero re-simulation: a cache-served wearer writes summary.json
    # only, so any run journal for the warm campaign means the wearer
    # cache failed to serve it.  Checked across *every* workdir — a
    # phase-1 worker still draining may legally pick up warm shards.
    warm_journals = sorted(
        journal
        for work in (workdir / "work", workdir / "work-warm")
        for journal in (work / warm_cid).rglob("journal.jsonl")
        if (work / warm_cid).exists()
    )
    if warm_journals:
        log(f"FAIL: warm worker simulated {len(warm_journals)} "
            f"wearer(s): {[str(p) for p in warm_journals]}")
        return 1
    log("warm worker wrote zero run journals — every wearer was a "
        "cache hit")

    telemetry = json.loads(
        (workdir / "coord" / cid / "telemetry.json").read_text()
    )
    log(f"worker census: {telemetry['pool']['workers']}")
    log("OK: fleet execution is byte-identical to single-host, and the "
        "warm campaign re-simulated nothing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
