"""repro — reproduction of "Optimized Design of a Human Intranet Network"
(Moin, Nuzzo, Sangiovanni-Vincentelli, Rabaey — DAC 2017).

The package implements the paper's design-space-exploration methodology for
wireless body area networks end to end, including every substrate the
original system relied on:

* :mod:`repro.milp` — a from-scratch MILP solver (the paper used CPLEX);
* :mod:`repro.des` — a discrete-event simulation kernel (Castalia's role);
* :mod:`repro.channel` — synthetic on-body channel models (the NICTA
  measurement dataset's role);
* :mod:`repro.library` — the component library (Table 1 radios,
  batteries, body locations, protocol options);
* :mod:`repro.net` — the WBAN protocol stack (radio / CSMA / TDMA / star /
  controlled flooding / application);
* :mod:`repro.core` — the contribution: Algorithm 1 coordinating MILP
  candidate generation with simulation-based feasibility checking;
* :mod:`repro.baselines` — exhaustive search and simulated annealing;
* :mod:`repro.experiments` — reproduction harnesses for every table,
  figure, and headline claim.

Quickstart::

    from repro import HumanIntranetExplorer, make_problem

    problem = make_problem(pdr_min=0.9, preset="ci")
    result = HumanIntranetExplorer(problem, candidate_cap=16).explore()
    print(result.summary())
"""

from repro.core import (
    Configuration,
    DesignProblem,
    DesignSpace,
    ExplorationResult,
    HumanIntranetExplorer,
    ScenarioParameters,
    SimulationOracle,
)
from repro.experiments.scenario import make_problem, make_scenario
from repro.net import Network, SimulationOutcome, simulate_configuration

__version__ = "1.0.0"

__all__ = [
    "Configuration",
    "DesignProblem",
    "DesignSpace",
    "ScenarioParameters",
    "HumanIntranetExplorer",
    "ExplorationResult",
    "SimulationOracle",
    "Network",
    "SimulationOutcome",
    "simulate_configuration",
    "make_problem",
    "make_scenario",
    "__version__",
]
