"""Analysis utilities on top of the exploration framework.

* :mod:`repro.analysis.pareto` — Pareto-front extraction over the
  (lifetime, reliability) objectives, the curve Figure 3's upper-left
  envelope traces;
* :mod:`repro.analysis.convergence` — the paper's ε-bounded estimation
  protocol (Sec. 2.2: "the duration of a simulation run Tsim is selected
  to guarantee that the error ... is bounded by a positive tolerance ε"),
  realized as sequential replication with a confidence-interval stopping
  rule;
* :mod:`repro.analysis.ascii_plot` — terminal rendering of the Figure 3
  scatter so the benchmark reports show the *figure*, not only its rows;
* :mod:`repro.analysis.trace_report` — human-readable breakdown of a
  ``--trace-out`` run trace (explorer trajectory, span time rollup) and
  the deterministic projection used by the golden-trace test.
"""

from repro.analysis.pareto import ParetoPoint, pareto_front, dominates
from repro.analysis.convergence import (
    AdaptiveEstimate,
    estimate_pdr_with_tolerance,
)
from repro.analysis.ascii_plot import render_scatter


def __getattr__(name):
    # Lazy: keeps `python -m repro.analysis.trace_report` runnable without
    # runpy's double-import warning.
    if name in ("explorer_sequence", "summarize"):
        from repro.analysis import trace_report

        return getattr(trace_report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ParetoPoint",
    "pareto_front",
    "dominates",
    "AdaptiveEstimate",
    "estimate_pdr_with_tolerance",
    "render_scatter",
    "explorer_sequence",
    "summarize",
]
