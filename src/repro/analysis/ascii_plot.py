"""Terminal scatter plots for the Figure 3 reproduction.

Rendering the figure as text keeps the benchmark reports self-contained
(no plotting dependency, diffable outputs).  The plot marks each point
with a symbol per configuration class — the same visual grouping the
paper's figure uses (marker per TX level, open/closed per routing).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

#: (x, y, symbol) triple: x in data units, y in data units.
Point = Tuple[float, float, str]


def render_scatter(
    points: Sequence[Point],
    width: int = 72,
    height: int = 24,
    x_label: str = "x",
    y_label: str = "y",
    x_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
    hline: Optional[float] = None,
) -> str:
    """Render points into a fixed-size ASCII canvas.

    Later points overwrite earlier ones on cell collisions.  ``hline``
    draws a horizontal dashed line at a y value (the paper's PDR_min
    marker).  Axis ranges default to the data extent with 5% padding.
    """
    if not points:
        return "(no points)"
    if width < 16 or height < 8:
        raise ValueError("canvas too small to be readable")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = x_range if x_range else _padded(min(xs), max(xs))
    y_lo, y_hi = y_range if y_range else _padded(min(ys), max(ys))

    grid = [[" "] * width for _ in range(height)]

    if hline is not None and y_lo <= hline <= y_hi:
        row = _to_row(hline, y_lo, y_hi, height)
        for col in range(0, width, 2):
            grid[row][col] = "-"

    for x, y, symbol in points:
        if not (x_lo <= x <= x_hi and y_lo <= y <= y_hi):
            continue
        row = _to_row(y, y_lo, y_hi, height)
        col = _to_col(x, x_lo, x_hi, width)
        grid[row][col] = (symbol or "*")[0]

    lines: List[str] = []
    y_labels = {0: f"{y_hi:g}", height - 1: f"{y_lo:g}"}
    gutter = max(len(label) for label in y_labels.values()) + 1
    for r in range(height):
        prefix = y_labels.get(r, "").rjust(gutter)
        lines.append(f"{prefix}|" + "".join(grid[r]))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    lines.append(" " * (gutter + 1) + x_axis)
    lines.append(" " * (gutter + 1) + f"{x_label}  (y: {y_label})")
    return "\n".join(lines)


def figure3_symbols(routing_value: str, tx_dbm: float) -> str:
    """The marker scheme for Figure 3 points: letter per TX level,
    uppercase for mesh (the paper uses marker shape per level and
    open/filled per routing)."""
    letter = {-20.0: "a", -10.0: "b", 0.0: "c"}.get(tx_dbm, "x")
    return letter.upper() if routing_value == "mesh" else letter


def render_figure3(
    scatter: Iterable[Tuple[float, float, str, float]],
    pdr_min_percent: Optional[float] = None,
) -> str:
    """Render (nlt_days, pdr_percent, routing, tx_dbm) tuples as the
    paper's Figure 3 layout (x = NLT days, y = PDR %)."""
    points = [
        (nlt, pdr, figure3_symbols(routing, tx))
        for nlt, pdr, routing, tx in scatter
    ]
    legend = (
        "a/b/c = star at -20/-10/0 dBm, A/B/C = mesh at -20/-10/0 dBm"
    )
    plot = render_scatter(
        points,
        x_label="NLT (days)",
        y_label="PDR (%)",
        y_range=(0.0, 105.0),
        hline=pdr_min_percent,
    )
    return plot + "\n" + legend


def _padded(lo: float, hi: float) -> Tuple[float, float]:
    if lo == hi:
        pad = abs(lo) * 0.05 + 1.0
    else:
        pad = (hi - lo) * 0.05
    return lo - pad, hi + pad


def _to_row(y: float, y_lo: float, y_hi: float, height: int) -> int:
    frac = (y - y_lo) / (y_hi - y_lo) if y_hi > y_lo else 0.5
    return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))


def _to_col(x: float, x_lo: float, x_hi: float, width: int) -> int:
    frac = (x - x_lo) / (x_hi - x_lo) if x_hi > x_lo else 0.5
    return min(width - 1, max(0, int(round(frac * (width - 1)))))
