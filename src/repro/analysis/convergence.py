"""ε-bounded performance estimation via sequential replication.

Sec. 2.2 of the paper: "the duration of a simulation run T_sim is selected
to guarantee that the error between (6) and the desired probability is
bounded by a positive tolerance ε", and Sec. 4 fixes T_sim = 600 s × 3
runs as sufficient for 0.5% relative error.  This module provides the
adaptive version of that protocol: keep adding independent replicates
until the confidence interval of the PDR estimate is narrower than the
tolerance (or a replicate budget runs out), reporting the achieved
half-width either way.

The stopping rule uses the normal approximation on the replicate means
with the t-distribution's small-sample correction, which is the standard
sequential procedure for terminating stochastic simulations (Law &
Kelton).  For bounded [0, 1] quantities like PDR this is conservative
enough at the 3-10 replicate scale the protocol operates at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List

from scipy import stats as scipy_stats


@dataclass
class AdaptiveEstimate:
    """Result of a sequential estimation run."""

    mean: float
    half_width: float
    replicates: int
    converged: bool
    samples: List[float] = field(default_factory=list)

    @property
    def interval(self) -> tuple:
        return (self.mean - self.half_width, self.mean + self.half_width)


def interval_half_width(samples: List[float], confidence: float = 0.95) -> float:
    """Half-width of the t-distribution confidence interval on the mean.

    Public because the parallel replicate protocol
    (:mod:`repro.core.parallel`) applies the same stopping rule to sample
    *prefixes*: the replicate count the sequential procedure selects is the
    smallest ``n`` with ``interval_half_width(samples[:n]) <= epsilon``,
    which is how wave-dispatched parallel replication reproduces the serial
    result bit for bit.
    """
    n = len(samples)
    if n < 2:
        return math.inf
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    if var == 0.0:
        return 0.0
    t = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return float(t * math.sqrt(var / n))


def estimate_pdr_with_tolerance(
    run_replicate: Callable[[int], float],
    epsilon: float = 0.005,
    confidence: float = 0.95,
    min_replicates: int = 2,
    max_replicates: int = 10,
) -> AdaptiveEstimate:
    """Estimate a PDR by adding replicates until the CI is ε-narrow.

    Parameters
    ----------
    run_replicate:
        Callable mapping a replicate index to one PDR observation (each
        index must use disjoint randomness — exactly what
        :class:`repro.des.rng.RngStreams` replicates provide).
    epsilon:
        Target half-width of the confidence interval (the paper's 0.5%
        relative error at PDR near 1 corresponds to ε = 0.005 absolute).
    confidence:
        Confidence level of the interval.
    min_replicates, max_replicates:
        Replication bounds; the paper's fixed protocol is 3 replicates,
        which this procedure reproduces when the estimator converges
        quickly and exceeds when it does not.

    Returns
    -------
    AdaptiveEstimate with ``converged`` False when the budget ran out
    before the tolerance was met.
    """
    if epsilon <= 0:
        raise ValueError("tolerance must be positive")
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    if min_replicates < 2:
        raise ValueError("need at least two replicates for an interval")
    if max_replicates < min_replicates:
        raise ValueError("replicate budget below the minimum")

    samples: List[float] = []
    for index in range(max_replicates):
        samples.append(float(run_replicate(index)))
        if len(samples) < min_replicates:
            continue
        half = interval_half_width(samples, confidence)
        if half <= epsilon:
            return AdaptiveEstimate(
                mean=sum(samples) / len(samples),
                half_width=half,
                replicates=len(samples),
                converged=True,
                samples=samples,
            )
    return AdaptiveEstimate(
        mean=sum(samples) / len(samples),
        half_width=interval_half_width(samples, confidence),
        replicates=len(samples),
        converged=False,
        samples=samples,
    )


def replicates_needed(
    observed_std: float, epsilon: float, confidence: float = 0.95
) -> int:
    """Planning helper: replicates needed for a target half-width given an
    observed replicate standard deviation (normal approximation)."""
    if epsilon <= 0:
        raise ValueError("tolerance must be positive")
    if observed_std <= 0:
        return 2
    z = scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    return max(2, math.ceil((z * observed_std / epsilon) ** 2))
