"""Pareto-front extraction over the lifetime/reliability trade-off.

The design problem (Eq. 8) optimizes lifetime under a reliability bound;
sweeping the bound traces the Pareto front of the bi-objective problem
(maximize NLT, maximize PDR).  This module extracts that front directly
from a set of evaluated configurations — the upper-right envelope of the
Figure 3 scatter — which is useful both for reporting and for validating
that Algorithm 1's per-bound optima actually lie on the front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.core.evaluator import EvaluationRecord


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the (NLT, PDR) front with its originating record."""

    nlt_days: float
    pdr: float
    record: EvaluationRecord

    @property
    def label(self) -> str:
        return self.record.config.label()


def dominates(a: EvaluationRecord, b: EvaluationRecord, tol: float = 1e-12) -> bool:
    """True when ``a`` is at least as good as ``b`` in both objectives and
    strictly better in at least one (maximizing NLT and PDR)."""
    ge_nlt = a.nlt_days >= b.nlt_days - tol
    ge_pdr = a.pdr >= b.pdr - tol
    gt_any = a.nlt_days > b.nlt_days + tol or a.pdr > b.pdr + tol
    return ge_nlt and ge_pdr and gt_any


def pareto_front(
    records: Iterable[EvaluationRecord], tol: float = 1e-12
) -> List[ParetoPoint]:
    """Non-dominated subset, sorted by descending lifetime.

    Standard sweep: sort by NLT descending (ties: PDR descending), then
    keep every record whose PDR strictly exceeds the best PDR seen so far.
    O(n log n); duplicate-objective records are collapsed to one point.

    Tolerances match :func:`dominates`: a record whose NLT is within
    ``tol`` of an earlier front member but whose PDR is higher *replaces*
    that member (they tie on lifetime, so the higher-PDR one dominates)
    — otherwise sub-``tol`` lifetime noise could seat two points on the
    front that ``dominates`` considers ordered.
    """
    pool: Sequence[EvaluationRecord] = sorted(
        records, key=lambda r: (-r.nlt_days, -r.pdr)
    )
    front: List[ParetoPoint] = []
    best_pdr = -1.0
    for record in pool:
        if record.pdr > best_pdr + tol:
            while front and front[-1].nlt_days <= record.nlt_days + tol:
                front.pop()  # lifetime tie with lower PDR: dominated
            front.append(
                ParetoPoint(nlt_days=record.nlt_days, pdr=record.pdr,
                            record=record)
            )
            best_pdr = record.pdr
    return front


@dataclass(frozen=True)
class _AtlasConfig:
    """Label-only stand-in for :class:`Configuration` on atlas points."""

    text: str

    def label(self) -> str:
        return self.text

    def key(self):
        return ("atlas", self.text)


@dataclass(frozen=True)
class AtlasRecord:
    """A record rebuilt from serialized campaign results (no outcome
    payload — just the two objectives plus identity), duck-compatible
    with :class:`EvaluationRecord` for the front sweep."""

    nlt_days: float
    pdr: float
    config: _AtlasConfig
    wearer_id: str = ""


def front_from_points(points: Iterable[dict], tol: float = 1e-12) -> List[ParetoPoint]:
    """Pareto front over plain-dict points (campaign aggregation path).

    Each point needs ``nlt_days``, ``pdr``, and ``label``; ``wearer_id``
    is carried through so fleet atlases can attribute every front point
    to the wearer whose design produced it.
    """
    records = [
        AtlasRecord(
            nlt_days=float(p["nlt_days"]),
            pdr=float(p["pdr"]),
            config=_AtlasConfig(str(p["label"])),
            wearer_id=str(p.get("wearer_id", "")),
        )
        for p in points
    ]
    return pareto_front(records, tol=tol)


def is_on_front(
    record: EvaluationRecord, records: Iterable[EvaluationRecord]
) -> bool:
    """Whether ``record`` is non-dominated within ``records``."""
    return not any(
        dominates(other, record)
        for other in records
        if other.config.key() != record.config.key()
    )


def front_summary(front: Sequence[ParetoPoint]) -> str:
    """Human-readable rendering of a front."""
    lines = [f"Pareto front ({len(front)} points):"]
    for point in front:
        lines.append(
            f"  NLT={point.nlt_days:6.1f} d  PDR={100 * point.pdr:6.2f}%  "
            f"{point.label}"
        )
    return "\n".join(lines)
