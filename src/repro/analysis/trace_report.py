"""Human-readable breakdown of a ``--trace-out`` JSONL run trace.

Usage::

    python -m repro.analysis.trace_report run.jsonl
    python -m repro.analysis.trace_report --metrics run.metrics.json run.jsonl

The report reconstructs, from the trace alone, what a run did and where
its wall clock went: the manifest, the explorer's full candidate
accept/reject trajectory (every ``explorer.*`` milestone, nominal and
robust), the fault campaign (``faults.inject`` timeline plus per-config
``faults.resilience`` summaries), oracle activity (simulations vs. cache
hits, wall-time percentiles), MILP solve statistics (B&B nodes, LP
pivots, incumbent updates), DES milestones, and a per-span time rollup.
With ``--metrics`` the final ``--metrics-out`` counter snapshot is
appended.

Broken inputs degrade gracefully rather than raising: a missing, empty,
or fully corrupt trace (or metrics) file produces a one-line diagnostic
on stderr and exit code 1; a trace truncated mid-line (e.g. the run was
killed while writing) still renders a report for the readable prefix,
with a skipped-line warning, and also exits 1 so CI scripts notice.

:func:`explorer_sequence` is the *deterministic projection* of a trace:
the ordered ``explorer.*`` events with all timing/bookkeeping fields
(``t``, ``seq``, ``span``) stripped.  Two seeded runs of the same
scenario produce identical projections regardless of ``n_jobs`` or cache
temperature — the invariant pinned by the golden-trace regression test.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Dict, List, Optional

from repro.obs.tracing import check_span_balance

#: Trace bookkeeping fields that vary run-to-run even for identical
#: behaviour; stripped by the deterministic projection.
NONDETERMINISTIC_FIELDS = frozenset({"t", "seq", "span"})

#: Event kinds that constitute the explorer's decision trajectory.
EXPLORER_KINDS_PREFIX = "explorer."


def load_trace(path) -> "tuple[List[dict], int]":
    """Read a JSONL trace, tolerating partial writes.

    Returns ``(events, skipped)`` where ``skipped`` counts non-blank
    lines that were not valid JSON objects — a truncated final line from
    a killed run being the common case.  Raises :class:`OSError` only
    when the file itself cannot be opened.
    """
    events: List[dict] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(payload, dict):
                events.append(payload)
            else:
                skipped += 1
    return events, skipped


def load_metrics(path) -> Dict[str, dict]:
    """Read a ``--metrics-out`` JSON snapshot.

    Raises :class:`OSError` when unreadable and :class:`ValueError` when
    the content is empty, truncated, or not a JSON object — callers turn
    both into a diagnostic rather than a traceback.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if not text.strip():
        raise ValueError("file is empty")
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"not valid JSON (truncated write?): {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("expected a JSON object of instruments")
    return payload


def explorer_sequence(events: List[dict]) -> List[dict]:
    """The deterministic explorer trajectory embedded in a trace."""
    sequence = []
    for ev in events:
        if str(ev.get("kind", "")).startswith(EXPLORER_KINDS_PREFIX):
            sequence.append(
                {
                    k: v
                    for k, v in ev.items()
                    if k not in NONDETERMINISTIC_FIELDS
                }
            )
    return sequence


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    return f"{1000.0 * s:.1f}ms"


def _quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _manifest_section(events: List[dict], lines: List[str]) -> None:
    manifests = [e for e in events if e.get("kind") == "manifest"]
    if not manifests:
        return
    m = manifests[0]
    lines.append("manifest")
    for key in sorted(m):
        if key in NONDETERMINISTIC_FIELDS or key == "kind":
            continue
        lines.append(f"  {key}: {m[key]}")


def _explorer_section(events: List[dict], lines: List[str]) -> None:
    sequence = explorer_sequence(events)
    if not sequence:
        return
    lines.append("explorer trajectory")
    for ev in sequence:
        kind = ev["kind"]
        if kind == "explorer.start":
            lines.append(
                f"  run: PDRmin={100.0 * ev.get('pdr_min', 0):.2f}%"
                f"{'  (exhaustive sweep)' if ev.get('exhaustive') else ''}"
            )
        elif kind == "explorer.iteration":
            lines.append(
                f"  iteration {ev.get('iteration')}: analytic "
                f"P*={ev.get('p_star_mw', 0):.4f} mW, "
                f"{ev.get('num_candidates')} candidates"
            )
        elif kind == "explorer.candidate":
            verdict = "accept" if ev.get("accepted") else "reject"
            lines.append(
                f"    {verdict:6s} {ev.get('config')}  "
                f"PDR={100.0 * ev.get('pdr', 0):.2f}%  "
                f"P={ev.get('power_mw', 0):.4f} mW  ({ev.get('reason')})"
            )
        elif kind == "explorer.incumbent":
            lines.append(
                f"    incumbent -> {ev.get('config')}  "
                f"P={ev.get('power_mw', 0):.4f} mW"
            )
        elif kind == "explorer.cut":
            lines.append(
                f"    cut: P > {ev.get('p_star_mw', 0):.4f} mW added"
            )
        elif kind == "explorer.bound":
            lines.append(
                f"    alpha bound {ev.get('bound_mw', 0):.4f} mW exceeds "
                f"incumbent {ev.get('incumbent_power_mw', 0):.4f} mW -> stop"
            )
        elif kind == "explorer.done":
            lines.append(
                f"  done: {ev.get('status')} ({ev.get('termination')}), "
                f"best={ev.get('best')}, "
                f"{ev.get('simulations')} simulations over "
                f"{ev.get('iterations')} iterations / "
                f"{ev.get('milp_solves')} MILP solves"
            )
        elif kind == "explorer.robust_start":
            lines.append(
                f"  robust run: PDRmin={100.0 * ev.get('pdr_min', 0):.2f}% "
                f"at quantile q={ev.get('quantile', 0):.2f}"
            )
        elif kind == "explorer.robust_iteration":
            lines.append(
                f"  robust iteration {ev.get('iteration')}: analytic "
                f"P*={ev.get('p_star_mw', 0):.4f} mW, "
                f"{ev.get('num_candidates')} candidates"
            )
        elif kind == "explorer.robust_candidate":
            verdict = "accept" if ev.get("accepted") else "reject"
            lines.append(
                f"    {verdict:6s} {ev.get('config')}  "
                f"q-PDR={100.0 * ev.get('q_pdr', 0):.2f}%  "
                f"healthy={100.0 * ev.get('healthy_pdr', 0):.2f}%  "
                f"P={ev.get('power_mw', 0):.4f} mW  ({ev.get('reason')})"
            )
        elif kind == "explorer.robust_incumbent":
            lines.append(
                f"    incumbent -> {ev.get('config')}  "
                f"P={ev.get('power_mw', 0):.4f} mW  "
                f"q-PDR={100.0 * ev.get('q_pdr', 0):.2f}%"
            )
        elif kind == "explorer.robust_cut":
            lines.append(
                f"    cut: P > {ev.get('p_star_mw', 0):.4f} mW added"
            )
        elif kind == "explorer.robust_bound":
            lines.append(
                f"    alpha bound {ev.get('bound_mw', 0):.4f} mW exceeds "
                f"incumbent {ev.get('incumbent_power_mw', 0):.4f} mW -> stop"
            )
        elif kind == "explorer.robust_done":
            lines.append(
                f"  robust done: {ev.get('status')} ({ev.get('termination')}), "
                f"best={ev.get('best')}, "
                f"{ev.get('simulations')} simulations over "
                f"{ev.get('iterations')} iterations / "
                f"{ev.get('milp_solves')} MILP solves"
            )
        elif kind == "explorer.dual_start":
            lines.append(
                f"  dual run: NLT >= {ev.get('min_lifetime_days')} days "
                f"(P budget {ev.get('max_power_mw', 0):.4f} mW)"
            )
        elif kind == "explorer.dual_level":
            lines.append(
                f"  dual level P*={ev.get('p_star_mw', 0):.4f} mW, "
                f"{ev.get('num_candidates')} candidates"
            )
        elif kind == "explorer.dual_done":
            lines.append(
                f"  dual done: best={ev.get('best')}, "
                f"{ev.get('within_budget')}/{ev.get('evaluated')} "
                f"within budget"
            )


def _faults_section(events: List[dict], lines: List[str]) -> None:
    injects = [e for e in events if e.get("kind") == "faults.inject"]
    resilience = [e for e in events if e.get("kind") == "faults.resilience"]
    if not injects and not resilience:
        return
    lines.append("fault campaign")
    if injects:
        by_scenario: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for e in injects:
            by_scenario[str(e.get("scenario"))][str(e.get("action"))] += 1
        lines.append(f"  injections: {len(injects)}")
        for scenario in sorted(by_scenario):
            actions = by_scenario[scenario]
            detail = ", ".join(
                f"{actions[a]}x {a}" for a in sorted(actions)
            )
            lines.append(f"    {scenario}: {detail}")
    if resilience:
        lines.append(f"  resilience evaluations: {len(resilience)}")
        worst = min(resilience, key=lambda e: float(e.get("pdr_min_fault", 1.0)))
        lines.append(
            f"    worst PDR under fault: "
            f"{100.0 * float(worst.get('pdr_min_fault', 0.0)):.2f}% "
            f"({worst.get('config')})"
        )
        recoveries = [
            float(e["worst_recovery_s"])
            for e in resilience
            if e.get("worst_recovery_s") is not None
        ]
        if recoveries:
            lines.append(
                f"    recovery times: "
                f"p50={_quantile(recoveries, 0.5):.2f}s "
                f"max={max(recoveries):.2f}s "
                f"over {len(recoveries)} measurable"
            )
        degradations = [
            float(e.get("lifetime_degradation", 0.0)) for e in resilience
        ]
        lines.append(
            f"    max lifetime degradation: {100.0 * max(degradations):.2f}%"
        )


def _oracle_section(events: List[dict], lines: List[str]) -> None:
    evals = [e for e in events if e.get("kind") == "oracle.evaluate"]
    batches = [e for e in events if e.get("kind") == "oracle.batch"]
    if not evals and not batches:
        return
    lines.append("oracle")
    if evals:
        cached = sum(1 for e in evals if e.get("cached"))
        simulated = [e for e in evals if not e.get("cached")]
        walls = [float(e.get("wall_s", 0.0)) for e in simulated]
        replicates = sum(int(e.get("replicates", 1)) for e in simulated)
        lines.append(
            f"  evaluations: {len(evals)} ({len(simulated)} simulated, "
            f"{cached} cache hits)"
        )
        if simulated:
            lines.append(
                f"  replicates: {replicates}  wall "
                f"p50={_fmt_seconds(_quantile(walls, 0.5))} "
                f"p95={_fmt_seconds(_quantile(walls, 0.95))} "
                f"total={_fmt_seconds(sum(walls))}"
            )
    if batches:
        # Batched-kernel dispatch (PR 6).  Older traces simply have no
        # ``oracle.batch`` events and skip this subsection; every access
        # uses ``.get`` with a default so they can never KeyError.
        lanes = sum(int(e.get("lanes", 0) or 0) for e in batches)
        configs = sum(int(e.get("configs", 0) or 0) for e in batches)
        walls = [float(e.get("wall_s", 0.0) or 0.0) for e in batches]
        lines.append(
            f"  batched kernel: {len(batches)} call(s), {lanes} lane(s) "
            f"over {configs} configuration(s), "
            f"wall total={_fmt_seconds(sum(walls))}"
        )


def _pool_section(events: List[dict], lines: List[str]) -> None:
    """Worker-pool resilience activity (``pool.*`` events, PR 5).

    Traces recorded before the fault-tolerant pool existed simply have no
    ``pool.*`` events and skip this section — every field access below
    uses ``.get`` with a default, so old traces can never KeyError.
    """
    retries = [e for e in events if e.get("kind") == "pool.retry"]
    respawns = [e for e in events if e.get("kind") == "pool.respawn"]
    quarantines = [e for e in events if e.get("kind") == "pool.quarantine"]
    degraded = [e for e in events if e.get("kind") == "pool.degraded"]
    if not (retries or respawns or quarantines or degraded):
        return
    lines.append("worker pool resilience")
    retried_tasks = sum(int(e.get("tasks", 0) or 0) for e in retries)
    lines.append(
        f"  retries: {retried_tasks} task(s) over {len(retries)} round(s)"
    )
    if respawns:
        reasons: Dict[str, int] = defaultdict(int)
        for e in respawns:
            reasons[str(e.get("reason", "unknown"))] += 1
        detail = ", ".join(
            f"{reasons[r]}x {r}" for r in sorted(reasons)
        )
        lines.append(f"  pool respawns: {len(respawns)} ({detail})")
    if quarantines:
        tasks = sorted(
            str(e.get("task_index", "?")) for e in quarantines
        )
        lines.append(
            f"  quarantined tasks: {len(quarantines)} "
            f"(indices {', '.join(tasks)}) — executed in-process"
        )
    for e in degraded:
        lines.append(
            f"  DEGRADED TO SERIAL: {e.get('reason', 'unknown reason')}"
        )


def _campaign_section(events: List[dict], lines: List[str]) -> None:
    """Fleet campaign activity (``campaign.*`` events, PR 7).

    Traces from single-run commands have no ``campaign.*`` events and
    skip this section; every field access uses ``.get`` with a default
    so pre-campaign traces can never KeyError.
    """
    starts = [e for e in events if e.get("kind") == "campaign.start"]
    wearer_done = [e for e in events if e.get("kind") == "campaign.wearer_done"]
    done = [e for e in events if e.get("kind") == "campaign.done"]
    if not (starts or wearer_done or done):
        return
    lines.append("campaign")
    for e in starts:
        lines.append(
            f"  start: {e.get('name', '?')} [{e.get('campaign', '?')}] "
            f"preset={e.get('preset', '?')}  "
            f"wearers={e.get('wearers', 0)}  "
            f"shards={e.get('shards', 0)}  jobs={e.get('jobs', 0)}"
        )
    if wearer_done:
        by_state: Dict[str, int] = defaultdict(int)
        for e in wearer_done:
            by_state[str(e.get("state", "?"))] += 1
        detail = ", ".join(
            f"{by_state[s]} {s}" for s in sorted(by_state)
        )
        found = sum(1 for e in wearer_done if e.get("found"))
        lines.append(
            f"  wearers completed: {len(wearer_done)} ({detail}), "
            f"{found} feasible"
        )
    for e in done:
        lines.append(
            f"  done: aggregate {e.get('aggregate_fingerprint', '?')}  "
            f"feasible {e.get('feasible', 0)}/{e.get('wearers', 0)}"
        )


def _fabric_section(events: List[dict], lines: List[str]) -> None:
    """Cross-host fabric activity (``queue.*``/``worker.*`` events, PR 8,
    plus the PR 9 cache/steal events).

    Traces recorded before the lease-based shard queue existed simply
    have none of these events and skip this section; every field access
    uses ``.get`` with a default so pre-fabric traces can never KeyError.
    """
    leases = [e for e in events if e.get("kind") == "queue.lease"]
    expires = [e for e in events if e.get("kind") == "queue.expire"]
    releases = [e for e in events if e.get("kind") == "queue.release"]
    commits = [e for e in events if e.get("kind") == "queue.commit"]
    done = [e for e in events if e.get("kind") == "queue.done"]
    worker_leases = [e for e in events if e.get("kind") == "worker.lease"]
    worker_commits = [e for e in events if e.get("kind") == "worker.commit"]
    splits = [e for e in events if e.get("kind") == "queue.split"]
    steals = [e for e in events if e.get("kind") == "queue.steal"]
    sub_commits = [e for e in events if e.get("kind") == "queue.sub_commit"]
    cache_events = [e for e in events if e.get("kind") == "cache.wearer"]
    backpressure = [
        e for e in events if e.get("kind") == "fabric.backpressure"
    ]
    auth_denials = [e for e in events if e.get("kind") == "fabric.auth"]
    promotions = [e for e in events if e.get("kind") == "fabric.promote"]
    if not (
        leases or expires or releases or commits or done
        or worker_leases or worker_commits
        or splits or steals or sub_commits or cache_events
        or backpressure or auth_denials or promotions
    ):
        return
    lines.append("fabric (lease queue / workers)")
    if leases:
        workers = sorted({str(e.get("worker", "?")) for e in leases})
        lines.append(
            f"  leases granted: {len(leases)} to {len(workers)} worker(s) "
            f"({', '.join(workers)})"
        )
    if expires:
        # Each expiry is a reassignment opportunity: the shard went back
        # to the pending pool after its worker stopped heartbeating.
        by_worker: Dict[str, int] = defaultdict(int)
        for e in expires:
            by_worker[str(e.get("worker", "?"))] += 1
        detail = ", ".join(
            f"{by_worker[w]}x {w}" for w in sorted(by_worker)
        )
        lines.append(
            f"  lease expirations (reassignments): {len(expires)} ({detail})"
        )
    if releases:
        lines.append(f"  voluntary releases: {len(releases)}")
    if commits:
        duplicates = sum(1 for e in commits if e.get("duplicate"))
        fresh = len(commits) - duplicates
        line = f"  shard commits: {fresh}"
        if duplicates:
            line += f" (+{duplicates} duplicate no-op(s))"
        lines.append(line)
        throughput: Dict[str, int] = defaultdict(int)
        for e in commits:
            if not e.get("duplicate"):
                throughput[str(e.get("worker", "?"))] += 1
        for w in sorted(throughput):
            lines.append(f"    {w}: {throughput[w]} shard(s)")
    if worker_commits and not commits:
        # Worker-side trace: the coordinator's queue.* events live in the
        # coordinator's own trace, so render this agent's view instead.
        by_worker: Dict[str, int] = defaultdict(int)
        for e in worker_commits:
            by_worker[str(e.get("worker", "?"))] += 1
        lines.append(f"  shards run and committed: {len(worker_commits)}")
        for w in sorted(by_worker):
            resumed = sum(
                int(e.get("wearers_resumed", 0))
                for e in worker_commits
                if str(e.get("worker", "?")) == w
            )
            line = f"    {w}: {by_worker[w]} shard(s)"
            if resumed:
                line += f" ({resumed} wearer(s) resumed from journals)"
            lines.append(line)
    if splits or steals or sub_commits:
        # Work stealing (PR 9): stragglers split into per-wearer
        # sub-leases, merged back through idempotent sub-commits.
        thieves: Dict[str, int] = defaultdict(int)
        for e in steals:
            thieves[str(e.get("worker", "?"))] += 1
        detail = ", ".join(
            f"{thieves[w]}x {w}" for w in sorted(thieves)
        )
        lines.append(
            f"  work stealing: {len(splits)} shard(s) split, "
            f"{len(steals)} wearer(s) stolen"
            + (f" ({detail})" if detail else "")
            + f", {len(sub_commits)} sub-commit(s)"
        )
    if cache_events:
        # Cross-campaign wearer cache (PR 9): hits are downloads, not
        # simulations; stores feed campaigns that follow.
        hits = sum(1 for e in cache_events if e.get("action") == "hit")
        stores = sum(
            1 for e in cache_events if e.get("action") == "store"
        )
        evictions = sum(
            1 for e in cache_events if e.get("action") == "evict"
        )
        by_source: Dict[str, int] = defaultdict(int)
        for e in cache_events:
            if e.get("action") == "hit":
                by_source[str(e.get("source", "?"))] += 1
        detail = ", ".join(
            f"{by_source[s]} via {s}" for s in sorted(by_source)
        )
        lines.append(
            f"  wearer cache: {hits} hit(s)"
            + (f" ({detail})" if detail else "")
            + f", {stores} store(s)"
            + (f", {evictions} eviction(s)" if evictions else "")
        )
    if backpressure:
        # Hardened fabric (PR 10): every 429 the admission layer handed
        # out, split by what tripped it (global in-flight cap vs the
        # per-connection sync spacing).
        by_scope: Dict[str, int] = defaultdict(int)
        for e in backpressure:
            by_scope[str(e.get("scope", "?"))] += 1
        detail = ", ".join(
            f"{by_scope[s]} {s}" for s in sorted(by_scope)
        )
        lines.append(
            f"  backpressure rejections (429): {len(backpressure)} "
            f"({detail})"
        )
    if auth_denials:
        unauthorized = sum(
            1 for e in auth_denials if e.get("status") == 401
        )
        forbidden = sum(1 for e in auth_denials if e.get("status") == 403)
        lines.append(
            f"  auth denials: {len(auth_denials)} "
            f"({unauthorized}x 401 bad/missing signature, "
            f"{forbidden}x 403 stale/replayed)"
        )
    for e in promotions:
        lines.append(
            f"  promotion: node {e.get('node', '?')} took over at "
            f"fencing epoch {e.get('epoch', '?')} "
            f"({e.get('resumed', 0)} campaign(s) resumed)"
        )
    for e in done:
        lines.append(
            f"  done: aggregate {e.get('aggregate_fingerprint', '?')}  "
            f"feasible {e.get('feasible', 0)}/{e.get('wearers', 0)}"
        )


def _milp_section(events: List[dict], lines: List[str]) -> None:
    solves = [e for e in events if e.get("kind") == "milp.solve"]
    if not solves:
        return
    nodes = sum(int(e.get("nodes", 0)) for e in solves)
    pivots = sum(int(e.get("lp_iterations", 0)) for e in solves)
    updates = sum(int(e.get("incumbent_updates", 0)) for e in solves)
    lines.append("milp")
    lines.append(
        f"  solves: {len(solves)}  B&B nodes: {nodes}  "
        f"LP pivots: {pivots}  incumbent updates: {updates}"
    )


def _des_section(events: List[dict], lines: List[str]) -> None:
    runs = [e for e in events if e.get("kind") == "des.run"]
    teardowns = [e for e in events if e.get("kind") == "des.teardown"]
    if not runs and not teardowns:
        return
    lines.append("des")
    if runs:
        total = sum(int(e.get("events", 0)) for e in runs)
        lines.append(f"  kernel runs: {len(runs)}  events executed: {total}")
    if teardowns:
        worst = max(float(e.get("worst_power_mw", 0.0)) for e in teardowns)
        lines.append(
            f"  teardowns: {len(teardowns)}  "
            f"max per-node power observed: {worst:.4f} mW"
        )


def _span_section(events: List[dict], lines: List[str]) -> None:
    ends = [e for e in events if e.get("kind") == "span_end"]
    if not ends:
        return
    by_name: Dict[str, List[float]] = defaultdict(list)
    for e in ends:
        by_name[str(e.get("name"))].append(float(e.get("dur_s", 0.0)))
    lines.append("spans (where the wall clock went)")
    width = max(len(n) for n in by_name)
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = by_name[name]
        lines.append(
            f"  {name:<{width}}  n={len(durs):<4d} "
            f"total={_fmt_seconds(sum(durs)):>9s}  "
            f"mean={_fmt_seconds(sum(durs) / len(durs)):>9s}  "
            f"max={_fmt_seconds(max(durs)):>9s}"
        )


def format_metrics(metrics: Dict[str, dict]) -> str:
    """Render a ``--metrics-out`` snapshot as a report section."""
    lines = ["metrics"]
    if not metrics:
        lines.append("  (no instruments recorded)")
        return "\n".join(lines)
    width = max(len(n) for n in metrics)
    for name in sorted(metrics):
        inst = metrics[name] if isinstance(metrics[name], dict) else {}
        itype = inst.get("type", "?")
        if itype == "histogram":
            lines.append(
                f"  {name:<{width}}  count={inst.get('count', 0)} "
                f"mean={inst.get('mean', 0.0):.4g} "
                f"p95={inst.get('p95', 0.0):.4g} "
                f"max={inst.get('max', 0.0):.4g}"
            )
        else:
            lines.append(
                f"  {name:<{width}}  {inst.get('value', 0.0):g}"
            )
    return "\n".join(lines)


def summarize(events: List[dict]) -> str:
    """Render the full report for an event list (see module docstring)."""
    lines: List[str] = []
    problem = check_span_balance(events)
    if problem is not None:
        lines.append(f"WARNING: trace is truncated or corrupt: {problem}")
    for section in (
        _manifest_section,
        _explorer_section,
        _faults_section,
        _oracle_section,
        _pool_section,
        _campaign_section,
        _fabric_section,
        _milp_section,
        _des_section,
        _span_section,
    ):
        before = len(lines)
        section(events, lines)
        if len(lines) > before:
            lines.append("")
    if not lines:
        return "(empty trace)"
    return "\n".join(lines).rstrip()


def summarize_file(path) -> str:
    events, _skipped = load_trace(path)
    return summarize(events)


USAGE = (
    "usage: python -m repro.analysis.trace_report [--json] "
    "[--metrics <metrics.json>] <trace.jsonl>"
)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_out = "--json" in argv
    if json_out:
        argv.remove("--json")
    metrics_path: Optional[str] = None
    if "--metrics" in argv:
        at = argv.index("--metrics")
        rest = argv[at + 1 : at + 2]
        if not rest:
            print(USAGE, file=sys.stderr)
            return 2
        metrics_path = rest[0]
        del argv[at : at + 2]
    if len(argv) != 1:
        print(USAGE, file=sys.stderr)
        return 2
    trace_path = argv[0]

    try:
        events, skipped = load_trace(trace_path)
    except OSError as exc:
        print(
            f"trace_report: cannot read trace {trace_path}: {exc}",
            file=sys.stderr,
        )
        return 1
    code = 0
    if not events:
        print(
            f"trace_report: {trace_path} contains no trace events "
            "(empty or fully corrupt file)",
            file=sys.stderr,
        )
        return 1
    if skipped:
        print(
            f"trace_report: {trace_path}: skipped {skipped} malformed "
            "line(s) — trace was truncated mid-line?",
            file=sys.stderr,
        )
        code = 1

    metrics: Optional[Dict[str, dict]] = None
    if metrics_path is not None:
        try:
            metrics = load_metrics(metrics_path)
        except OSError as exc:
            print(
                f"trace_report: cannot read metrics {metrics_path}: {exc}",
                file=sys.stderr,
            )
            code = 1
        except ValueError as exc:
            print(
                f"trace_report: bad metrics file {metrics_path}: {exc}",
                file=sys.stderr,
            )
            code = 1

    try:
        if json_out:
            print(json.dumps(explorer_sequence(events), indent=1))
        else:
            print(summarize(events))
            if metrics is not None:
                print()
                print(format_metrics(metrics))
    except BrokenPipeError:  # e.g. `... | head`
        sys.stderr.close()  # suppress the interpreter's EPIPE warning
        return code
    return code


if __name__ == "__main__":
    sys.exit(main())
