"""Baseline optimizers the paper compares Algorithm 1 against.

* :mod:`repro.baselines.exhaustive` — simulate every feasible
  configuration (the reference for the paper's "87% fewer simulations"
  claim);
* :mod:`repro.baselines.annealing` — simulated annealing over the same
  discrete space with the same simulation oracle (the paper's
  general-purpose comparator, reported 3× slower);
* :mod:`repro.baselines.random_search` — uniform random sampling, a
  sanity-check lower bar for any structured search.
"""

from repro.baselines.exhaustive import ExhaustiveSearch, ExhaustiveResult
from repro.baselines.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    SimulatedAnnealing,
)
from repro.baselines.random_search import RandomSearch, RandomSearchResult

__all__ = [
    "ExhaustiveSearch",
    "ExhaustiveResult",
    "SimulatedAnnealing",
    "AnnealingSchedule",
    "AnnealingResult",
    "RandomSearch",
    "RandomSearchResult",
]
