"""Simulated annealing over the Human Intranet design space.

The paper benchmarks Algorithm 1 against simulated annealing (the
``simanneal`` package) as a representative general-purpose optimizer and
reports a 3× average speedup for the MILP+DES approach.  This module is the
reproduction's from-scratch equivalent:

* **State**: a feasible :class:`Configuration`.
* **Moves**: mutate one component uniformly at random — toggle an optional
  location, swap a within-group location (hip↔hip, ankle↔ankle,
  wrist↔wrist), change the TX level, flip the MAC, flip the routing —
  rejecting mutations that violate the topological constraints.
* **Energy**: simulated worst-node power, plus a large penalty
  proportional to the PDR shortfall when the reliability constraint is
  violated (the standard soft-constraint treatment for SA on constrained
  spaces).
* **Schedule**: exponential cooling from ``t_max`` to ``t_min`` over a
  fixed step budget with Metropolis acceptance, mirroring simanneal's
  default behaviour.

Every energy query goes through the shared
:class:`repro.core.evaluator.SimulationOracle`, so SA pays for exactly the
*distinct* configurations it visits — the same cost model under which the
paper's 3× figure is measured.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.design_space import Configuration, DesignSpace
from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.problem import DesignProblem
from repro.library.mac_options import MacKind

#: Energy penalty per unit of PDR shortfall (mW per PDR fraction); large
#: enough that any feasible point beats any infeasible one.
PDR_PENALTY_MW = 1000.0


@dataclass(frozen=True)
class AnnealingSchedule:
    """Exponential cooling schedule."""

    t_max: float = 5.0
    t_min: float = 0.01
    steps: int = 150

    def __post_init__(self) -> None:
        if not (0 < self.t_min <= self.t_max):
            raise ValueError("need 0 < t_min <= t_max")
        if self.steps < 1:
            raise ValueError("need at least one step")

    def temperature(self, step: int) -> float:
        """Temperature at a given step (simanneal's exponential decay)."""
        if self.steps == 1:
            return self.t_max
        fraction = step / (self.steps - 1)
        return self.t_max * (self.t_min / self.t_max) ** fraction


@dataclass
class AnnealingResult:
    """Outcome of one SA run."""

    pdr_min: float
    best: Optional[EvaluationRecord]
    steps_taken: int
    simulations_run: int
    accepted_moves: int
    wall_seconds: float
    #: (step, simulations so far, best feasible power so far) trajectory;
    #: used for the time-to-quality comparison against Algorithm 1.
    trajectory: List[Tuple[int, int, float]] = field(default_factory=list)
    #: Aggregate oracle telemetry at the end of the run.  SA's proposal
    #: chain is inherently sequential (each move depends on the previous
    #: energy), so configuration-grain fan-out does not apply — but a
    #: parallel oracle still accelerates the replicates *within* each
    #: evaluation, and the cache-hit counters here quantify how often the
    #: schedule re-proposed an already-simulated point.
    oracle_stats: Optional[dict] = None

    def simulations_to_reach(self, power_mw: float, tolerance: float = 1e-9) -> Optional[int]:
        """Distinct simulations SA needed before first holding a feasible
        solution with power ≤ ``power_mw`` (None if never reached)."""
        for _step, sims, best_power in self.trajectory:
            if best_power <= power_mw + tolerance:
                return sims
        return None


class SimulatedAnnealing:
    """General-purpose SA baseline on the simulation oracle."""

    def __init__(
        self,
        problem: DesignProblem,
        oracle: Optional[SimulationOracle] = None,
        schedule: Optional[AnnealingSchedule] = None,
        seed: int = 0,
    ) -> None:
        self.problem = problem
        self.oracle = oracle or SimulationOracle(problem.scenario)
        self.schedule = schedule or AnnealingSchedule()
        self.rng = np.random.default_rng(seed)

    # -- state space -------------------------------------------------------------

    def initial_state(self) -> Configuration:
        """A deterministic feasible starting point: the first grid point."""
        return next(iter(self.problem.space.feasible_configurations()))

    def random_neighbor(self, config: Configuration) -> Configuration:
        """One random feasible mutation of ``config``."""
        space = self.problem.space
        for _attempt in range(64):
            candidate = self._mutate(config, space)
            if candidate is not None and space.contains(candidate):
                return candidate
        # The space is well connected; 64 failed attempts indicate a bug.
        raise RuntimeError("could not find a feasible neighbor")

    def _mutate(
        self, config: Configuration, space: DesignSpace
    ) -> Optional[Configuration]:
        kind = self.rng.integers(0, 5)
        if kind == 0:  # change TX level
            choices = [t for t in space.tx_levels_dbm if t != config.tx_dbm]
            return Configuration(
                config.placement,
                float(self.rng.choice(choices)),
                config.mac,
                config.routing,
            )
        if kind == 1:  # flip MAC
            mac = MacKind.TDMA if config.mac is MacKind.CSMA else MacKind.CSMA
            return Configuration(config.placement, config.tx_dbm, mac, config.routing)
        if kind == 2:  # switch to another routing scheme in the space
            choices = [r for r in space.routing_kinds if r is not config.routing]
            if not choices:
                return None
            routing = choices[int(self.rng.integers(0, len(choices)))]
            return Configuration(config.placement, config.tx_dbm, config.mac, routing)
        cons = space.constraints
        optional = [
            loc for loc in range(cons.num_locations) if loc not in cons.required
        ]
        placement = set(config.placement)
        if kind == 3:
            # Toggle one non-required location in or out (changes N).
            loc = int(self.rng.choice(optional))
            if loc in placement:
                placement.discard(loc)
            else:
                placement.add(loc)
        else:
            # kind == 4: size-preserving swap — move one occupied optional
            # location to an unoccupied one (e.g. left hip -> right hip).
            # Essential when the node-count budget is tight: toggles alone
            # cannot explore same-size placements there.
            occupied = [loc for loc in optional if loc in placement]
            vacant = [loc for loc in optional if loc not in placement]
            if not occupied or not vacant:
                return None
            placement.discard(int(self.rng.choice(occupied)))
            placement.add(int(self.rng.choice(vacant)))
        return Configuration(
            tuple(sorted(placement)), config.tx_dbm, config.mac, config.routing
        )

    # -- energy --------------------------------------------------------------------

    def energy(self, record: EvaluationRecord) -> float:
        """Penalized objective (lower is better)."""
        shortfall = max(0.0, self.problem.pdr_min - record.pdr)
        return record.power_mw + PDR_PENALTY_MW * shortfall

    # -- main loop -------------------------------------------------------------------

    def run(self, steps: Optional[int] = None) -> AnnealingResult:
        """Anneal for the scheduled number of steps."""
        schedule = self.schedule if steps is None else AnnealingSchedule(
            self.schedule.t_max, self.schedule.t_min, steps
        )
        start = time.perf_counter()
        sims_before = self.oracle.simulations_run

        current = self.oracle.evaluate(self.initial_state())
        current_energy = self.energy(current)
        best_feasible: Optional[EvaluationRecord] = (
            current if current.pdr >= self.problem.pdr_min else None
        )
        accepted = 0
        trajectory: List[Tuple[int, int, float]] = []

        for step in range(schedule.steps):
            temperature = schedule.temperature(step)
            neighbor = self.oracle.evaluate(self.random_neighbor(current.config))
            neighbor_energy = self.energy(neighbor)
            delta = neighbor_energy - current_energy
            if delta <= 0 or self.rng.random() < math.exp(-delta / temperature):
                current, current_energy = neighbor, neighbor_energy
                accepted += 1
            if neighbor.pdr >= self.problem.pdr_min and (
                best_feasible is None or neighbor.power_mw < best_feasible.power_mw
            ):
                best_feasible = neighbor
            trajectory.append(
                (
                    step,
                    self.oracle.simulations_run - sims_before,
                    best_feasible.power_mw if best_feasible else math.inf,
                )
            )

        return AnnealingResult(
            pdr_min=self.problem.pdr_min,
            best=best_feasible,
            steps_taken=schedule.steps,
            simulations_run=self.oracle.simulations_run - sims_before,
            accepted_moves=accepted,
            wall_seconds=time.perf_counter() - start,
            trajectory=trajectory,
            oracle_stats=self.oracle.stats(),
        )
