"""Exhaustive search: simulate every constraint-satisfying configuration.

This is the brute-force reference against which the paper reports an 87%
reduction in the number of required simulations.  It is also the ground
truth for correctness tests: Algorithm 1 must return the same optimum the
exhaustive sweep finds (same simulation oracle, same seed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.problem import DesignProblem


@dataclass
class ExhaustiveResult:
    """Outcome of an exhaustive sweep."""

    pdr_min: float
    best: Optional[EvaluationRecord]
    evaluations: List[EvaluationRecord] = field(default_factory=list)
    simulations_run: int = 0
    wall_seconds: float = 0.0

    @property
    def feasible(self) -> List[EvaluationRecord]:
        return [e for e in self.evaluations if e.pdr >= self.pdr_min]


class ExhaustiveSearch:
    """Evaluate the full feasible grid and pick the lifetime-optimal point.

    Because the objective (maximize NLT = minimize worst node power) is a
    deterministic function of the simulated power, the best configuration
    is simply the feasible evaluation with minimum simulated power; ties
    break on the configuration key for determinism.
    """

    def __init__(
        self, problem: DesignProblem, oracle: Optional[SimulationOracle] = None
    ) -> None:
        self.problem = problem
        self.oracle = oracle or SimulationOracle(problem.scenario)

    def search(self, limit: Optional[int] = None) -> ExhaustiveResult:
        """Sweep the feasible space (optionally capped for smoke tests).

        Configurations are fed to the oracle in deterministic grid order
        but in chunks, so a parallel oracle (``n_jobs > 1``) fans each
        chunk out across its worker pool; with a serial oracle the
        chunking is a no-op and evaluation order is unchanged.
        """
        start = time.perf_counter()
        sims_before = self.oracle.simulations_run
        evaluations: List[EvaluationRecord] = []
        chunk_size = max(1, 4 * self.oracle.n_jobs)
        chunk: List = []
        for index, config in enumerate(
            self.problem.space.feasible_configurations()
        ):
            if limit is not None and index >= limit:
                break
            chunk.append(config)
            if len(chunk) >= chunk_size:
                evaluations.extend(self.oracle.evaluate_many(chunk))
                chunk = []
        if chunk:
            evaluations.extend(self.oracle.evaluate_many(chunk))
        best = self._pick_best(evaluations)
        return ExhaustiveResult(
            pdr_min=self.problem.pdr_min,
            best=best,
            evaluations=evaluations,
            simulations_run=self.oracle.simulations_run - sims_before,
            wall_seconds=time.perf_counter() - start,
        )

    def _pick_best(
        self, evaluations: List[EvaluationRecord]
    ) -> Optional[EvaluationRecord]:
        feasible = [e for e in evaluations if e.pdr >= self.problem.pdr_min]
        if not feasible:
            return None
        return min(feasible, key=lambda e: (e.power_mw, e.config.key()))

    def required_simulations(self) -> int:
        """Number of simulations exhaustive search performs (the
        denominator of the paper's reduction figure) — one per feasible
        configuration, computable without running any."""
        return self.problem.space.feasible_count()
