"""Uniform random search: the weakest-baseline sanity check.

Not part of the paper's comparison, but included because any structured
search (MILP+DES or SA) should dominate it; the benchmark suite uses it to
contextualize both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.design_space import Configuration
from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.problem import DesignProblem


@dataclass
class RandomSearchResult:
    pdr_min: float
    best: Optional[EvaluationRecord]
    samples: int
    simulations_run: int
    wall_seconds: float
    evaluations: List[EvaluationRecord] = field(default_factory=list)


class RandomSearch:
    """Sample feasible configurations uniformly at random."""

    def __init__(
        self,
        problem: DesignProblem,
        oracle: Optional[SimulationOracle] = None,
        seed: int = 0,
    ) -> None:
        self.problem = problem
        self.oracle = oracle or SimulationOracle(problem.scenario)
        self.rng = np.random.default_rng(seed)
        # Materialize the feasible grid once; it is small (≈1300 points for
        # the paper's scenario) and uniform sampling needs the full list.
        self._grid: List[Configuration] = list(
            problem.space.feasible_configurations()
        )

    def run(self, samples: int) -> RandomSearchResult:
        """Evaluate ``samples`` uniform draws (with replacement; repeats
        hit the oracle cache and cost nothing extra)."""
        if samples < 1:
            raise ValueError("need at least one sample")
        start = time.perf_counter()
        sims_before = self.oracle.simulations_run
        # Draw the whole sample first (identical RNG consumption to the
        # old one-at-a-time loop), then evaluate as one batch so a
        # parallel oracle fans the distinct draws out across its pool.
        draws = [
            self._grid[int(self.rng.integers(0, len(self._grid)))]
            for _ in range(samples)
        ]
        evaluations: List[EvaluationRecord] = self.oracle.evaluate_many(draws)
        best: Optional[EvaluationRecord] = None
        for record in evaluations:
            if record.pdr >= self.problem.pdr_min and (
                best is None or record.power_mw < best.power_mw
            ):
                best = record
        return RandomSearchResult(
            pdr_min=self.problem.pdr_min,
            best=best,
            samples=samples,
            simulations_run=self.oracle.simulations_run - sims_before,
            wall_seconds=time.perf_counter() - start,
            evaluations=evaluations,
        )
