"""Benchmark regression subsystem (see DESIGN.md §8).

``repro.bench.hotpath`` measures the three optimized layers (DES kernel,
PHY fan-out, MILP warm starts) against the frozen seed implementations in
``repro.bench.reference``, asserting bit-identical results before any
speedup is reported.  ``repro.bench.fleet`` does the same for the
distributed fabric (cross-campaign warm cache, work stealing, batched
keep-alive RPCs), byte-comparing every fleet run against a single-host
golden.  The ``repro bench`` CLI subcommand writes the
``BENCH_hotpath.json`` / ``BENCH_fleet.json`` reports consumed by CI.
"""

from repro.bench.fleet import run_fleet_benchmarks
from repro.bench.hotpath import (
    bench_des_throughput,
    bench_explore_smoke,
    bench_milp_warm_vs_cold,
    bench_single_replicate,
    run_hotpath_benchmarks,
    write_report,
)

__all__ = [
    "bench_des_throughput",
    "bench_explore_smoke",
    "bench_milp_warm_vs_cold",
    "bench_single_replicate",
    "run_fleet_benchmarks",
    "run_hotpath_benchmarks",
    "write_report",
]
