"""Fleet-fabric benchmark: warm-cache reuse, work stealing, RPC batching.

Three measurements, one per PR 9 optimization, each with the repo's
identity-first discipline — every fleet run's ``aggregate.json`` and
``atlas.json`` are byte-compared against a single-host golden *before*
any timing is reported, so a fabric that got faster by changing answers
fails loudly:

* **warm cache** — the same wearer population submitted twice under
  different campaign names against one coordinator.  The first (cold)
  campaign simulates everything; the second (warm) campaign must
  re-simulate *nothing* — every wearer arrives as a coordinator
  prefetch riding the lease payload, verified by asserting that the
  warm workers wrote zero run journals.  The headline number is
  ``cold_wall / warm_wall``;
* **straggler stealing** — the whole population in a single shard, two
  workers, with stealing disabled vs enabled.  Without stealing the
  second worker idles while the first grinds the shard serially; with
  stealing it splits the straggler and works the wearer list tail-first
  until the fronts meet.  Byte-identity across both modes is the
  interesting claim: merged split-shard commits seal to the same bytes
  as a whole-shard commit;
* **RPC efficiency** — every phase records the workers' request and
  connection counters (one batched ``/fabric/sync`` per tick on a
  persistent keep-alive socket), asserting connections ≪ requests.

``repro bench --suite fleet`` writes the ``BENCH_fleet.json`` report
consumed by CI (same conventions as ``BENCH_hotpath.json``).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import pathlib
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.hotpath import environment_fingerprint, write_report
from repro.campaign.spec import CampaignSpec, make_population

#: Artifacts whose bytes every fleet run must reproduce exactly.
IDENTITY_ARTIFACTS = ("aggregate.json", "atlas.json")

#: Default population size: big enough that a straggler shard is worth
#: stealing from, small enough that the whole suite stays ~1 minute.
DEFAULT_WEARERS = 6


def _population(preset: str, size: int, name: str) -> CampaignSpec:
    return make_population(
        size, preset=preset, base_seed=47, pdr_bounds=(90, 95), name=name
    )


def _artifact_bytes(directory) -> Dict[str, bytes]:
    return {
        name: (pathlib.Path(directory) / name).read_bytes()
        for name in IDENTITY_ARTIFACTS
    }


def _assert_identical(label: str, directory, golden: Dict[str, bytes]) -> None:
    for name, want in golden.items():
        got = (pathlib.Path(directory) / name).read_bytes()
        if got != want:
            raise AssertionError(
                f"{label}: fleet-produced {name} differs from the "
                "single-host golden — the fabric changed result bytes"
            )


def _count_run_journals(root) -> int:
    """Run journals under ``root`` — each one is a wearer that actually
    simulated (cache hits write ``summary.json`` only)."""
    root = pathlib.Path(root)
    if not root.exists():
        return 0
    return sum(1 for _ in root.rglob("journal.jsonl"))


def _worker_process(
    url: str, workdir: str, name: str, throttle_s: float, queue
) -> None:
    """Child-process body: one WorkerAgent drained to idle, counters
    shipped back through ``queue``.  Separate *processes*, not threads —
    the simulations are CPU-bound pure Python, and a thread fleet would
    serialize on the GIL and hide exactly the wall-clock wins (stealing,
    caching) this benchmark exists to measure."""
    from repro.campaign.worker import WorkerAgent

    agent = WorkerAgent(
        url, workdir, name=name, poll_interval=0.05, exit_idle=0.5,
        throttle_s=throttle_s,
    )
    code = agent.run_forever()
    queue.put({
        "name": name,
        "exit_code": code,
        "rpc_requests": agent.client.requests,
        "connections_opened": agent.client.connections_opened,
        "wearers_run": agent.wearers_run,
        "wearers_skipped_stolen": agent.wearers_skipped,
        "shards_committed": agent.shards_committed,
    })


def _run_fleet(
    spec: CampaignSpec,
    root,
    workdirs: List[pathlib.Path],
    steal_enabled: bool = True,
    shards: Optional[int] = None,
    lease_ttl: float = 2.0,
    throttles: Optional[List[float]] = None,
    stagger: bool = False,
) -> Tuple[float, Dict]:
    """One fleet campaign start-to-aggregate; returns (wall, counters).

    ``throttles`` optionally slows individual workers down (per-wearer
    artificial delay) to model a heterogeneous fleet.  The clock starts
    when the worker processes are launched and stops the moment the
    coordinator's state flips to ``done`` (worker drain time is not the
    fabric's latency).
    """
    from repro.campaign.service import CampaignService

    # Fork (the repo's standard pool start method): worker startup is
    # milliseconds, so process launch does not distort short phases.
    ctx = multiprocessing.get_context("fork")

    async def scenario() -> Tuple[float, Dict]:
        service = CampaignService(
            root, shards=shards, lease_ttl=lease_ttl,
            steal_enabled=steal_enabled,
        )
        _, port = await service.start("127.0.0.1", 0)
        campaign_id = spec.fingerprint()
        stats_queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_worker_process,
                args=(
                    f"http://127.0.0.1:{port}", str(workdir),
                    f"bench-w{index}",
                    (throttles or [0.0] * len(workdirs))[index],
                    stats_queue,
                ),
                daemon=True,
            )
            for index, workdir in enumerate(workdirs)
        ]
        try:
            service.submit(spec, execution="fleet")
            t0 = time.perf_counter()
            if stagger and len(processes) > 1:
                # The first worker must own the shard before anyone else
                # arrives — the straggler scenario is deterministic, not
                # a race over who leases first.
                processes[0].start()
                while True:
                    status = service.status(campaign_id)
                    counts = status.get("queue") or {}
                    if (
                        status["state"] == "done"
                        or not counts.get("pending", 0)
                    ):
                        break
                    await asyncio.sleep(0.01)
                for process in processes[1:]:
                    process.start()
            else:
                for process in processes:
                    process.start()
            while service.status(campaign_id)["state"] != "done":
                await asyncio.sleep(0.01)
            wall = time.perf_counter() - t0
            while any(process.is_alive() for process in processes):
                await asyncio.sleep(0.05)
        finally:
            for process in processes:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()
            await service.stop()
        per_worker = [stats_queue.get(timeout=5.0) for _ in processes]
        counters = {
            key: sum(worker[key] for worker in per_worker)
            for key in (
                "rpc_requests", "connections_opened", "wearers_run",
                "wearers_skipped_stolen", "shards_committed",
            )
        }
        codes = {worker["exit_code"] for worker in per_worker}
        if codes != {0}:
            raise AssertionError(f"worker exit codes {sorted(codes)} != 0")
        return wall, counters

    return asyncio.run(scenario())


def run_fleet_benchmarks(
    preset: str = "ci",
    wearers: int = DEFAULT_WEARERS,
    workers: int = 2,
) -> Dict:
    """Run the three fleet measurements and assemble the report payload."""
    from repro.campaign.runner import run_campaign

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    try:
        spec_cold = _population(preset, wearers, name="fleet-cold")
        spec_warm = _population(preset, wearers, name="fleet-warm")

        # Single-host goldens, wearer cache off: the bytes every fleet
        # configuration below is required to reproduce.
        golden: Dict[str, Dict[str, bytes]] = {}
        for tag, spec in (("cold", spec_cold), ("warm", spec_warm)):
            directory = scratch / f"golden-{tag}"
            run_campaign(spec, directory, jobs=1)
            golden[tag] = _artifact_bytes(directory)

        # -- warm cache: same coordinator root, second campaign renames
        # the same wearer population, so every wearer is a cache hit.
        coord = scratch / "coord"
        cold_wall, cold_stats = _run_fleet(
            spec_cold, coord,
            [scratch / "work-cold" / f"w{i}" for i in range(workers)],
            lease_ttl=5.0,
        )
        _assert_identical(
            "cold fleet", coord / spec_cold.fingerprint(), golden["cold"]
        )
        warm_wall, warm_stats = _run_fleet(
            spec_warm, coord,
            [scratch / "work-warm" / f"w{i}" for i in range(workers)],
            lease_ttl=5.0,
        )
        _assert_identical(
            "warm fleet", coord / spec_warm.fingerprint(), golden["warm"]
        )
        warm_journals = _count_run_journals(scratch / "work-warm")
        if warm_journals:
            raise AssertionError(
                f"warm campaign simulated {warm_journals} wearer(s) — the "
                "cross-campaign cache failed to serve them"
            )

        # -- straggler: one shard on a *slow* worker (per-wearer throttle
        # modelling a loaded host — the classic straggler), a fast second
        # worker, stealing off vs on.  Fresh roots and fresh worker
        # caches each (no cross-talk with the phase above).  The slow
        # host is throttled identically in both modes; the only variable
        # is whether the fast worker may steal from it.
        throttle = 3.0
        straggler: Dict[str, Dict] = {}
        for mode, steal in (("without_steal", False), ("with_steal", True)):
            root = scratch / f"straggler-{mode}"
            wall, stats = _run_fleet(
                spec_cold, root,
                [scratch / f"work-{mode}" / f"w{i}" for i in range(workers)],
                steal_enabled=steal, shards=1, lease_ttl=2.0,
                throttles=[throttle] + [0.0] * (workers - 1),
                stagger=True,
            )
            _assert_identical(
                f"straggler {mode}",
                root / spec_cold.fingerprint(), golden["cold"],
            )
            straggler[mode] = {"wall_seconds": wall, **stats}

        total_requests = (
            cold_stats["rpc_requests"] + warm_stats["rpc_requests"]
            + straggler["without_steal"]["rpc_requests"]
            + straggler["with_steal"]["rpc_requests"]
        )
        total_connections = (
            cold_stats["connections_opened"]
            + warm_stats["connections_opened"]
            + straggler["without_steal"]["connections_opened"]
            + straggler["with_steal"]["connections_opened"]
        )
        if total_connections >= total_requests:
            raise AssertionError(
                f"keep-alive is not working: {total_connections} "
                f"connections for {total_requests} requests"
            )

        return {
            "benchmark": "fleet",
            "preset": preset,
            "wearers": wearers,
            "workers": workers,
            "environment": environment_fingerprint(),
            "warm_cache": {
                "cold_wall_seconds": cold_wall,
                "warm_wall_seconds": warm_wall,
                "speedup": cold_wall / warm_wall,
                "warm_worker_run_journals": warm_journals,
                "byte_identical": True,
                "cold": cold_stats,
                "warm": warm_stats,
            },
            "straggler": {
                "shards": 1,
                "slow_worker_throttle_s": throttle,
                "without_steal": straggler["without_steal"],
                "with_steal": straggler["with_steal"],
                "speedup": (
                    straggler["without_steal"]["wall_seconds"]
                    / straggler["with_steal"]["wall_seconds"]
                ),
                "byte_identical": True,
            },
            "rpc": {
                "total_requests": total_requests,
                "total_connections_opened": total_connections,
                "requests_per_connection": (
                    total_requests / max(1, total_connections)
                ),
            },
            "note": (
                "Every fleet run's aggregate.json and atlas.json are "
                "byte-compared against a cache-free single-host golden "
                "before any timing is reported.  The warm campaign "
                "re-simulated zero wearers (its workers wrote no run "
                "journals); the straggler comparison gives the whole "
                "shard to a throttled worker (modelling a loaded host), "
                "identically slow in both modes, and toggles only "
                "whether the fast worker may steal from it.  All worker "
                "traffic rides batched POST /fabric/sync calls on "
                "persistent keep-alive connections."
            ),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


__all__ = [
    "DEFAULT_WEARERS",
    "run_fleet_benchmarks",
    "write_report",
]
