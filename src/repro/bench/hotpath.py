"""Microbenchmarks for the hot-path overhaul, with built-in A/B checks.

Five benchmarks, one per optimized layer plus an end-to-end smoke:

* :func:`bench_des_throughput` — raw event throughput of the DES kernel
  under timer churn (schedule + cancel + drain), new kernel vs the seed
  copy in :mod:`repro.bench.reference`;
* :func:`bench_single_replicate` — one full simulation replicate, fast
  stack vs the end-to-end legacy stack, with a bit-identity assertion on
  every outcome field;
* :func:`bench_ensemble_batched` — the batched replicate kernel
  (:mod:`repro.core.batch`) racing a whole lane grid — TX variants of
  one topology across healthy + fault worlds — against both the fast
  scalar per-lane loop and the legacy reference stack, with a
  full-field bit-identity assertion on every lane;
* :func:`bench_milp_warm_vs_cold` — Algorithm 1's cut loop re-solved
  with and without warm-started bases; only ``solver.solve`` calls are
  timed (model construction is identical on both sides and excluded);
* :func:`bench_explore_smoke` — a whole ``explore()`` run on the given
  preset, the number the other three ultimately serve.

Every benchmark *asserts* that both sides produce identical results
before reporting a speedup — a benchmark that got faster by changing
answers must fail loudly, not report a win.  :func:`run_hotpath_benchmarks`
bundles everything into the ``BENCH_hotpath.json`` report written by
``repro bench`` (same shape as ``BENCH_parallel.json``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional

from repro.bench.reference import (
    LegacySimulator,
    build_network,
    legacy_network,
)
from repro.des.engine import Simulator

#: Default cut-loop length for the MILP benchmark; the ci design example
#: supports at least this many strictly tightening power cuts.
MILP_ITERATIONS = 5


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    return min(fn() for _ in range(max(1, repeats)))


# -- DES kernel -------------------------------------------------------------------


def _timer_churn(sim, n_events: int) -> int:
    """Schedule ``n_events`` staggered timers, cancel every third from
    inside the callbacks (retransmission-guard style), and drain."""
    pending: List = []

    def fire(i: int) -> None:
        # Cancel a previously scheduled neighbour — the MAC's dominant
        # pattern (guard timers cancelled by their acknowledgement).
        if i % 3 == 0 and pending:
            pending.pop().cancel()
        if i % 7 == 0:
            pending.append(sim.schedule(0.5, lambda: None))

    for i in range(n_events):
        # Deterministic pseudo-staggered delays (no RNG: keeps the two
        # kernels trivially comparable and the benchmark reproducible).
        delay = ((i * 2654435761) % 1000) / 1000.0 + 0.001
        sim.schedule(delay, fire, i)
    sim.run()
    return sim.events_executed


def bench_des_throughput(n_events: int = 50_000, repeats: int = 3) -> Dict:
    """Event throughput under schedule/cancel churn, new vs seed kernel."""

    def run_new() -> float:
        sim = Simulator()
        t0 = time.perf_counter()
        executed = _timer_churn(sim, n_events)
        elapsed = time.perf_counter() - t0
        run_new.executed = executed  # type: ignore[attr-defined]
        return elapsed

    def run_legacy() -> float:
        sim = LegacySimulator()
        t0 = time.perf_counter()
        executed = _timer_churn(sim, n_events)
        elapsed = time.perf_counter() - t0
        run_legacy.executed = executed  # type: ignore[attr-defined]
        return elapsed

    fast = _best_of(repeats, run_new)
    legacy = _best_of(repeats, run_legacy)
    if run_new.executed != run_legacy.executed:  # type: ignore[attr-defined]
        raise AssertionError(
            "DES benchmark kernels executed different event counts: "
            f"{run_new.executed} vs {run_legacy.executed}"  # type: ignore[attr-defined]
        )
    return {
        "events": run_new.executed,  # type: ignore[attr-defined]
        "fast_wall_seconds": fast,
        "legacy_wall_seconds": legacy,
        "fast_events_per_second": run_new.executed / fast,  # type: ignore[attr-defined]
        "speedup": legacy / fast,
        "identical_event_counts": True,
    }


# -- single replicate -------------------------------------------------------------


def bench_single_replicate(preset: str = "ci", repeats: int = 3) -> Dict:
    """One simulation replicate: fast stack vs end-to-end legacy stack.

    Asserts the two outcomes are bit-identical field by field before
    reporting any timing.
    """
    from repro.experiments.scenario import make_scenario, make_space

    scenario = make_scenario(preset)
    # Bench the densest feasible placement: fan-out width is what the
    # PHY fast path optimizes, and the dense configurations dominate the
    # oracle's wall time when Algorithm 1 sweeps candidate sets.
    config = max(
        make_space(preset).feasible_configurations(),
        key=lambda c: (len(c.placement), c.key()),
    )

    outcomes = {}

    def run(kind: str) -> float:
        factory = build_network if kind == "fast" else legacy_network
        net = factory(scenario, config)
        t0 = time.perf_counter()
        outcome = net.run(scenario.tsim_s)
        elapsed = time.perf_counter() - t0
        outcomes[kind] = outcome
        return elapsed

    # Interleave the two stacks so slow machine drift (thermal throttling,
    # co-tenant load) hits both sides equally instead of biasing whichever
    # ran second; best-of then rejects the transient spikes.
    fast_times: List[float] = []
    legacy_times: List[float] = []
    for _ in range(max(1, repeats)):
        fast_times.append(run("fast"))
        legacy_times.append(run("legacy"))
    fast = min(fast_times)
    legacy = min(legacy_times)

    a, b = outcomes["fast"], outcomes["legacy"]
    mismatches = [
        field
        for field in (
            "pdr", "node_pdrs", "node_powers_mw", "worst_power_mw",
            "nlt_days", "totals", "events_executed", "mean_latency_s",
        )
        if getattr(a, field) != getattr(b, field)
    ]
    if mismatches:
        raise AssertionError(
            f"fast and legacy stacks disagree on {mismatches} — the fast "
            "path changed simulated results"
        )
    return {
        "preset": preset,
        "tsim_s": scenario.tsim_s,
        "events_executed": a.events_executed,
        "fast_wall_seconds": fast,
        "legacy_wall_seconds": legacy,
        "speedup": legacy / fast,
        "bit_identical_outcome": True,
    }


# -- batched ensemble -------------------------------------------------------------


def bench_ensemble_batched(preset: str = "ci", repeats: int = 3) -> Dict:
    """The batched replicate kernel vs per-lane scalar evaluation.

    The lane grid mirrors the production ensemble workloads: the densest
    feasible placement at two TX levels, each evaluated healthy, under
    the E4 hub-stress ensemble, and under sampled correlated fault
    worlds.  Before any timing, every batched lane is asserted
    bit-identical — every ``SimulationOutcome`` field, including the
    windowed PDR series — to both the fast scalar path and the legacy
    reference stack; the headline ``speedup`` follows the repo
    convention of racing the frozen legacy reference, with the fast
    scalar path reported alongside.
    """
    import dataclasses

    from repro.core.batch import batch_unsupported_reason, evaluate_batch
    from repro.core.parallel import run_fixed_replicates
    from repro.experiments.scenario import make_scenario, make_space
    from repro.faults.model import hub_stress_ensemble, sample_fault_ensemble
    from repro.net.network import average_outcomes

    scenario = make_scenario(preset)
    dense = max(
        make_space(preset).feasible_configurations(),
        key=lambda c: (len(c.placement), c.key()),
    )
    # Two TX variants of the dense topology: the kernel shares one event
    # skeleton across them (different fan-out power plans only).
    tx_levels = sorted(
        {c.tx_dbm for c in make_space(preset).feasible_configurations()
         if c.placement == dense.placement
         and c.mac == dense.mac and c.routing == dense.routing}
    )
    configs = [
        dataclasses.replace(dense, tx_dbm=tx)
        for tx in (tx_levels[0], tx_levels[-1])
    ]
    reason = batch_unsupported_reason(scenario, configs[0])
    if reason is not None:
        raise AssertionError(f"benchmark configuration not batchable: {reason}")
    worlds = [None]
    worlds += list(hub_stress_ensemble(
        scenario.tsim_s,
        coordinator=scenario.coordinator_location,
        outage_fraction=0.2,
        size=2,
    ))
    worlds += list(sample_fault_ensemble(
        9,
        scenario.seed + 11,
        scenario.tsim_s,
        locations=dense.placement,
        coordinator=scenario.coordinator_location,
        correlated_links=True,
    ))
    lanes = len(configs) * len(worlds)

    def scalar_outcome(config, world):
        faulted = dataclasses.replace(scenario, fault_scenario=world)
        return run_fixed_replicates(faulted, config)

    def legacy_outcome(config, world):
        """One lane on the frozen reference stack (replicate average)."""
        outcomes = [
            legacy_network(
                scenario, config, seed=scenario.seed, replicate=rep,
                fault_scenario=world,
            ).run(scenario.tsim_s)
            for rep in range(scenario.replicates)
        ]
        return average_outcomes(outcomes, scenario.battery)

    # Bit identity first: a kernel that got faster by changing answers
    # must fail loudly before any speedup is computed.
    batched = evaluate_batch(scenario, configs, worlds)
    for ci, config in enumerate(configs):
        for wi, world in enumerate(worlds):
            got = batched[(ci, wi)]
            for kind, ref in (
                ("scalar", scalar_outcome(config, world)),
                ("legacy", legacy_outcome(config, world)),
            ):
                mismatched = [
                    f.name
                    for f in dataclasses.fields(ref)
                    if getattr(got, f.name) != getattr(ref, f.name)
                ]
                if mismatched:
                    raise AssertionError(
                        f"batched lane (config {ci}, world {wi}, "
                        f"{getattr(world, 'name', 'healthy')}) disagrees "
                        f"with the {kind} path on {mismatched}"
                    )

    # Interleave the three stacks per repeat so machine drift hits all
    # sides equally; best-of rejects transient spikes.  The batched pass
    # is an order of magnitude shorter than the other two, so a single
    # scheduling hiccup distorts it far more — it gets three samples per
    # round (still a tiny fraction of the round's wall time) so its
    # best-of reaches the same noise floor as the long passes.
    batched_times: List[float] = []
    scalar_times: List[float] = []
    legacy_times: List[float] = []
    for _ in range(max(1, repeats)):
        for _inner in range(3):
            t0 = time.perf_counter()
            evaluate_batch(scenario, configs, worlds)
            batched_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for config in configs:
            for world in worlds:
                scalar_outcome(config, world)
        scalar_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for config in configs:
            for world in worlds:
                legacy_outcome(config, world)
        legacy_times.append(time.perf_counter() - t0)
    batched_wall = min(batched_times)
    scalar_wall = min(scalar_times)
    legacy_wall = min(legacy_times)

    return {
        "preset": preset,
        "tsim_s": scenario.tsim_s,
        "replicates": scenario.replicates,
        "configs": len(configs),
        "worlds": len(worlds),
        "world_names": [getattr(w, "name", "healthy") for w in worlds],
        "lanes": lanes,
        "batched_wall_seconds": batched_wall,
        "scalar_wall_seconds": scalar_wall,
        "legacy_wall_seconds": legacy_wall,
        "speedup": legacy_wall / batched_wall,
        "speedup_vs_fast_scalar": scalar_wall / batched_wall,
        "identical_outcomes": True,
    }


# -- MILP warm starts -------------------------------------------------------------


def bench_milp_warm_vs_cold(
    preset: str = "ci",
    iterations: int = MILP_ITERATIONS,
    repeats: int = 3,
) -> Dict:
    """Algorithm 1's tightening cut loop, warm-started vs cold.

    The model sequence replays what ``enumerate_candidates`` builds: the
    relaxation with no cut, then with one cut row whose rhs tightens to
    the previous optimum each iteration.  Only ``solver.solve`` is timed;
    the (identical) model builds are excluded from both sides.
    """
    from repro.core.milp_builder import MilpFormulation
    from repro.experiments.scenario import make_problem
    from repro.milp.branch_bound import BranchAndBoundSolver

    form = MilpFormulation(make_problem(pdr_min=0.9, preset=preset))

    # Derive the tightening cut sequence once, untimed.
    cut_lists: List[List[float]] = []
    cuts: List[float] = []
    probe = BranchAndBoundSolver(use_warm_starts=False)
    for _ in range(max(2, iterations)):
        cut_lists.append(list(cuts))
        model, _ = form.build(cuts)
        result = probe.solve(model)
        if not result.is_optimal or result.objective is None:
            break
        cuts = [result.objective]

    def solve_pass(warm: bool) -> float:
        solver = BranchAndBoundSolver(use_warm_starts=warm)
        basis = None
        total = 0.0
        objectives = []
        for cut_list in cut_lists:
            model, _ = form.build(cut_list)
            t0 = time.perf_counter()
            result = solver.solve(model, root_warm_start=basis)
            total += time.perf_counter() - t0
            basis = result.root_basis if warm else None
            objectives.append(result.objective)
        solve_pass.objectives = objectives  # type: ignore[attr-defined]
        return total

    warm_objs: Optional[List] = None
    cold_objs: Optional[List] = None

    def run_warm() -> float:
        nonlocal warm_objs
        t = solve_pass(True)
        warm_objs = solve_pass.objectives  # type: ignore[attr-defined]
        return t

    def run_cold() -> float:
        nonlocal cold_objs
        t = solve_pass(False)
        cold_objs = solve_pass.objectives  # type: ignore[attr-defined]
        return t

    warm = _best_of(repeats, run_warm)
    cold = _best_of(repeats, run_cold)
    if warm_objs != cold_objs:
        raise AssertionError(
            f"warm and cold optima differ: {warm_objs} vs {cold_objs}"
        )
    return {
        "preset": preset,
        "solves": len(cut_lists),
        "objectives_mw": warm_objs,
        "warm_wall_seconds": warm,
        "cold_wall_seconds": cold,
        "speedup": cold / warm,
        "identical_objectives": True,
    }


# -- end-to-end smoke -------------------------------------------------------------


def bench_explore_smoke(preset: str = "ci", pdr_min: float = 0.9) -> Dict:
    """One full Algorithm 1 run: the end-to-end number the layer
    benchmarks serve.  Run once (it dominates the harness wall time)."""
    from repro.core.explorer import HumanIntranetExplorer
    from repro.experiments.scenario import make_problem

    problem = make_problem(pdr_min=pdr_min, preset=preset)
    explorer = HumanIntranetExplorer(problem)
    t0 = time.perf_counter()
    result = explorer.explore()
    elapsed = time.perf_counter() - t0
    return {
        "preset": preset,
        "pdr_min": pdr_min,
        "wall_seconds": elapsed,
        "iterations": len(result.iterations),
        "status": result.status,
        "simulations_run": result.simulations_run,
        "milp_solves": result.milp_solves,
    }


# -- harness ----------------------------------------------------------------------


def environment_fingerprint() -> Dict:
    """Where the numbers came from: interpreter, numpy, host shape.

    Benchmark reports are compared across machines and over time; the
    fingerprint makes a regression distinguishable from an environment
    change (different interpreter, different numpy, different core
    count).
    """
    import platform

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a baked-in dependency
        numpy_version = None
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy_version": numpy_version,
        "cpu_count": os.cpu_count(),
        "cpu_count_provenance": "os.cpu_count()",
    }


def run_hotpath_benchmarks(
    preset: str = "ci",
    repeats: int = 3,
    des_events: int = 50_000,
) -> Dict:
    """Run all five benchmarks and assemble the report payload."""
    des = bench_des_throughput(n_events=des_events, repeats=repeats)
    replicate = bench_single_replicate(preset=preset, repeats=repeats)
    ensemble = bench_ensemble_batched(preset=preset, repeats=repeats)
    milp = bench_milp_warm_vs_cold(preset=preset, repeats=repeats)
    explore = bench_explore_smoke(preset=preset)
    return {
        "benchmark": "hotpath",
        "preset": preset,
        "cpu_count": os.cpu_count(),
        "environment": environment_fingerprint(),
        "des_throughput": des,
        "single_replicate": replicate,
        "ensemble_batched": ensemble,
        "milp_warm_vs_cold": milp,
        "explore_smoke": explore,
        "speedup_single_replicate": replicate["speedup"],
        "speedup_ensemble_batched": ensemble["speedup"],
        "speedup_milp_warm": milp["speedup"],
        "speedup_des_events": des["speedup"],
        "note": (
            "Legacy side runs the seed implementations (reference PHY "
            "loop, per-sample RNG registry lookups, seed DES kernel) "
            "preserved in repro.bench.reference; every benchmark asserts "
            "bit-identical results before reporting a speedup.  The "
            "ensemble_batched speedup additionally reports the batched "
            "kernel vs the fast scalar per-lane loop "
            "(speedup_vs_fast_scalar)."
        ),
    }


def write_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
