"""Frozen pre-optimization implementations for honest A/B benchmarks.

The hot-path overhaul (fast PHY fan-out, cached RNG stream handles,
lazily-compacted event heap) rewrote the seed implementations in place,
so "how much faster did we get?" needs the *old* code to race against.
This module carries verbatim copies of the seed versions of the three
rewritten hot spots:

* :class:`LegacySimulator` / :class:`LegacyEvent` — the seed DES kernel
  (O(n) ``pending_count``, no heap compaction, double-dispatch
  ``schedule`` → ``schedule_at``);
* :class:`LegacyOrnsteinUhlenbeckFading` — per-sample f-string stream
  lookup, frozen-dataclass attribute chains, tuple state records;
* :class:`LegacyNodeShadowing` — same, for the per-node occlusion chain.

:func:`legacy_network` builds a :class:`~repro.net.network.Network` whose
channel processes and event kernel are swapped for these copies and whose
medium runs the reference per-receiver delivery loop — i.e. the seed
stack end to end.  Both stacks consume identical RNG streams in identical
order, so a legacy run and a fast run of the same replicate produce
bit-identical outcomes; the benchmark harness asserts this on every run.

These classes are benchmark fixtures, not supported simulation API.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.channel.fading import FadingParameters, _clip
from repro.des.rng import RngStreams
from repro.obs.runtime import get_active


class LegacyEvent:
    """Seed scheduled-callback record (no back-reference to the sim, so
    cancellations are never counted and the heap never compacts)."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "done")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.done = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.done


class LegacySimulator:
    """The seed event-scheduling kernel, verbatim.

    Interface-compatible with :class:`repro.des.engine.Simulator` (the
    subset the network stack uses), so :func:`legacy_network` can drop it
    in via the module symbol.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, LegacyEvent]] = []
        self._counter = itertools.count()
        self._running = False
        self._events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_count(self) -> int:
        # The seed's O(n) scan — one of the costs the overhaul removed.
        return sum(1 for *_rest, ev in self._heap if ev.pending)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> LegacyEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> LegacyEvent:
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        if not math.isfinite(time):
            raise ValueError("event time must be finite")
        event = LegacyEvent(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def step(self) -> bool:
        while self._heap:
            time, _priority, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            event.done = True
            self._events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                next_time = self._next_live_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            obs = get_active()
            obs.counter("des.runs").inc()
            obs.counter("des.events").inc(executed)

    def _next_live_time(self) -> Optional[float]:
        while self._heap:
            time, _priority, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None


class LegacyOrnsteinUhlenbeckFading:
    """Seed OU fading: registry lookup by f-string key on every sample."""

    def __init__(self, params: FadingParameters, rng: RngStreams) -> None:
        self.params = params
        self.rng = rng
        self._state: Dict[Tuple[int, int], Tuple[float, float]] = {}

    def sample(self, i: int, j: int, t: float) -> float:
        key = (i, j) if i <= j else (j, i)
        stream = self.rng.stream(f"fading/{key[0]}-{key[1]}")
        p = self.params
        state = self._state.get(key)
        if state is None:
            value = float(stream.normal(0.0, p.sigma_db)) if p.sigma_db > 0 else 0.0
            value = _clip(value, p.clip_db)
            self._state[key] = (t, value)
            return value
        last_t, last_v = state
        if t < last_t - 1e-12:
            raise ValueError(
                f"fading sampled backwards in time on link {key}: {t} < {last_t}"
            )
        dt = max(0.0, t - last_t)
        if dt == 0.0:
            return last_v
        if p.sigma_db == 0:
            value = 0.0
        else:
            rho = math.exp(-dt / p.coherence_time_s)
            mean = last_v * rho
            std = p.sigma_db * math.sqrt(max(0.0, 1.0 - rho * rho))
            value = float(stream.normal(mean, std))
            value = _clip(value, p.clip_db)
        self._state[key] = (t, value)
        return value

    def peek(self, i: int, j: int) -> float:
        key = (i, j) if i <= j else (j, i)
        state = self._state.get(key)
        return 0.0 if state is None else state[1]

    def reset(self) -> None:
        self._state.clear()


class LegacyNodeShadowing:
    """Seed per-node occlusion chain: same per-sample lookup costs."""

    def __init__(self, params: FadingParameters, rng: RngStreams) -> None:
        self.params = params
        self.rng = rng
        self._state: Dict[int, Tuple[float, bool]] = {}
        p = params
        if p.shadow_fraction > 0:
            self._exit_rate = 1.0 / p.shadow_dwell_s
            self._entry_rate = self._exit_rate * p.shadow_fraction / (
                1.0 - p.shadow_fraction
            )
            self._relax = self._exit_rate + self._entry_rate
        else:
            self._exit_rate = self._entry_rate = self._relax = 0.0

    def is_occluded(self, node: int, t: float) -> bool:
        p = self.params
        if p.shadow_fraction <= 0 or p.shadow_depth_db <= 0:
            return False
        stream = self.rng.stream(f"shadow/{node}")
        state = self._state.get(node)
        pi = p.shadow_fraction
        if state is None:
            occluded = bool(stream.uniform() < pi)
            self._state[node] = (t, occluded)
            return occluded
        last_t, was_occluded = state
        if t < last_t - 1e-12:
            raise ValueError(
                f"shadowing sampled backwards in time for node {node}"
            )
        dt = max(0.0, t - last_t)
        if dt == 0.0:
            return was_occluded
        decay = math.exp(-self._relax * dt)
        if was_occluded:
            p_on = pi + (1.0 - pi) * decay
        else:
            p_on = pi * (1.0 - decay)
        occluded = bool(stream.uniform() < p_on)
        self._state[node] = (t, occluded)
        return occluded

    def extra_loss_db(self, i: int, j: int, t: float) -> float:
        depth = self.params.shadow_depth_db
        if depth <= 0:
            return 0.0
        loss = 0.0
        if self.is_occluded(i, t):
            loss += depth
        if self.is_occluded(j, t):
            loss += depth
        return loss

    def reset(self) -> None:
        self._state.clear()


def build_network(
    scenario, config, seed: int = 0, replicate: int = 0, fault_scenario=None
):
    """A current-stack Network for one (scenario, configuration) pair.

    ``fault_scenario`` overrides the scenario's own fault world (the
    ensemble benchmark races one topology across many explicit worlds).
    """
    from repro.net.network import Network

    return Network(
        placement=config.placement,
        radio_spec=scenario.radio,
        tx_mode=scenario.tx_mode(config.tx_dbm),
        mac_options=scenario.mac_options(config.mac),
        routing_options=scenario.routing_options(config.routing),
        app_params=scenario.app,
        battery=scenario.battery,
        seed=seed,
        replicate=replicate,
        body=scenario.body,
        pathloss_params=scenario.pathloss,
        fading_params=scenario.fading,
        fault_scenario=(
            fault_scenario
            if fault_scenario is not None
            else getattr(scenario, "fault_scenario", None)
        ),
    )


def legacy_network(
    scenario, config, seed: int = 0, replicate: int = 0, fault_scenario=None
):
    """A Network running the seed hot paths end to end.

    Three swaps reconstruct the pre-overhaul stack:

    * the module symbol ``repro.net.network.Simulator`` is redirected to
      :class:`LegacySimulator` for the duration of construction, so every
      component schedules against the seed kernel;
    * the channel's fading/shadowing processes are replaced (before any
      sample is drawn) with the seed copies, restoring the per-sample
      stream-registry lookups;
    * ``medium.use_fast_path = False`` selects the reference per-receiver
      link-budget loop and delivery resolution.

    All three preserve the RNG draw order, so outcomes stay bit-identical
    to the fast stack.
    """
    import repro.net.network as network_mod

    original = network_mod.Simulator
    network_mod.Simulator = LegacySimulator  # type: ignore[misc]
    try:
        net = build_network(
            scenario, config, seed=seed, replicate=replicate,
            fault_scenario=fault_scenario,
        )
    finally:
        network_mod.Simulator = original  # type: ignore[misc]
    net.medium.use_fast_path = False
    fading = net.channel.fading
    shadowing = net.channel.shadowing
    net.channel.fading = LegacyOrnsteinUhlenbeckFading(fading.params, fading.rng)
    net.channel.shadowing = LegacyNodeShadowing(shadowing.params, shadowing.rng)
    return net
