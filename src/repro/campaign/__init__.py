"""Fleet-scale campaign layer: design a Human Intranet per wearer.

The paper optimizes one network for one wearer; this package treats
"design a network for each of N wearers" as the workload.  A
:class:`~repro.campaign.spec.CampaignSpec` describes the population
(per-wearer seeds, reliability bounds, solve/robust knobs) and fingerprints
it; :mod:`~repro.campaign.shard` deterministically partitions wearers into
shards; :mod:`~repro.campaign.runner` executes the shards over the
fault-tolerant :class:`~repro.core.parallel.WorkerPool` with one crash-safe
:class:`~repro.core.journal.RunJournal` per wearer run under the campaign
directory; :mod:`~repro.campaign.aggregate` rolls the per-wearer summaries
up into fleet-level artifacts (per-cohort Pareto atlases, deterministic
aggregate fingerprint, throughput telemetry); and
:mod:`~repro.campaign.service` serves submit/status/result/artifact over a
stdlib-only async HTTP API with the journals as the durable backend, so a
killed service resumes every in-flight campaign byte-identically.

The cross-host fabric rides on top: :mod:`~repro.campaign.queue` turns a
submitted campaign into a lease-based shard queue (at-least-once
execution, CRC-keyed idempotent commits, journal-backed lease recovery)
hosted by the service's pull/lease endpoints, and
:mod:`~repro.campaign.worker` is the agent (``hi-explore worker``) that
turns any host into simulation capacity — the fleet's aggregate stays
byte-identical to a single-host run of the same spec.

Both the ``hi-explore campaign``/``serve`` subcommands and programmatic
callers go through the same :func:`~repro.campaign.runner.run_campaign`
code path — the CLI is a thin shell over this package.
"""

from repro.campaign.spec import CampaignSpec, WearerSpec, make_population
from repro.campaign.shard import shard_assignment, shard_of
from repro.campaign.runner import CampaignReport, run_campaign
from repro.campaign.aggregate import build_aggregate
from repro.campaign.queue import CampaignQueue, QueueError, shard_payload_crc
from repro.campaign.worker import WorkerAgent, run_worker

__all__ = [
    "CampaignSpec",
    "WearerSpec",
    "make_population",
    "shard_assignment",
    "shard_of",
    "CampaignReport",
    "run_campaign",
    "build_aggregate",
    "CampaignQueue",
    "QueueError",
    "shard_payload_crc",
    "WorkerAgent",
    "run_worker",
]
