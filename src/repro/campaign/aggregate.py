"""Fleet-level aggregation over per-wearer run summaries.

The aggregate report is built exclusively from *deterministic* inputs —
the campaign spec and each wearer's ``summary.json`` (already a
wall-clock-free projection, see
:func:`repro.core.journal.summary_projection`) — and serializes with
sorted keys, so an uninterrupted campaign and any kill/resume chain of it
produce **byte-identical** ``aggregate.json`` and ``atlas.json``
artifacts.  That byte identity is the campaign-level extension of PR 5's
per-run guarantee, and it is what the chaos test and the campaign-smoke
CI job diff.

Non-deterministic observations (wall time, throughput, pool resilience
counters) are deliberately routed to a separate ``telemetry.json`` that
never enters the aggregate fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.analysis.pareto import front_from_points

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.spec import CampaignSpec

#: Report file names inside a campaign directory.
AGGREGATE_FILENAME = "aggregate.json"
ATLAS_FILENAME = "atlas.json"
TELEMETRY_FILENAME = "telemetry.json"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def aggregate_fingerprint(payload: dict) -> str:
    """Digest of an aggregate payload (minus any embedded fingerprint)."""
    body = {k: v for k, v in payload.items() if k != "fingerprint"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()[:16]


def _best_point(wearer, summary: dict) -> Optional[dict]:
    """Normalize a wearer's ``best`` block (solve and robust summaries
    serialize differently) into one atlas point, or ``None``."""
    best = summary.get("best")
    if not best:
        return None
    if wearer.mode == "robust":
        # RobustExplorationResult.to_dict → ResilienceRecord.to_dict:
        # the atlas plots healthy objectives, like the paper's Fig. 3.
        return {
            "wearer_id": wearer.wearer_id,
            "label": best["config"],
            "pdr": best["healthy_pdr"],
            "power_mw": best["healthy_power_mw"],
            "nlt_days": best["healthy_nlt_days"],
        }
    from repro.core.design_space import Configuration
    from repro.library.mac_options import MacKind, RoutingKind

    config = Configuration(
        placement=tuple(best["placement"]),
        tx_dbm=best["tx_dbm"],
        mac=MacKind(best["mac"]),
        routing=RoutingKind(best["routing"]),
    )
    return {
        "wearer_id": wearer.wearer_id,
        "label": config.label(),
        "pdr": best["pdr"],
        "power_mw": best["power_mw"],
        "nlt_days": best["nlt_days"],
    }


def _stat(summary: dict, key: str) -> int:
    stats = summary.get("oracle_stats") or {}
    return int(stats.get(key, 0) or 0)


def build_aggregate(
    spec: "CampaignSpec", summaries: Dict[str, dict]
) -> dict:
    """Roll per-wearer summaries up into the fleet aggregate payload.

    ``summaries`` maps wearer id → that wearer's deterministic summary
    projection.  Every wearer in the spec must be present — aggregating a
    partial campaign would produce an artifact that *looks* final.
    """
    missing = [w.wearer_id for w in spec.wearers if w.wearer_id not in summaries]
    if missing:
        raise ValueError(f"missing wearer summaries: {missing}")

    cohorts: Dict[str, dict] = {}
    for wearer in spec.wearers:  # spec order; ids are unique
        summary = summaries[wearer.wearer_id]
        point = _best_point(wearer, summary)
        entry = {
            "wearer_id": wearer.wearer_id,
            "mode": wearer.mode,
            "seed": wearer.seed,
            "pdr_min": wearer.pdr_min,
            "status": summary.get("status"),
            "found": point is not None,
            "simulations_run": _stat(summary, "simulations_run"),
            "cache_hits": _stat(summary, "cache_hits"),
            "best": point,
        }
        cohort = cohorts.setdefault(
            wearer.cohort, {"wearers": [], "atlas": []}
        )
        cohort["wearers"].append(entry)

    for cohort in cohorts.values():
        points = [e["best"] for e in cohort["wearers"] if e["best"]]
        front = front_from_points(points)
        cohort["atlas"] = [
            {
                "wearer_id": p.record.wearer_id,
                "label": p.label,
                "nlt_days": p.nlt_days,
                "pdr": p.pdr,
            }
            for p in front
        ]

    all_entries = [e for c in cohorts.values() for e in c["wearers"]]
    payload = {
        "kind": "campaign_aggregate",
        "campaign": spec.fingerprint(),
        "name": spec.name,
        "preset": spec.preset,
        "wearers": len(spec.wearers),
        "feasible": sum(1 for e in all_entries if e["found"]),
        "simulations_run": sum(e["simulations_run"] for e in all_entries),
        "cache_hits": sum(e["cache_hits"] for e in all_entries),
        "cohorts": cohorts,
    }
    payload["fingerprint"] = aggregate_fingerprint(payload)
    return payload


def atlas_payload(aggregate: dict) -> dict:
    """The standalone Pareto-atlas artifact (one front per cohort)."""
    return {
        "kind": "campaign_atlas",
        "campaign": aggregate["campaign"],
        "fingerprint": aggregate["fingerprint"],
        "cohorts": {
            name: cohort["atlas"]
            for name, cohort in aggregate["cohorts"].items()
        },
    }


def format_aggregate(aggregate: dict) -> str:
    """Human-readable fleet report for the CLI."""
    lines = [
        f"campaign {aggregate['name']} "
        f"[{aggregate['campaign']}] preset={aggregate['preset']}",
        f"  wearers: {aggregate['wearers']}  "
        f"feasible: {aggregate['feasible']}  "
        f"simulations: {aggregate['simulations_run']}  "
        f"cache hits: {aggregate['cache_hits']}",
        f"  aggregate fingerprint: {aggregate['fingerprint']}",
    ]
    for name in sorted(aggregate["cohorts"]):
        cohort = aggregate["cohorts"][name]
        lines.append(
            f"  cohort {name}: {len(cohort['wearers'])} wearer(s), "
            f"Pareto atlas {len(cohort['atlas'])} point(s)"
        )
        for point in cohort["atlas"]:
            lines.append(
                f"    NLT={point['nlt_days']:6.1f} d  "
                f"PDR={100 * point['pdr']:6.2f}%  "
                f"{point['wearer_id']}  {point['label']}"
            )
    return "\n".join(lines)


def telemetry_payload(
    spec: "CampaignSpec",
    aggregate: dict,
    wall_seconds: float,
    shards: int,
    jobs: int,
    pool_stats: Optional[dict] = None,
    resumed_wearers: int = 0,
) -> dict:
    """Throughput + resilience roll-up (non-deterministic by design)."""
    wearers = len(spec.wearers)
    return {
        "kind": "campaign_telemetry",
        "campaign": spec.fingerprint(),
        "aggregate_fingerprint": aggregate["fingerprint"],
        "shards": shards,
        "jobs": jobs,
        "wearers": wearers,
        "resumed_wearers": resumed_wearers,
        "wall_seconds": wall_seconds,
        "wearers_per_minute": (
            60.0 * wearers / wall_seconds if wall_seconds > 0 else None
        ),
        "simulations_run": aggregate["simulations_run"],
        "cache_hits": aggregate["cache_hits"],
        "cache_hit_rate": (
            aggregate["cache_hits"]
            / (aggregate["cache_hits"] + aggregate["simulations_run"])
            if aggregate["cache_hits"] + aggregate["simulations_run"]
            else 0.0
        ),
        "pool": pool_stats or {},
    }
