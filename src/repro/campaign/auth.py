"""Shared-secret HMAC authentication for fabric RPCs (DESIGN.md §14).

The PR 8/9 fabric trusted the network: lease tokens were unauthenticated
bearer secrets, so anyone who could reach the coordinator's port could
acquire leases, commit divergent bytes (bounded only by the CRC checks),
or poison the wearer cache.  This module closes that hole with a keyed
request-signature scheme shared by the coordinator and every worker:

* Both sides hold one **shared secret** (``--fabric-secret`` or the
  ``REPRO_FABRIC_SECRET`` environment variable).  The secret never goes
  on the wire.
* Every protected request carries three headers — a wall-clock
  **timestamp**, a random **nonce**, and an HMAC-SHA256 **signature**
  over the canonical string ``method \\n path \\n sha256(body) \\n
  timestamp \\n nonce``.  Covering the body hash means a valid signature
  cannot be spliced onto a different payload; covering method + path
  means it cannot be replayed against a different endpoint.
* The verifier recomputes the signature and compares with
  :func:`hmac.compare_digest` (constant-time — the comparison leaks no
  prefix information), then enforces a **freshness window**: timestamps
  more than ``window_s`` from the verifier's clock are refused, and a
  nonce seen before within the window is a replay.  The nonce cache is
  bounded (entries expire with the window), so it cannot be grown
  without bound by an attacker.

Status mapping (the 401/403 distinction):

* **401 Unauthorized** — the request is not authenticated: headers
  missing or malformed, or the signature does not verify.  The caller
  does not hold the secret (or mangled the request).
* **403 Forbidden** — the signature *is* valid (the caller holds the
  secret) but the request is not acceptable: timestamp outside the
  freshness window, or a replayed nonce.  A legitimate worker with a
  skewed clock sees 403s, never silent acceptance.

Either way the request is rejected **before any state mutation** — the
service authenticates as the first step of routing a protected path.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import secrets
import time
from typing import Callable, Dict, Optional

#: Environment variable consulted when ``--fabric-secret`` is not given.
SECRET_ENV_VAR = "REPRO_FABRIC_SECRET"

#: Wire header names (lowercase: the service lowercases header names).
TIMESTAMP_HEADER = "x-fabric-timestamp"
NONCE_HEADER = "x-fabric-nonce"
SIGNATURE_HEADER = "x-fabric-signature"

#: Default freshness window in seconds: generous enough for loaded CI
#: hosts and coarse NTP, tight enough that a captured request is useless
#: minutes later.
DEFAULT_AUTH_WINDOW = 60.0

#: Nonce cache ceiling — pruning triggers on insert, so memory stays
#: bounded even under a flood of uniquely-nonced requests.
MAX_NONCE_CACHE = 65536


class AuthError(Exception):
    """A rejected request; ``status`` is 401 (unauthenticated) or 403
    (authenticated but stale/replayed)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def resolve_secret(explicit: Optional[str]) -> Optional[str]:
    """The fabric secret: the explicit flag wins, then the environment.
    ``None`` (or empty) means auth-disabled legacy mode."""
    secret = explicit if explicit else os.environ.get(SECRET_ENV_VAR)
    return secret or None


class FabricAuth:
    """Signer/verifier for one shared secret.

    One instance per process end: the coordinator verifies with its
    instance, each worker signs with its own.  ``clock`` is injectable
    for the skew/replay tests.
    """

    def __init__(
        self,
        secret: str,
        window_s: float = DEFAULT_AUTH_WINDOW,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not secret:
            raise ValueError("fabric secret must be non-empty")
        self._key = secret.encode("utf-8")
        self.window_s = float(window_s)
        self.clock = clock
        #: nonce → expiry time (pruned lazily on verify).
        self._nonces: Dict[str, float] = {}

    # -- signing -----------------------------------------------------------------

    def signature(
        self, method: str, path: str, body: bytes, timestamp: str,
        nonce: str,
    ) -> str:
        canonical = "\n".join(
            (
                method.upper(),
                path,
                hashlib.sha256(body or b"").hexdigest(),
                timestamp,
                nonce,
            )
        )
        return hmac.new(
            self._key, canonical.encode("utf-8"), hashlib.sha256
        ).hexdigest()

    def sign(self, method: str, path: str, body: bytes) -> Dict[str, str]:
        """Authentication headers for one request."""
        timestamp = f"{self.clock():.3f}"
        nonce = secrets.token_hex(16)
        return {
            TIMESTAMP_HEADER: timestamp,
            NONCE_HEADER: nonce,
            SIGNATURE_HEADER: self.signature(
                method, path, body, timestamp, nonce
            ),
        }

    # -- verification ------------------------------------------------------------

    def _prune(self, now: float) -> None:
        if len(self._nonces) <= MAX_NONCE_CACHE:
            return
        self._nonces = {
            nonce: expiry
            for nonce, expiry in self._nonces.items()
            if expiry > now
        }

    def verify(
        self, method: str, path: str, body: bytes,
        headers: Dict[str, str],
    ) -> None:
        """Raise :class:`AuthError` unless the request is authentic,
        fresh, and first-of-its-nonce.  Mutates nothing until every
        check has passed (the nonce is recorded last)."""
        timestamp = headers.get(TIMESTAMP_HEADER)
        nonce = headers.get(NONCE_HEADER)
        signature = headers.get(SIGNATURE_HEADER)
        if not timestamp or not nonce or not signature:
            raise AuthError(
                401,
                "fabric auth required: request is missing the "
                f"{TIMESTAMP_HEADER}/{NONCE_HEADER}/{SIGNATURE_HEADER} "
                "headers",
            )
        expected = self.signature(method, path, body, timestamp, nonce)
        if not hmac.compare_digest(expected, signature):
            raise AuthError(
                401, "fabric auth failed: bad request signature"
            )
        # Past this point the caller provably holds the secret; what
        # remains are freshness checks → 403, not 401.
        try:
            issued = float(timestamp)
        except ValueError:
            raise AuthError(
                403, f"unparseable auth timestamp {timestamp!r}"
            ) from None
        now = self.clock()
        if abs(now - issued) > self.window_s:
            raise AuthError(
                403,
                f"auth timestamp {issued:.3f} is outside the "
                f"{self.window_s:.0f}s freshness window (server clock "
                f"{now:.3f}) — re-sign and resend",
            )
        expiry = self._nonces.get(nonce)
        if expiry is not None and expiry > now:
            raise AuthError(
                403,
                "replayed request: this nonce was already accepted "
                "within the freshness window",
            )
        self._prune(now)
        self._nonces[nonce] = now + self.window_s
        return None
