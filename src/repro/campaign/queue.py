"""Lease-based shard queue: the coordinator side of the campaign fabric.

PR 7's campaign runtime shards a wearer population across *processes* on
one host; this module decomposes a campaign into shard-grain work items
that flow across *hosts*.  A :class:`CampaignQueue` owns one campaign's
shards and hands them to pulling workers under time-limited leases:

* ``acquire(worker)`` — lease the lowest pending shard to ``worker``
  (expired leases are reclaimed first, so a dead worker's shard goes
  back on offer after at most one TTL);
* ``heartbeat(token)`` — renew a live lease; an unknown or expired token
  is refused, which is how a worker that lost its lease finds out;
* ``release(token)`` — voluntary return (graceful drain);
* ``commit(shard, summaries, crc, ...)`` — upload the shard's per-wearer
  summaries, CRC-checked and **idempotent**: commits are keyed by the
  payload's content CRC, so a double-commit of identical bytes is a
  no-op while divergent bytes are a loud integrity error (determinism
  makes divergence a bug, never a race).

Execution is therefore *at-least-once* with *idempotent commits*: a
shard may be simulated by several workers across reassignments, but
every one of them produces byte-identical summaries (per-wearer runs are
pure functions of the spec), so the first commit wins and the rest
collapse into no-ops.  That is the whole correctness argument — the
aggregate built from committed summaries is byte-identical to a
single-host ``run_campaign`` of the same spec.

**Wearer-grain work stealing** (PR 9) extends the same state machine one
level down.  When ``acquire`` finds no pending shard, the queue *splits*
a straggler (the leased shard with the most wearers) into per-wearer
sub-leases: the original holder's lease stays valid — its heartbeats now
return the set of wearers stolen from under it, which it skips — while
idle workers lease remaining wearers one at a time, **tail-first**
(the original runs head-first, so the two fronts meet with at most one
wearer of overlap).  Sub-commits go through the same CRC-keyed
idempotent path at wearer grain; a commit against a split shard may
cover any subset of its wearers and merges wearer by wearer, and the
shard seals with an ordinary shard-level commit record once every wearer
has landed.  All of it is journaled (``split`` / ``sub_lease`` /
``sub_renew`` / ``sub_release`` / ``sub_expire`` / ``sub_commit``), so a
restarted coordinator recovers mid-steal exactly like mid-lease.

Durability mirrors the rest of the runtime: every lease/renew/expire/
release/commit is appended to a CRC-framed
:class:`~repro.core.journal.EventLog` (``queue.jsonl``) *after* its
filesystem effects, so a restarted coordinator replays the log and
recovers every in-flight lease (which then expires and is reassigned)
and every committed shard (whose summaries are already on disk).
"""

from __future__ import annotations

import hmac
import json
import pathlib
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.aggregate import (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
    build_aggregate,
    telemetry_payload,
)
from repro.campaign.shard import shard_assignment
from repro.campaign.spec import CampaignSpec
from repro.core.journal import (
    CAMPAIGN_MANIFEST_FILENAME,
    QUEUE_LOG_FILENAME,
    SHARD_MANIFEST_FILENAME,
    SUMMARY_FILENAME,
    EventLog,
    JournalError,
    load_campaign_manifest,
    payload_crc,
    shard_directory,
    write_campaign_manifest,
    write_shard_manifest,
    write_summary,
)

#: Default lease time-to-live in seconds: long enough for a smoke-preset
#: shard, short enough that a dead worker's shard is back on offer fast.
DEFAULT_LEASE_TTL = 30.0


def mint_token(epoch: int) -> str:
    """A fresh single-use lease capability, stamped with the fencing
    epoch of the coordinator that granted it (``e<epoch>.<random>``).

    The epoch is what makes coordinator handoff safe: a promoted standby
    claims a higher epoch, so grants from a deposed-but-still-running
    primary are recognisable as stale wherever they show up (see
    :func:`token_epoch` and DESIGN.md §14).
    """
    return f"e{int(epoch)}.{uuid.uuid4().hex}"


def token_epoch(token: Optional[str]) -> Optional[int]:
    """The fencing epoch a token was minted under, or None for a token
    that does not carry one (pre-PR-10 journals)."""
    if not token or not token.startswith("e"):
        return None
    head, sep, _ = token.partition(".")
    if not sep:
        return None
    try:
        return int(head[1:])
    except ValueError:
        return None


def tokens_equal(a: Optional[str], b: Optional[str]) -> bool:
    """Constant-time token comparison.

    Lease tokens are bearer capabilities; comparing them with ``==``
    leaks how many leading bytes matched through response timing, which
    is exactly the oracle an attacker needs to forge one byte-by-byte.
    Every token comparison in the fabric routes through here.
    """
    if a is None or b is None:
        return a is None and b is None
    return hmac.compare_digest(
        str(a).encode("utf-8"), str(b).encode("utf-8")
    )


class QueueError(RuntimeError):
    """A queue operation that cannot be honoured; ``status`` maps it to
    an HTTP status when the operation arrived over the wire."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def shard_payload_crc(summaries: Dict[str, dict]) -> str:
    """The content CRC keying a shard commit.

    Computed over the wearer→summary mapping's canonical JSON by both
    the worker (before upload) and the coordinator (on receipt), so a
    corrupted or reordered payload is rejected before it can touch disk,
    and two byte-identical executions of the same shard produce the same
    commit key no matter which worker ran them.
    """
    return payload_crc({"summaries": summaries})


def wearer_payload_crc(summary: dict) -> str:
    """The content CRC keying one wearer's sub-commit (same canonical-
    JSON construction as :func:`shard_payload_crc`, one level down)."""
    return payload_crc({"summary": summary})


def _fresh_sub() -> dict:
    return {"state": "pending", "worker": None, "token": None,
            "expires_at": None, "crc": None}


class CampaignQueue:
    """One campaign's shard-grain work queue (see the module docstring).

    All mutation happens on the coordinator's event loop (the HTTP
    service routes synchronously), so there is no internal locking; the
    ``clock`` hook exists for lease-expiry tests and defaults to wall
    time because expiries must survive a coordinator restart.
    ``steal_enabled`` gates the wearer-grain split path — identical
    artifacts either way, stealing only changes who simulates what.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory,
        shards: int,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,
        steal_enabled: bool = True,
        epoch: int = 0,
    ) -> None:
        from repro.obs import runtime

        self.spec = spec
        self.directory = pathlib.Path(directory)
        self.fingerprint = spec.fingerprint()
        self.lease_ttl = float(lease_ttl)
        self.clock = clock
        self.steal_enabled = bool(steal_enabled)
        #: Fencing epoch stamped into every minted token.  Outstanding
        #: leases from *earlier* epochs stay valid across a handoff (the
        #: journal replay restores them, so in-flight work commits
        #: without re-simulation); tokens from a *later* epoch than ours
        #: mean this queue belongs to a deposed coordinator → 410.
        self.epoch = int(epoch)
        self.obs = runtime.get_active()
        self._started = clock()

        shards = max(1, int(shards))
        manifest_path = self.directory / CAMPAIGN_MANIFEST_FILENAME
        if manifest_path.exists():
            manifest = load_campaign_manifest(self.directory)
            if manifest.get("fingerprint") != self.fingerprint:
                raise JournalError(
                    f"campaign directory {self.directory} belongs to "
                    f"campaign {manifest.get('fingerprint')!r}, not "
                    f"{self.fingerprint!r} — refusing to mix campaigns"
                )
            shards = int(manifest.get("shards", shards))
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            write_campaign_manifest(
                self.directory, spec.to_dict(), self.fingerprint, shards
            )
        self.shards = shards

        #: shard index → ordered wearer ids (the work-item decomposition).
        assignment = shard_assignment(spec, shards)
        self.wearers_of: Dict[int, List[str]] = {
            index: [w.wearer_id for w in wearers]
            for index, wearers in sorted(assignment.items())
        }
        for index, wearer_ids in self.wearers_of.items():
            shard_dir = shard_directory(self.directory, index)
            if not (shard_dir / SHARD_MANIFEST_FILENAME).exists():
                write_shard_manifest(
                    self.directory, index, self.fingerprint, wearer_ids
                )

        #: shard index → {"state": pending|leased|split|committed, ...}
        self._shards: Dict[int, dict] = {
            index: {"state": "pending", "worker": None, "token": None,
                    "expires_at": None, "crc": None}
            for index in self.wearers_of
        }
        #: split shard index → wearer id → sub-lease state (same fields).
        self._subs: Dict[int, Dict[str, dict]] = {}
        #: live token → (shard index, wearer id or None for a whole-shard
        #: lease) — leases are single-use capabilities at either grain.
        self._tokens: Dict[str, Tuple[int, Optional[str]]] = {}
        self._log = EventLog(self.directory / QUEUE_LOG_FILENAME)
        self._replay(self._log.entries)
        # An empty shard has nothing to simulate: commit it immediately
        # (with an empty summary map) so the campaign can complete even
        # when the sharder left holes.
        for index, wearer_ids in self.wearers_of.items():
            if not wearer_ids and self._shards[index]["state"] != "committed":
                self.commit(index, {}, shard_payload_crc({}),
                            worker="coordinator", token=None)

    # -- durable state -----------------------------------------------------------

    def _replay(self, entries: List[dict]) -> None:
        """Fold the queue log back into in-memory shard state.

        Commits are final; a lease without a later commit/release/expire
        is restored verbatim (including its wall-clock expiry), so a
        restarted coordinator neither forgets who held a shard nor
        reassigns it before the original TTL has truly run out.  Split
        shards restore their per-wearer sub-state the same way.
        """
        for entry in entries:
            kind = entry.get("kind")
            shard = entry.get("shard")
            if shard not in self._shards:
                continue
            state = self._shards[shard]
            subs = self._subs.get(shard)
            sub = (
                subs.get(entry.get("wearer"))
                if subs is not None and entry.get("wearer") is not None
                else None
            )
            if kind == "lease":
                state.update(
                    state="leased",
                    worker=entry.get("worker"),
                    token=entry.get("token"),
                    expires_at=entry.get("expires_at"),
                )
            elif kind == "renew" and tokens_equal(
                state["token"], entry.get("token")
            ):
                state["expires_at"] = entry.get("expires_at")
            elif kind in ("release", "expire"):
                if state["state"] == "split":
                    # Only the original whole-shard lease went away; the
                    # shard stays split and its wearers stay stealable.
                    state.update(worker=None, token=None, expires_at=None)
                elif state["state"] != "committed":
                    state.update(state="pending", worker=None, token=None,
                                 expires_at=None)
            elif kind == "split":
                if state["state"] != "committed":
                    state["state"] = "split"
                    self._subs[shard] = {
                        wid: _fresh_sub() for wid in self.wearers_of[shard]
                    }
            elif kind == "sub_lease" and sub is not None:
                if sub["state"] != "committed":
                    sub.update(
                        state="leased",
                        worker=entry.get("worker"),
                        token=entry.get("token"),
                        expires_at=entry.get("expires_at"),
                    )
            elif kind == "sub_renew" and sub is not None:
                if tokens_equal(sub["token"], entry.get("token")):
                    sub["expires_at"] = entry.get("expires_at")
            elif kind in ("sub_release", "sub_expire") and sub is not None:
                if sub["state"] != "committed":
                    sub.update(state="pending", worker=None, token=None,
                               expires_at=None)
            elif kind == "sub_commit" and sub is not None:
                sub.update(
                    state="committed", worker=entry.get("worker"),
                    token=None, expires_at=None, crc=entry.get("crc"),
                )
            elif kind == "commit":
                state.update(
                    state="committed",
                    worker=entry.get("worker"),
                    token=None,
                    expires_at=None,
                    crc=entry.get("crc"),
                )
                self._subs.pop(shard, None)
        self._tokens = {}
        for index, s in self._shards.items():
            if s["state"] in ("leased", "split") and s["token"]:
                self._tokens[s["token"]] = (index, None)
        for index, subs in self._subs.items():
            for wid, s in subs.items():
                if s["state"] == "leased" and s["token"]:
                    self._tokens[s["token"]] = (index, wid)

    def _record(self, kind: str, **fields) -> None:
        self._log.append({"kind": kind, "campaign": self.fingerprint,
                          **fields})

    # -- lease state machine -----------------------------------------------------

    def reclaim_expired(self) -> List[int]:
        """Return every shard/wearer whose lease TTL has lapsed to
        ``pending``.

        Called lazily at the top of every queue interaction — the
        coordinator needs no timer thread because a reclaim only matters
        when someone is around to observe or acquire.
        """
        now = self.clock()
        reclaimed = []
        for index, state in self._shards.items():
            if (
                state["state"] in ("leased", "split")
                and state["expires_at"] is not None
                and state["expires_at"] <= now
            ):
                self._tokens.pop(state["token"], None)
                self._record(
                    "expire", shard=index, token=state["token"],
                    worker=state["worker"],
                )
                self.obs.counter("queue.expirations").inc()
                self.obs.event(
                    "queue.expire", campaign=self.fingerprint, shard=index,
                    worker=state["worker"],
                )
                if state["state"] == "split":
                    # The original holder died mid-split: its remaining
                    # wearers are already individually stealable.
                    state.update(worker=None, token=None, expires_at=None)
                else:
                    state.update(state="pending", worker=None, token=None,
                                 expires_at=None)
                reclaimed.append(index)
        for index, subs in self._subs.items():
            for wid, sub in subs.items():
                if (
                    sub["state"] == "leased"
                    and sub["expires_at"] is not None
                    and sub["expires_at"] <= now
                ):
                    self._tokens.pop(sub["token"], None)
                    self._record(
                        "sub_expire", shard=index, wearer=wid,
                        token=sub["token"], worker=sub["worker"],
                    )
                    self.obs.counter("queue.expirations").inc()
                    self.obs.event(
                        "queue.expire", campaign=self.fingerprint,
                        shard=index, wearer=wid, worker=sub["worker"],
                    )
                    sub.update(state="pending", worker=None, token=None,
                               expires_at=None)
                    reclaimed.append(index)
        return reclaimed

    def acquire(self, worker: str) -> Optional[dict]:
        """Lease work to ``worker`` (None = nothing to hand out).

        Preference order: the lowest pending shard (whole-shard lease,
        the payload carrying everything a remote worker needs — campaign
        fingerprint, preset, wearer specs, token, TTL); then, with
        stealing enabled, a pending wearer of an already-split shard;
        finally, splitting the biggest leased straggler to steal from.
        """
        self.reclaim_expired()
        for index in sorted(self._shards):
            state = self._shards[index]
            if state["state"] != "pending":
                continue
            token = mint_token(self.epoch)
            expires_at = self.clock() + self.lease_ttl
            state.update(state="leased", worker=worker, token=token,
                         expires_at=expires_at)
            self._tokens[token] = (index, None)
            self._record(
                "lease", shard=index, worker=worker, token=token,
                ttl=self.lease_ttl, expires_at=expires_at,
            )
            self.obs.counter("queue.leases").inc()
            self.obs.event(
                "queue.lease", campaign=self.fingerprint, shard=index,
                worker=worker,
            )
            wearer_ids = set(self.wearers_of[index])
            return {
                "campaign": self.fingerprint,
                "name": self.spec.name,
                "preset": self.spec.preset,
                "shard": index,
                "token": token,
                "ttl": self.lease_ttl,
                "wearers": [
                    w.to_dict()
                    for w in self.spec.wearers
                    if w.wearer_id in wearer_ids
                ],
            }
        if not self.steal_enabled:
            return None
        lease = self._acquire_sub(worker)
        if lease is not None:
            return lease
        candidate = None
        for index in sorted(self._shards):
            state = self._shards[index]
            if (
                state["state"] == "leased"
                and len(self.wearers_of[index]) >= 2
                and state["worker"] != worker
            ):
                if candidate is None or (
                    len(self.wearers_of[index])
                    > len(self.wearers_of[candidate])
                ):
                    candidate = index
        if candidate is None:
            return None
        self._split(candidate)
        return self._acquire_sub(worker)

    def _split(self, index: int) -> None:
        """Decompose a leased straggler into per-wearer sub-leases.

        The original holder keeps its lease — its next heartbeat will
        carry the stolen-wearer set so it can skip them — and every
        wearer becomes individually pending underneath.
        """
        state = self._shards[index]
        self._subs[index] = {
            wid: _fresh_sub() for wid in self.wearers_of[index]
        }
        state["state"] = "split"
        self._record("split", shard=index, worker=state["worker"],
                     token=state["token"])
        self.obs.counter("queue.splits").inc()
        self.obs.event(
            "queue.split", campaign=self.fingerprint, shard=index,
            worker=state["worker"], wearers=len(self.wearers_of[index]),
        )

    def _acquire_sub(self, worker: str) -> Optional[dict]:
        """Grant one pending wearer of a split shard, tail-first.

        Tail-first because the original holder runs its wearer list
        head-first: granting from the opposite end means the two fronts
        meet with at most one wearer simulated twice.
        """
        for index in sorted(self._subs):
            if self._shards[index]["state"] != "split":
                continue
            subs = self._subs[index]
            for wid in reversed(self.wearers_of[index]):
                sub = subs[wid]
                if sub["state"] != "pending":
                    continue
                token = mint_token(self.epoch)
                expires_at = self.clock() + self.lease_ttl
                sub.update(state="leased", worker=worker, token=token,
                           expires_at=expires_at)
                self._tokens[token] = (index, wid)
                self._record(
                    "sub_lease", shard=index, wearer=wid, worker=worker,
                    token=token, ttl=self.lease_ttl, expires_at=expires_at,
                )
                self.obs.counter("queue.steals").inc()
                self.obs.event(
                    "queue.steal", campaign=self.fingerprint, shard=index,
                    wearer=wid, worker=worker,
                )
                return {
                    "campaign": self.fingerprint,
                    "name": self.spec.name,
                    "preset": self.spec.preset,
                    "shard": index,
                    "sub": wid,
                    "token": token,
                    "ttl": self.lease_ttl,
                    "wearers": [self.spec.wearer(wid).to_dict()],
                }
        return None

    def _lease_for(self, token: str) -> Tuple[int, Optional[str]]:
        self.reclaim_expired()
        # Linear constant-time scan instead of a dict lookup: hashing a
        # presented token would shortcut on the first differing byte and
        # reopen the timing channel tokens_equal exists to close.  Live
        # token counts are O(workers), so the scan is cheap.
        for live_token, target in self._tokens.items():
            if tokens_equal(live_token, token):
                return target
        presented = token_epoch(token)
        if presented is not None and presented > self.epoch:
            raise QueueError(
                410,
                f"lease token carries fencing epoch {presented} but this "
                f"coordinator is at epoch {self.epoch} — it has been "
                "superseded; fail over to the current coordinator",
            )
        raise QueueError(
            410,
            "lease is gone (expired, released, or never granted) — "
            "the shard may have been reassigned",
        )

    def stolen_wearers(self, index: int) -> List[str]:
        """Wearers of a split shard the original holder should skip:
        sub-committed already, or sub-leased to someone else."""
        subs = self._subs.get(index)
        if not subs:
            return []
        holder = self._shards[index]["worker"]
        return [
            wid
            for wid in self.wearers_of[index]
            if subs[wid]["state"] == "committed"
            or (
                subs[wid]["state"] == "leased"
                and subs[wid]["worker"] != holder
            )
        ]

    def heartbeat(self, token: str) -> dict:
        """Renew a live lease; returns the new expiry.

        For the original holder of a split shard the response also
        carries ``stolen`` — the wearers it should skip because thieves
        own or already committed them.  That piggyback is what turns
        stealing into an actual wall-clock win: without it the original
        would re-simulate every stolen wearer.
        """
        index, wearer = self._lease_for(token)
        expires_at = self.clock() + self.lease_ttl
        if wearer is None:
            state = self._shards[index]
            state["expires_at"] = expires_at
            self._record("renew", shard=index, token=token,
                         expires_at=expires_at)
        else:
            sub = self._subs[index][wearer]
            sub["expires_at"] = expires_at
            self._record("sub_renew", shard=index, wearer=wearer,
                         token=token, expires_at=expires_at)
        self.obs.counter("queue.renewals").inc()
        out = {
            "shard": index,
            "ttl": self.lease_ttl,
            "expires_in": self.lease_ttl,
        }
        if wearer is not None:
            out["wearer"] = wearer
        else:
            stolen = self.stolen_wearers(index)
            if stolen:
                out["stolen"] = stolen
        return out

    def release(self, token: str, reason: str = "released") -> dict:
        """Voluntarily return a leased shard (or stolen wearer) to the
        pending pool."""
        index, wearer = self._lease_for(token)
        self._tokens.pop(token, None)
        if wearer is not None:
            sub = self._subs[index][wearer]
            self._record(
                "sub_release", shard=index, wearer=wearer, token=token,
                worker=sub["worker"], reason=reason,
            )
            self.obs.counter("queue.releases").inc()
            self.obs.event(
                "queue.release", campaign=self.fingerprint, shard=index,
                wearer=wearer, worker=sub["worker"], reason=reason,
            )
            sub.update(state="pending", worker=None, token=None,
                       expires_at=None)
            return {"shard": index, "wearer": wearer, "state": "pending"}
        state = self._shards[index]
        self._record(
            "release", shard=index, token=token, worker=state["worker"],
            reason=reason,
        )
        self.obs.counter("queue.releases").inc()
        self.obs.event(
            "queue.release", campaign=self.fingerprint, shard=index,
            worker=state["worker"], reason=reason,
        )
        if state["state"] == "split":
            state.update(worker=None, token=None, expires_at=None)
            return {"shard": index, "state": "split"}
        state.update(state="pending", worker=None, token=None,
                     expires_at=None)
        return {"shard": index, "state": "pending"}

    # -- commits -----------------------------------------------------------------

    def commit(
        self,
        shard: int,
        summaries: Dict[str, dict],
        crc: str,
        worker: str,
        token: Optional[str] = None,
    ) -> dict:
        """Commit per-wearer summaries (idempotent, CRC-keyed).

        A stale token is *not* an error: determinism means a worker that
        lost its lease still produced the same bytes the replacement
        will, so first-writer-wins and every later identical commit is a
        no-op.  Only *divergent* bytes for the same shard are refused —
        that is data corruption or a spec mismatch, never a benign race.

        An unsplit shard requires exact wearer cover (the whole-shard
        contract); a split shard accepts any subset and merges wearer by
        wearer through :meth:`_commit_split`.
        """
        if shard not in self._shards:
            raise QueueError(404, f"campaign has no shard {shard}")
        expected_crc = shard_payload_crc(summaries)
        if crc != expected_crc:
            raise QueueError(
                400,
                f"shard {shard} payload CRC {crc!r} does not match its "
                f"content ({expected_crc!r}) — refusing a corrupt upload",
            )
        state = self._shards[shard]
        if state["state"] == "split":
            return self._commit_split(shard, summaries, worker, token)
        expected_wearers = sorted(self.wearers_of[shard])
        if sorted(summaries) != expected_wearers:
            if state["state"] == "committed" and not (
                set(summaries) - set(expected_wearers)
            ):
                # A straggler committing the non-stolen remainder of a
                # shard that thieves already finished: per-wearer bytes
                # decide between benign duplicate and divergence.
                return self._commit_late_subset(shard, summaries, worker)
            raise QueueError(
                400,
                f"shard {shard} commit must cover exactly its wearers "
                f"{expected_wearers}, got {sorted(summaries)}",
            )
        if state["state"] == "committed":
            if state["crc"] == crc:
                self.obs.counter("queue.duplicate_commits").inc()
                self.obs.event(
                    "queue.commit", campaign=self.fingerprint, shard=shard,
                    worker=worker, duplicate=True,
                )
                return {"shard": shard, "state": "committed",
                        "duplicate": True}
            self.obs.counter("queue.divergent_commits").inc()
            raise QueueError(
                409,
                f"shard {shard} is already committed with CRC "
                f"{state['crc']!r}; a divergent commit ({crc!r}) means "
                "two executions of the same shard disagreed — integrity "
                "violation, refusing to overwrite",
            )

        # Summaries land on disk before the commit record: a crash in
        # between leaves the shard uncommitted and the recommit simply
        # rewrites identical files.
        shard_dir = shard_directory(self.directory, shard)
        for wearer_id in self.wearers_of[shard]:
            write_summary(shard_dir / wearer_id, summaries[wearer_id])
        # Invalidate every live token for this shard — including a
        # reassigned lease held by someone else: their next heartbeat
        # gets 410 and they learn the shard is already done.
        for live_token, (live_index, _wearer) in list(self._tokens.items()):
            if live_index == shard:
                self._tokens.pop(live_token, None)
        self._record("commit", shard=shard, worker=worker, crc=crc,
                     token=token)
        state.update(state="committed", worker=worker, token=None,
                     expires_at=None, crc=crc)
        self.obs.counter("queue.commits").inc()
        self.obs.event(
            "queue.commit", campaign=self.fingerprint, shard=shard,
            worker=worker, duplicate=False,
        )
        return {"shard": shard, "state": "committed", "duplicate": False}

    def _commit_split(
        self,
        shard: int,
        summaries: Dict[str, dict],
        worker: str,
        token: Optional[str],
    ) -> dict:
        """Merge a commit into a split shard, wearer by wearer.

        The payload may cover any subset of the shard's wearers (the
        original holder commits everything it did not skip, a thief
        commits exactly its stolen wearer); each wearer resolves
        independently under the same CRC rules — first writer wins,
        identical repeats are no-ops, divergence is a 409 refused
        *before* any filesystem effect.
        """
        subs = self._subs[shard]
        unknown = sorted(set(summaries) - set(self.wearers_of[shard]))
        if unknown:
            raise QueueError(
                400, f"shard {shard} has no wearer(s) {unknown}"
            )
        crcs = {
            wid: wearer_payload_crc(summaries[wid]) for wid in summaries
        }
        for wid, crc in crcs.items():
            sub = subs[wid]
            if sub["state"] == "committed" and sub["crc"] != crc:
                self.obs.counter("queue.divergent_commits").inc()
                raise QueueError(
                    409,
                    f"wearer {wid!r} of shard {shard} is already "
                    f"committed with CRC {sub['crc']!r}; a divergent "
                    f"commit ({crc!r}) means two executions disagreed — "
                    "integrity violation, refusing to overwrite",
                )
        shard_dir = shard_directory(self.directory, shard)
        fresh: List[str] = []
        duplicates: List[str] = []
        for wid in self.wearers_of[shard]:
            if wid not in summaries:
                continue
            sub = subs[wid]
            if sub["state"] == "committed":
                duplicates.append(wid)
                self.obs.counter("queue.duplicate_commits").inc()
                continue
            write_summary(shard_dir / wid, summaries[wid])
            if sub["token"]:
                self._tokens.pop(sub["token"], None)
            self._record("sub_commit", shard=shard, wearer=wid,
                         worker=worker, crc=crcs[wid], token=token)
            sub.update(state="committed", worker=worker, token=None,
                       expires_at=None, crc=crcs[wid])
            fresh.append(wid)
            self.obs.counter("queue.sub_commits").inc()
            self.obs.event(
                "queue.sub_commit", campaign=self.fingerprint, shard=shard,
                wearer=wid, worker=worker,
            )
        outcome = {
            "shard": shard,
            "state": "split",
            "committed_wearers": fresh,
            "duplicate_wearers": duplicates,
            "duplicate": bool(duplicates) and not fresh,
        }
        if all(sub["state"] == "committed" for sub in subs.values()):
            # Every wearer has landed: seal the shard with an ordinary
            # shard-level commit record keyed by the merged content CRC —
            # replay and telemetry cannot tell a merged shard from an
            # unsplit one.
            merged: Dict[str, dict] = {}
            for wid in self.wearers_of[shard]:
                with open(
                    shard_dir / wid / SUMMARY_FILENAME, "r",
                    encoding="utf-8",
                ) as fh:
                    merged[wid] = json.load(fh)
            full_crc = shard_payload_crc(merged)
            for live_token, (live_index, _w) in list(self._tokens.items()):
                if live_index == shard:
                    self._tokens.pop(live_token, None)
            self._record("commit", shard=shard, worker=worker,
                         crc=full_crc, token=token)
            self._shards[shard].update(
                state="committed", worker=worker, token=None,
                expires_at=None, crc=full_crc,
            )
            self._subs.pop(shard, None)
            self.obs.counter("queue.commits").inc()
            self.obs.event(
                "queue.commit", campaign=self.fingerprint, shard=shard,
                worker=worker, duplicate=False, merged=True,
            )
            outcome["state"] = "committed"
        return outcome

    def _commit_late_subset(
        self, shard: int, summaries: Dict[str, dict], worker: str
    ) -> dict:
        """A subset commit against an already-committed shard: compare
        against the bytes on disk wearer by wearer (duplicate no-op when
        identical, 409 when divergent)."""
        shard_dir = shard_directory(self.directory, shard)
        for wid in sorted(summaries):
            with open(
                shard_dir / wid / SUMMARY_FILENAME, "r", encoding="utf-8"
            ) as fh:
                committed = json.load(fh)
            if wearer_payload_crc(committed) != wearer_payload_crc(
                summaries[wid]
            ):
                self.obs.counter("queue.divergent_commits").inc()
                raise QueueError(
                    409,
                    f"wearer {wid!r} of committed shard {shard} received "
                    "divergent bytes — integrity violation, refusing to "
                    "overwrite",
                )
        self.obs.counter("queue.duplicate_commits").inc()
        self.obs.event(
            "queue.commit", campaign=self.fingerprint, shard=shard,
            worker=worker, duplicate=True,
        )
        return {"shard": shard, "state": "committed", "duplicate": True,
                "duplicate_wearers": sorted(summaries)}

    # -- aggregation -------------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(s["state"] == "committed" for s in self._shards.values())

    def counts(self) -> Dict[str, int]:
        tally = {"pending": 0, "leased": 0, "split": 0, "committed": 0}
        for state in self._shards.values():
            tally[state["state"]] += 1
        return tally

    def shard_states(self) -> List[dict]:
        """Per-shard state for the status endpoint (operator view)."""
        self.reclaim_expired()
        now = self.clock()
        out = []
        for index in sorted(self._shards):
            state = self._shards[index]
            entry = {
                "index": index,
                "state": state["state"],
                "wearers": len(self.wearers_of[index]),
            }
            if state["state"] == "leased":
                entry["worker"] = state["worker"]
                entry["expires_in"] = round(state["expires_at"] - now, 3)
            elif state["state"] == "split":
                entry["worker"] = state["worker"]
                if state["expires_at"] is not None:
                    entry["expires_in"] = round(state["expires_at"] - now, 3)
                tally = {"pending": 0, "leased": 0, "committed": 0}
                for sub in self._subs.get(index, {}).values():
                    tally[sub["state"]] += 1
                entry["sub"] = tally
            elif state["state"] == "committed":
                entry["worker"] = state["worker"]
                entry["crc"] = state["crc"]
            out.append(entry)
        return out

    def committed_summaries(self) -> Dict[str, dict]:
        """Read every committed wearer summary back off disk (the files
        are the truth — they survive coordinator restarts)."""
        summaries: Dict[str, dict] = {}
        for index, state in self._shards.items():
            if state["state"] != "committed":
                continue
            shard_dir = shard_directory(self.directory, index)
            for wearer_id in self.wearers_of[index]:
                path = shard_dir / wearer_id / SUMMARY_FILENAME
                with open(path, "r", encoding="utf-8") as fh:
                    summaries[wearer_id] = json.load(fh)
        return summaries

    def worker_commits(self) -> Dict[str, int]:
        """Distinct workers → shards they committed (telemetry only)."""
        tally: Dict[str, int] = {}
        for entry in self._log.entries:
            if entry.get("kind") == "commit":
                worker = str(entry.get("worker", "?"))
                tally[worker] = tally.get(worker, 0) + 1
        return tally

    def finalize(self) -> dict:
        """Build the fleet artifacts once every shard has committed.

        The aggregate/atlas path is *exactly* the single-host one
        (:func:`~repro.campaign.aggregate.build_aggregate` over the
        deterministic summary projections), which is what makes a
        fleet-executed campaign byte-identical to ``hi-explore
        campaign`` on the same spec.  Non-deterministic fleet facts
        (wall clock, worker census) go to ``telemetry.json`` as always.
        """
        if not self.done:
            raise QueueError(
                409,
                f"campaign {self.fingerprint} is not fully committed: "
                f"{self.counts()}",
            )
        from repro.campaign.runner import _write_json

        aggregate = build_aggregate(self.spec, self.committed_summaries())
        _write_json(self.directory / AGGREGATE_FILENAME, aggregate)
        from repro.campaign.aggregate import atlas_payload

        _write_json(self.directory / ATLAS_FILENAME, atlas_payload(aggregate))
        workers = self.worker_commits()
        telemetry = telemetry_payload(
            self.spec,
            aggregate,
            wall_seconds=self.clock() - self._started,
            shards=self.shards,
            jobs=len(workers),
            pool_stats={"workers": workers},
        )
        _write_json(self.directory / TELEMETRY_FILENAME, telemetry)
        self.obs.event(
            "queue.done",
            campaign=self.fingerprint,
            aggregate_fingerprint=aggregate["fingerprint"],
            feasible=aggregate["feasible"],
            wearers=aggregate["wearers"],
        )
        return aggregate

    def close(self) -> None:
        self._log.close()

    def __repr__(self) -> str:
        return (
            f"CampaignQueue({self.fingerprint!r}, shards={self.shards}, "
            f"{self.counts()})"
        )
