"""Lease-based shard queue: the coordinator side of the campaign fabric.

PR 7's campaign runtime shards a wearer population across *processes* on
one host; this module decomposes a campaign into shard-grain work items
that flow across *hosts*.  A :class:`CampaignQueue` owns one campaign's
shards and hands them to pulling workers under time-limited leases:

* ``acquire(worker)`` — lease the lowest pending shard to ``worker``
  (expired leases are reclaimed first, so a dead worker's shard goes
  back on offer after at most one TTL);
* ``heartbeat(token)`` — renew a live lease; an unknown or expired token
  is refused, which is how a worker that lost its lease finds out;
* ``release(token)`` — voluntary return (graceful drain);
* ``commit(shard, summaries, crc, ...)`` — upload the shard's per-wearer
  summaries, CRC-checked and **idempotent**: commits are keyed by the
  payload's content CRC, so a double-commit of identical bytes is a
  no-op while divergent bytes are a loud integrity error (determinism
  makes divergence a bug, never a race).

Execution is therefore *at-least-once* with *idempotent commits*: a
shard may be simulated by several workers across reassignments, but
every one of them produces byte-identical summaries (per-wearer runs are
pure functions of the spec), so the first commit wins and the rest
collapse into no-ops.  That is the whole correctness argument — the
aggregate built from committed summaries is byte-identical to a
single-host ``run_campaign`` of the same spec.

Durability mirrors the rest of the runtime: every lease/renew/expire/
release/commit is appended to a CRC-framed
:class:`~repro.core.journal.EventLog` (``queue.jsonl``) *after* its
filesystem effects, so a restarted coordinator replays the log and
recovers every in-flight lease (which then expires and is reassigned)
and every committed shard (whose summaries are already on disk).
"""

from __future__ import annotations

import json
import pathlib
import time
import uuid
from typing import Callable, Dict, List, Optional

from repro.campaign.aggregate import (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
    build_aggregate,
    telemetry_payload,
)
from repro.campaign.shard import shard_assignment
from repro.campaign.spec import CampaignSpec
from repro.core.journal import (
    CAMPAIGN_MANIFEST_FILENAME,
    QUEUE_LOG_FILENAME,
    SHARD_MANIFEST_FILENAME,
    SUMMARY_FILENAME,
    EventLog,
    JournalError,
    load_campaign_manifest,
    payload_crc,
    shard_directory,
    write_campaign_manifest,
    write_shard_manifest,
    write_summary,
)

#: Default lease time-to-live in seconds: long enough for a smoke-preset
#: shard, short enough that a dead worker's shard is back on offer fast.
DEFAULT_LEASE_TTL = 30.0


class QueueError(RuntimeError):
    """A queue operation that cannot be honoured; ``status`` maps it to
    an HTTP status when the operation arrived over the wire."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def shard_payload_crc(summaries: Dict[str, dict]) -> str:
    """The content CRC keying a shard commit.

    Computed over the wearer→summary mapping's canonical JSON by both
    the worker (before upload) and the coordinator (on receipt), so a
    corrupted or reordered payload is rejected before it can touch disk,
    and two byte-identical executions of the same shard produce the same
    commit key no matter which worker ran them.
    """
    return payload_crc({"summaries": summaries})


class CampaignQueue:
    """One campaign's shard-grain work queue (see the module docstring).

    All mutation happens on the coordinator's event loop (the HTTP
    service routes synchronously), so there is no internal locking; the
    ``clock`` hook exists for lease-expiry tests and defaults to wall
    time because expiries must survive a coordinator restart.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory,
        shards: int,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,
    ) -> None:
        from repro.obs import runtime

        self.spec = spec
        self.directory = pathlib.Path(directory)
        self.fingerprint = spec.fingerprint()
        self.lease_ttl = float(lease_ttl)
        self.clock = clock
        self.obs = runtime.get_active()
        self._started = clock()

        shards = max(1, int(shards))
        manifest_path = self.directory / CAMPAIGN_MANIFEST_FILENAME
        if manifest_path.exists():
            manifest = load_campaign_manifest(self.directory)
            if manifest.get("fingerprint") != self.fingerprint:
                raise JournalError(
                    f"campaign directory {self.directory} belongs to "
                    f"campaign {manifest.get('fingerprint')!r}, not "
                    f"{self.fingerprint!r} — refusing to mix campaigns"
                )
            shards = int(manifest.get("shards", shards))
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            write_campaign_manifest(
                self.directory, spec.to_dict(), self.fingerprint, shards
            )
        self.shards = shards

        #: shard index → ordered wearer ids (the work-item decomposition).
        assignment = shard_assignment(spec, shards)
        self.wearers_of: Dict[int, List[str]] = {
            index: [w.wearer_id for w in wearers]
            for index, wearers in sorted(assignment.items())
        }
        for index, wearer_ids in self.wearers_of.items():
            shard_dir = shard_directory(self.directory, index)
            if not (shard_dir / SHARD_MANIFEST_FILENAME).exists():
                write_shard_manifest(
                    self.directory, index, self.fingerprint, wearer_ids
                )

        #: shard index → {"state": pending|leased|committed, ...}
        self._shards: Dict[int, dict] = {
            index: {"state": "pending", "worker": None, "token": None,
                    "expires_at": None, "crc": None}
            for index in self.wearers_of
        }
        #: live token → shard index (leases are single-use capabilities).
        self._tokens: Dict[str, int] = {}
        self._log = EventLog(self.directory / QUEUE_LOG_FILENAME)
        self._replay(self._log.entries)
        # An empty shard has nothing to simulate: commit it immediately
        # (with an empty summary map) so the campaign can complete even
        # when the sharder left holes.
        for index, wearer_ids in self.wearers_of.items():
            if not wearer_ids and self._shards[index]["state"] != "committed":
                self.commit(index, {}, shard_payload_crc({}),
                            worker="coordinator", token=None)

    # -- durable state -----------------------------------------------------------

    def _replay(self, entries: List[dict]) -> None:
        """Fold the queue log back into in-memory shard state.

        Commits are final; a lease without a later commit/release/expire
        is restored verbatim (including its wall-clock expiry), so a
        restarted coordinator neither forgets who held a shard nor
        reassigns it before the original TTL has truly run out.
        """
        for entry in entries:
            kind = entry.get("kind")
            shard = entry.get("shard")
            if shard not in self._shards:
                continue
            state = self._shards[shard]
            if kind == "lease":
                state.update(
                    state="leased",
                    worker=entry.get("worker"),
                    token=entry.get("token"),
                    expires_at=entry.get("expires_at"),
                )
            elif kind == "renew" and state["token"] == entry.get("token"):
                state["expires_at"] = entry.get("expires_at")
            elif kind in ("release", "expire"):
                if state["state"] != "committed":
                    state.update(state="pending", worker=None, token=None,
                                 expires_at=None)
            elif kind == "commit":
                state.update(
                    state="committed",
                    worker=entry.get("worker"),
                    token=None,
                    expires_at=None,
                    crc=entry.get("crc"),
                )
        self._tokens = {
            s["token"]: index
            for index, s in self._shards.items()
            if s["state"] == "leased" and s["token"]
        }

    def _record(self, kind: str, **fields) -> None:
        self._log.append({"kind": kind, "campaign": self.fingerprint,
                          **fields})

    # -- lease state machine -----------------------------------------------------

    def reclaim_expired(self) -> List[int]:
        """Return every shard whose lease TTL has lapsed to ``pending``.

        Called lazily at the top of every queue interaction — the
        coordinator needs no timer thread because a reclaim only matters
        when someone is around to observe or acquire.
        """
        now = self.clock()
        reclaimed = []
        for index, state in self._shards.items():
            if (
                state["state"] == "leased"
                and state["expires_at"] is not None
                and state["expires_at"] <= now
            ):
                self._tokens.pop(state["token"], None)
                self._record(
                    "expire", shard=index, token=state["token"],
                    worker=state["worker"],
                )
                self.obs.counter("queue.expirations").inc()
                self.obs.event(
                    "queue.expire", campaign=self.fingerprint, shard=index,
                    worker=state["worker"],
                )
                state.update(state="pending", worker=None, token=None,
                             expires_at=None)
                reclaimed.append(index)
        return reclaimed

    def acquire(self, worker: str) -> Optional[dict]:
        """Lease the lowest pending shard to ``worker`` (None = no work).

        The lease payload is everything a remote worker needs to run the
        shard: the campaign fingerprint, preset, shard index, the
        shard's wearer specs, the token, and the TTL it must heartbeat
        within.
        """
        self.reclaim_expired()
        for index in sorted(self._shards):
            state = self._shards[index]
            if state["state"] != "pending":
                continue
            token = uuid.uuid4().hex
            expires_at = self.clock() + self.lease_ttl
            state.update(state="leased", worker=worker, token=token,
                         expires_at=expires_at)
            self._tokens[token] = index
            self._record(
                "lease", shard=index, worker=worker, token=token,
                ttl=self.lease_ttl, expires_at=expires_at,
            )
            self.obs.counter("queue.leases").inc()
            self.obs.event(
                "queue.lease", campaign=self.fingerprint, shard=index,
                worker=worker,
            )
            wearer_ids = set(self.wearers_of[index])
            return {
                "campaign": self.fingerprint,
                "name": self.spec.name,
                "preset": self.spec.preset,
                "shard": index,
                "token": token,
                "ttl": self.lease_ttl,
                "wearers": [
                    w.to_dict()
                    for w in self.spec.wearers
                    if w.wearer_id in wearer_ids
                ],
            }
        return None

    def _lease_for(self, token: str) -> int:
        self.reclaim_expired()
        if token not in self._tokens:
            raise QueueError(
                410,
                "lease is gone (expired, released, or never granted) — "
                "the shard may have been reassigned",
            )
        return self._tokens[token]

    def heartbeat(self, token: str) -> dict:
        """Renew a live lease; returns the new expiry."""
        index = self._lease_for(token)
        state = self._shards[index]
        state["expires_at"] = self.clock() + self.lease_ttl
        self._record(
            "renew", shard=index, token=token,
            expires_at=state["expires_at"],
        )
        self.obs.counter("queue.renewals").inc()
        return {
            "shard": index,
            "ttl": self.lease_ttl,
            "expires_in": self.lease_ttl,
        }

    def release(self, token: str, reason: str = "released") -> dict:
        """Voluntarily return a leased shard to the pending pool."""
        index = self._lease_for(token)
        state = self._shards[index]
        self._tokens.pop(token, None)
        self._record(
            "release", shard=index, token=token, worker=state["worker"],
            reason=reason,
        )
        self.obs.counter("queue.releases").inc()
        self.obs.event(
            "queue.release", campaign=self.fingerprint, shard=index,
            worker=state["worker"], reason=reason,
        )
        state.update(state="pending", worker=None, token=None,
                     expires_at=None)
        return {"shard": index, "state": "pending"}

    # -- commits -----------------------------------------------------------------

    def commit(
        self,
        shard: int,
        summaries: Dict[str, dict],
        crc: str,
        worker: str,
        token: Optional[str] = None,
    ) -> dict:
        """Commit a shard's per-wearer summaries (idempotent, CRC-keyed).

        A stale token is *not* an error: determinism means a worker that
        lost its lease still produced the same bytes the replacement
        will, so first-writer-wins and every later identical commit is a
        no-op.  Only *divergent* bytes for the same shard are refused —
        that is data corruption or a spec mismatch, never a benign race.
        """
        if shard not in self._shards:
            raise QueueError(404, f"campaign has no shard {shard}")
        expected_crc = shard_payload_crc(summaries)
        if crc != expected_crc:
            raise QueueError(
                400,
                f"shard {shard} payload CRC {crc!r} does not match its "
                f"content ({expected_crc!r}) — refusing a corrupt upload",
            )
        expected_wearers = sorted(self.wearers_of[shard])
        if sorted(summaries) != expected_wearers:
            raise QueueError(
                400,
                f"shard {shard} commit must cover exactly its wearers "
                f"{expected_wearers}, got {sorted(summaries)}",
            )
        state = self._shards[shard]
        if state["state"] == "committed":
            if state["crc"] == crc:
                self.obs.counter("queue.duplicate_commits").inc()
                self.obs.event(
                    "queue.commit", campaign=self.fingerprint, shard=shard,
                    worker=worker, duplicate=True,
                )
                return {"shard": shard, "state": "committed",
                        "duplicate": True}
            self.obs.counter("queue.divergent_commits").inc()
            raise QueueError(
                409,
                f"shard {shard} is already committed with CRC "
                f"{state['crc']!r}; a divergent commit ({crc!r}) means "
                "two executions of the same shard disagreed — integrity "
                "violation, refusing to overwrite",
            )

        # Summaries land on disk before the commit record: a crash in
        # between leaves the shard uncommitted and the recommit simply
        # rewrites identical files.
        shard_dir = shard_directory(self.directory, shard)
        for wearer_id in self.wearers_of[shard]:
            write_summary(shard_dir / wearer_id, summaries[wearer_id])
        # Invalidate every live token for this shard — including a
        # reassigned lease held by someone else: their next heartbeat
        # gets 410 and they learn the shard is already done.
        for live_token, live_index in list(self._tokens.items()):
            if live_index == shard:
                self._tokens.pop(live_token, None)
        self._record("commit", shard=shard, worker=worker, crc=crc,
                     token=token)
        state.update(state="committed", worker=worker, token=None,
                     expires_at=None, crc=crc)
        self.obs.counter("queue.commits").inc()
        self.obs.event(
            "queue.commit", campaign=self.fingerprint, shard=shard,
            worker=worker, duplicate=False,
        )
        return {"shard": shard, "state": "committed", "duplicate": False}

    # -- aggregation -------------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(s["state"] == "committed" for s in self._shards.values())

    def counts(self) -> Dict[str, int]:
        tally = {"pending": 0, "leased": 0, "committed": 0}
        for state in self._shards.values():
            tally[state["state"]] += 1
        return tally

    def shard_states(self) -> List[dict]:
        """Per-shard state for the status endpoint (operator view)."""
        self.reclaim_expired()
        now = self.clock()
        out = []
        for index in sorted(self._shards):
            state = self._shards[index]
            entry = {
                "index": index,
                "state": state["state"],
                "wearers": len(self.wearers_of[index]),
            }
            if state["state"] == "leased":
                entry["worker"] = state["worker"]
                entry["expires_in"] = round(state["expires_at"] - now, 3)
            elif state["state"] == "committed":
                entry["worker"] = state["worker"]
                entry["crc"] = state["crc"]
            out.append(entry)
        return out

    def committed_summaries(self) -> Dict[str, dict]:
        """Read every committed wearer summary back off disk (the files
        are the truth — they survive coordinator restarts)."""
        summaries: Dict[str, dict] = {}
        for index, state in self._shards.items():
            if state["state"] != "committed":
                continue
            shard_dir = shard_directory(self.directory, index)
            for wearer_id in self.wearers_of[index]:
                path = shard_dir / wearer_id / SUMMARY_FILENAME
                with open(path, "r", encoding="utf-8") as fh:
                    summaries[wearer_id] = json.load(fh)
        return summaries

    def worker_commits(self) -> Dict[str, int]:
        """Distinct workers → shards they committed (telemetry only)."""
        tally: Dict[str, int] = {}
        for entry in self._log.entries:
            if entry.get("kind") == "commit":
                worker = str(entry.get("worker", "?"))
                tally[worker] = tally.get(worker, 0) + 1
        return tally

    def finalize(self) -> dict:
        """Build the fleet artifacts once every shard has committed.

        The aggregate/atlas path is *exactly* the single-host one
        (:func:`~repro.campaign.aggregate.build_aggregate` over the
        deterministic summary projections), which is what makes a
        fleet-executed campaign byte-identical to ``hi-explore
        campaign`` on the same spec.  Non-deterministic fleet facts
        (wall clock, worker census) go to ``telemetry.json`` as always.
        """
        if not self.done:
            raise QueueError(
                409,
                f"campaign {self.fingerprint} is not fully committed: "
                f"{self.counts()}",
            )
        from repro.campaign.runner import _write_json

        aggregate = build_aggregate(self.spec, self.committed_summaries())
        _write_json(self.directory / AGGREGATE_FILENAME, aggregate)
        from repro.campaign.aggregate import atlas_payload

        _write_json(self.directory / ATLAS_FILENAME, atlas_payload(aggregate))
        workers = self.worker_commits()
        telemetry = telemetry_payload(
            self.spec,
            aggregate,
            wall_seconds=self.clock() - self._started,
            shards=self.shards,
            jobs=len(workers),
            pool_stats={"workers": workers},
        )
        _write_json(self.directory / TELEMETRY_FILENAME, telemetry)
        self.obs.event(
            "queue.done",
            campaign=self.fingerprint,
            aggregate_fingerprint=aggregate["fingerprint"],
            feasible=aggregate["feasible"],
            wearers=aggregate["wearers"],
        )
        return aggregate

    def close(self) -> None:
        self._log.close()

    def __repr__(self) -> str:
        return (
            f"CampaignQueue({self.fingerprint!r}, shards={self.shards}, "
            f"{self.counts()})"
        )
