"""Campaign execution: shard the population, journal every wearer run.

One campaign directory holds everything (layout pinned by the manifests
in :mod:`repro.core.journal`)::

    <campaign_dir>/
      campaign.json            CRC-checked manifest: spec + fingerprint + shards
      shards/shard-NN/
        shard.json             CRC-checked shard manifest (linked by fingerprint)
        <wearer_id>/           one PR-5 journaled run directory per wearer
          journal.jsonl
          summary.json         written only at wearer completion
      aggregate.json           deterministic fleet report (byte-stable)
      atlas.json               per-cohort Pareto atlases (byte-stable)
      telemetry.json           throughput/resilience roll-up (wall clock!)

Crash safety is inherited, not reimplemented: each wearer run is an
ordinary journaled exploration, so killing the campaign runner at any
instant loses at most one fsynced journal line per in-flight wearer.
:func:`run_campaign` on an existing campaign directory *resumes*: wearers
with a ``summary.json`` are loaded (their runs completed), wearers with a
journal but no summary replay through the PR-5 path to a bit-identical
summary, and untouched wearers run fresh — so the final aggregate is
byte-identical to an uninterrupted run no matter how many times the
campaign was killed.

Wearers are fanned out over the fault-tolerant
:class:`~repro.core.parallel.WorkerPool` (one wearer run per task,
serial inside the worker); the deterministic sharder decides which shard
directory a wearer's journal lives in, independent of the worker count.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaign.aggregate import (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
    atlas_payload,
    build_aggregate,
    telemetry_payload,
)
from repro.campaign.shard import shard_assignment
from repro.campaign.spec import CampaignSpec, WearerSpec
from repro.core.journal import (
    CAMPAIGN_MANIFEST_FILENAME,
    JOURNAL_FILENAME,
    SHARD_MANIFEST_FILENAME,
    SUMMARY_FILENAME,
    JournalError,
    RunJournal,
    load_campaign_manifest,
    load_campaign_shards,
    shard_directory,
    write_campaign_manifest,
    write_shard_manifest,
    write_summary,
)
from repro.core.parallel import WorkerPool


@dataclass
class CampaignReport:
    """What :func:`run_campaign` hands back to the CLI/service."""

    spec: CampaignSpec
    directory: pathlib.Path
    aggregate: dict
    telemetry: dict

    @property
    def fingerprint(self) -> str:
        return self.aggregate["fingerprint"]

    @property
    def aggregate_path(self) -> pathlib.Path:
        return self.directory / AGGREGATE_FILENAME

    @property
    def atlas_path(self) -> pathlib.Path:
        return self.directory / ATLAS_FILENAME


def wearer_run_dir(campaign_dir, shard_index: int, wearer_id: str) -> pathlib.Path:
    return shard_directory(campaign_dir, shard_index) / wearer_id


def _wearer_manifest(
    wearer: WearerSpec, preset: str, campaign: str, scenario_fp: str
) -> dict:
    """The RunJournal manifest for one wearer run: everything its
    trajectory depends on, so a resume with a drifted spec is rejected."""
    manifest = {
        "command": wearer.mode,
        "campaign": campaign,
        "wearer_id": wearer.wearer_id,
        "preset": preset,
        "seed": wearer.seed,
        "pdr_min": wearer.pdr_min,
        "scenario_fingerprint": scenario_fp,
    }
    if wearer.mode == "robust":
        manifest["quantile"] = wearer.quantile
    return manifest


def _wearer_ensemble(wearer: WearerSpec, scenario):
    from repro.faults.model import hub_stress_ensemble, sample_fault_ensemble

    if wearer.hub_stress:
        return hub_stress_ensemble(
            scenario.tsim_s,
            coordinator=scenario.coordinator_location,
            outage_fraction=wearer.outage_fraction,
            size=wearer.ensemble_size,
        )
    fault_seed = (
        wearer.fault_seed if wearer.fault_seed is not None else wearer.seed
    )
    return sample_fault_ensemble(
        wearer.ensemble_size,
        fault_seed,
        scenario.tsim_s,
        coordinator=scenario.coordinator_location,
        correlated_links=wearer.correlated_links,
    )


def run_wearer_task(task: dict) -> dict:
    """Pool task: execute (or resume, or just load) one wearer's run.

    A pure function of the task description plus the wearer's run
    directory: a completed run short-circuits to its summary, a partial
    journal resumes bit-identically, a fresh directory runs from scratch
    — all three converge on the same summary bytes, which is what makes
    the campaign aggregate invariant under kills and retries.

    Two optional fast paths sit in front of the simulation (PR 9):
    ``task["cached_summary"]`` carries a summary prefetched from the
    coordinator's cross-campaign wearer cache, and
    ``task["wearer_cache_dir"]`` names a local one keyed by
    :func:`~repro.campaign.wearer_cache.wearer_fingerprint`.  Either hit
    replays the cached bytes through :func:`write_summary` — the same
    projection a fresh run goes through, so the resulting
    ``summary.json`` is byte-identical to simulating — and returns state
    ``"cached"``.  Fresh results are stored back into the local cache.
    """
    from repro.core.explorer import HumanIntranetExplorer
    from repro.core.result_cache import scenario_fingerprint
    from repro.experiments.scenario import get_preset, make_problem
    from repro.obs import runtime

    obs = runtime.get_active()
    wearer = WearerSpec.from_dict(task["wearer"])
    run_dir = pathlib.Path(task["run_dir"])
    summary_path = run_dir / SUMMARY_FILENAME
    if summary_path.exists():
        with open(summary_path, "r", encoding="utf-8") as fh:
            return {
                "wearer_id": wearer.wearer_id,
                "summary": json.load(fh),
                "state": "loaded",
            }

    cache = fingerprint = None
    if task.get("wearer_cache_dir"):
        from repro.campaign.wearer_cache import (
            WearerResultCache,
            wearer_fingerprint,
        )

        cache = WearerResultCache(task["wearer_cache_dir"])
        fingerprint = wearer_fingerprint(task["preset"], wearer)
    cached = task.get("cached_summary")
    source = "prefetch" if cached is not None else None
    if cached is None and cache is not None:
        cached = cache.get(fingerprint)
        source = "local"
    if cached is not None:
        # Replaying the cached bytes through write_summary applies the
        # same (idempotent) deterministic projection a fresh run gets,
        # so downstream aggregation cannot tell a hit from a simulation.
        write_summary(run_dir, cached)
        if cache is not None and source == "prefetch":
            cache.put(fingerprint, cached)  # seed the local cache too
        obs.counter("cache.wearer_hits").inc()
        obs.event(
            "cache.wearer",
            action="hit",
            source=source,
            wearer_id=wearer.wearer_id,
            campaign=task.get("campaign"),
        )
        with open(summary_path, "r", encoding="utf-8") as fh:
            return {
                "wearer_id": wearer.wearer_id,
                "summary": json.load(fh),
                "state": "cached",
            }
    if cache is not None:
        obs.counter("cache.wearer_misses").inc()

    problem = make_problem(
        wearer.pdr_min,
        task["preset"],
        seed=wearer.seed,
        n_jobs=1,  # parallelism lives at the wearer grain
        cache_dir=task.get("cache_dir"),
        batch_mode=task.get("batch_mode", "auto"),
    )
    preset = get_preset(task["preset"])
    manifest = _wearer_manifest(
        wearer,
        task["preset"],
        task["campaign"],
        scenario_fingerprint(problem.scenario),
    )
    resumed = (run_dir / JOURNAL_FILENAME).exists()
    if resumed:
        journal = RunJournal.resume(run_dir, **manifest)
    else:
        journal = RunJournal.create(run_dir, **manifest)

    explorer = HumanIntranetExplorer(
        problem, candidate_cap=preset.candidate_cap
    )
    oracle = explorer.oracle
    try:
        if wearer.mode == "robust":
            from repro.faults.resilience import EnsembleOracle

            ensemble = _wearer_ensemble(wearer, problem.scenario)
            oracle = EnsembleOracle(
                problem.scenario,
                ensemble,
                n_jobs=1,
                cache_dir=task.get("cache_dir"),
            )
            result = explorer.explore_robust(
                oracle, quantile=wearer.quantile, journal=journal
            )
        else:
            result = explorer.explore(journal=journal)
        write_summary(run_dir, result.to_dict())
    finally:
        journal.close()
        oracle.close()
        explorer.oracle.close()
    with open(summary_path, "r", encoding="utf-8") as fh:
        summary = json.load(fh)
    if cache is not None:
        # The on-disk summary is already the deterministic projection;
        # storing those bytes makes the entry exactly what a future hit
        # will replay.
        cache.put(fingerprint, summary)
        obs.counter("cache.wearer_stores").inc()
        obs.event(
            "cache.wearer",
            action="store",
            wearer_id=wearer.wearer_id,
            campaign=task.get("campaign"),
        )
    return {
        "wearer_id": wearer.wearer_id,
        "summary": summary,
        "state": "resumed" if resumed else "ran",
    }


def _write_json(path: pathlib.Path, payload: dict) -> pathlib.Path:
    """Atomic, sorted, newline-terminated JSON (the byte-diffed artifacts)."""
    import os

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def run_campaign(
    spec: CampaignSpec,
    directory,
    shards: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
    pool: Optional[WorkerPool] = None,
    wearer_cache_dir: Optional[str] = None,
) -> CampaignReport:
    """Execute (or resume) a campaign in ``directory``.

    ``shards`` fixes the directory layout and defaults to ``jobs``; on
    resume the shard count pinned in the campaign manifest wins, so a
    killed ``--jobs 4`` campaign can be finished under ``--jobs 1`` with
    every journal found where it was left.  ``jobs`` sizes the
    fault-tolerant worker pool (1 = in-process serial).
    ``wearer_cache_dir`` (optional) points at a cross-campaign wearer
    cache: hits skip simulation entirely, with byte-identical artifacts
    either way.
    """
    from repro.obs import runtime

    obs = runtime.get_active()
    start = time.perf_counter()
    directory = pathlib.Path(directory)
    fingerprint = spec.fingerprint()
    jobs = max(1, int(jobs))
    shards = max(1, int(shards if shards is not None else jobs))

    manifest_path = directory / CAMPAIGN_MANIFEST_FILENAME
    if manifest_path.exists():
        manifest = load_campaign_manifest(directory)
        if manifest.get("fingerprint") != fingerprint:
            raise JournalError(
                f"campaign directory {directory} belongs to campaign "
                f"{manifest.get('fingerprint')!r}, not {fingerprint!r} — "
                "refusing to mix campaigns"
            )
        shards = int(manifest.get("shards", shards))
    else:
        directory.mkdir(parents=True, exist_ok=True)
        write_campaign_manifest(directory, spec.to_dict(), fingerprint, shards)

    assignment = shard_assignment(spec, shards)
    for index, wearers in sorted(assignment.items()):
        shard_dir = shard_directory(directory, index)
        if not (shard_dir / SHARD_MANIFEST_FILENAME).exists():
            write_shard_manifest(
                directory, index, fingerprint, [w.wearer_id for w in wearers]
            )
    # Cross-validate the whole manifest chain before touching any journal.
    load_campaign_shards(directory)

    tasks: List[dict] = []
    for index, wearers in sorted(assignment.items()):
        for wearer in wearers:
            tasks.append(
                {
                    "campaign": fingerprint,
                    "preset": spec.preset,
                    "wearer": wearer.to_dict(),
                    "run_dir": str(
                        wearer_run_dir(directory, index, wearer.wearer_id)
                    ),
                    "cache_dir": cache_dir,
                    "batch_mode": batch_mode,
                    "wearer_cache_dir": wearer_cache_dir,
                }
            )

    obs.event(
        "campaign.start",
        campaign=fingerprint,
        name=spec.name,
        preset=spec.preset,
        wearers=len(tasks),
        shards=shards,
        jobs=jobs,
    )
    obs.counter("campaign.runs").inc()

    def _progress(index: int, result: dict) -> None:
        obs.counter("campaign.wearers_done").inc()
        if result["state"] != "ran":
            obs.counter("campaign.wearers_resumed").inc()
        obs.event(
            "campaign.wearer_done",
            campaign=fingerprint,
            wearer_id=result["wearer_id"],
            state=result["state"],
            found=result["summary"].get("best") is not None,
        )

    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(jobs)
    try:
        results = pool.map_ordered(run_wearer_task, tasks, on_result=_progress)
    finally:
        if own_pool:
            pool.shutdown()

    summaries: Dict[str, dict] = {
        r["wearer_id"]: r["summary"] for r in results
    }
    aggregate = build_aggregate(spec, summaries)
    _write_json(directory / AGGREGATE_FILENAME, aggregate)
    _write_json(directory / ATLAS_FILENAME, atlas_payload(aggregate))
    telemetry = telemetry_payload(
        spec,
        aggregate,
        wall_seconds=time.perf_counter() - start,
        shards=shards,
        jobs=jobs,
        pool_stats={
            "retries": pool.retries,
            "respawns": pool.respawns,
            "quarantined": pool.quarantined,
            "degraded": pool.degraded,
        },
        resumed_wearers=sum(1 for r in results if r["state"] != "ran"),
    )
    _write_json(directory / TELEMETRY_FILENAME, telemetry)
    obs.event(
        "campaign.done",
        campaign=fingerprint,
        aggregate_fingerprint=aggregate["fingerprint"],
        feasible=aggregate["feasible"],
        wearers=aggregate["wearers"],
    )
    return CampaignReport(
        spec=spec, directory=directory, aggregate=aggregate,
        telemetry=telemetry,
    )
