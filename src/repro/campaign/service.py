"""Stdlib-only async HTTP API over the campaign runtime.

A tiny, dependency-free HTTP/1.1 server hand-rolled on
:func:`asyncio.start_server` (one request per connection, JSON in/out)
that turns :func:`repro.campaign.runner.run_campaign` into a service::

    GET  /healthz                       liveness probe
    POST /campaigns                     submit a CampaignSpec (JSON body);
                                        202 {"id", "state"} — idempotent:
                                        resubmitting a known spec returns
                                        the existing campaign.  Body may
                                        carry {"execution": "fleet"} to
                                        queue the campaign for pulling
                                        workers instead of running it on
                                        the service host
    GET  /campaigns                     list known campaigns
    GET  /campaigns/<id>                status + progress (wearers done /
                                        total, read from the filesystem —
                                        the journals are the truth)
    GET  /campaigns/<id>/status         same, spelled out (operator alias)
    GET  /campaigns/<id>/result         the aggregate report (409 until done)
    GET  /campaigns/<id>/artifacts/<n>  raw artifact file (aggregate.json,
                                        atlas.json, telemetry.json,
                                        campaign.json)

Fleet-executed campaigns add the lease/commit surface of the
distributed work queue (:mod:`repro.campaign.queue`, DESIGN.md §12)::

    POST /campaigns/<id>/leases                    acquire a shard lease
                                                   (body {"worker": name};
                                                   {"lease": null} = no work)
    POST /campaigns/<id>/leases/<token>/heartbeat  renew (410 once gone)
    POST /campaigns/<id>/leases/<token>/release    graceful return
    POST /campaigns/<id>/shards/<n>/complete       CRC-checked idempotent
                                                   commit of the shard's
                                                   per-wearer summaries

The fleet hot path (PR 9, DESIGN.md §13) adds three more::

    POST /fabric/sync                  one round-trip for a whole worker
                                       tick: renew every held lease AND
                                       acquire new work (granted
                                       round-robin across active fleet
                                       campaigns, so one big campaign
                                       cannot starve later submissions),
                                       with cross-campaign cached wearer
                                       summaries prefetched onto the
                                       lease payload
    GET  /cache/wearers/<fingerprint>  cross-campaign wearer-result cache
    PUT  /cache/wearers/<fingerprint>  (content-addressed, CRC-validated,
                                       idempotent; 409 on divergence)

Connections are **keep-alive** by default (HTTP/1.1 semantics: one
request after another on the same socket until the client sends
``Connection: close`` or goes quiet), so a worker's entire
pull→heartbeat→commit loop rides one TCP connection.

Campaign ids are spec fingerprints, so submission is naturally
idempotent and the id is stable across service restarts.

Durability is the whole point: the service holds **no** authoritative
state.  Every campaign lives in ``<root>/<id>/`` as manifests + per-wearer
journals + artifacts; on startup :meth:`CampaignService.recover` scans the
root and re-runs every campaign that has a manifest but no aggregate —
completed wearers load their summaries, in-flight wearers replay their
journals (PR 5), so a SIGKILLed service finishes every interrupted
campaign with byte-identical artifacts.  Fleet campaigns recover through
their ``queue.jsonl`` lease/commit log instead: committed shards stay
committed (the summaries are on disk), in-flight leases are restored
with their original expiry and reassigned once the TTL lapses, and a
campaign killed between its last commit and aggregation is finalized on
the spot.

Campaign execution is CPU-bound and runs on a worker thread
(``asyncio.to_thread``); inside that thread the fault-tolerant
:class:`~repro.core.parallel.WorkerPool` fans wearers out across
processes.  The event loop itself only parses requests and reads files;
queue mutations are synchronous on the loop, which is what makes the
lease state machine race-free without locks.

The hardening layer (PR 10, DESIGN.md §14) adds three orthogonal
defences without changing any artifact byte:

* **Authenticated fabric RPCs** — with a shared secret configured
  (``--fabric-secret`` / ``REPRO_FABRIC_SECRET``), every fabric-plane
  request (sync, lease, commit, cache, promote) must carry an HMAC
  request signature (:mod:`repro.campaign.auth`); missing/forged → 401,
  stale/replayed → 403, always before any state mutation.  Without a
  secret the service runs in legacy mode and says so loudly at startup.
* **Standby/handoff** — a second coordinator started with
  ``--standby-of <primary-url>`` tails the shared root's journals
  read-only and serves status; on ``POST /fabric/promote`` (or after
  ``ping_misses`` missed health probes of the primary) it claims the
  next **fencing epoch** in ``fencing.jsonl``, replays the journals,
  and takes over.  Every mutating request on the deposed primary first
  checks the fencing log and fails 410 once superseded, so a
  resurrected primary cannot corrupt the queue behind the fleet's back.
* **Sync backpressure** — a global in-flight admission cap (429 +
  ``Retry-After`` when saturated, measured right after the request
  line) and an optional per-connection minimum ``/fabric/sync``
  spacing, surfaced as ``fabric.backpressure`` metrics/events.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Tuple

from repro.campaign.aggregate import (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
)
from repro.campaign.auth import (
    DEFAULT_AUTH_WINDOW,
    AuthError,
    FabricAuth,
    resolve_secret,
)
from repro.campaign.queue import (
    DEFAULT_LEASE_TTL,
    CampaignQueue,
    QueueError,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.wearer_cache import (
    WEARER_CACHE_DIRNAME,
    WearerCacheDiverged,
    WearerResultCache,
    summary_crc,
    wearer_fingerprint,
)
from repro.core.journal import (
    CAMPAIGN_MANIFEST_FILENAME,
    QUEUE_LOG_FILENAME,
    SUMMARY_FILENAME,
    EventLog,
    JournalError,
    load_campaign_manifest,
)

#: Durable record of campaign state transitions (``<root>/service.jsonl``):
#: replayed at startup so a restarted coordinator also remembers *failed*
#: campaigns (their error included) instead of silently re-running them.
SERVICE_LOG_FILENAME = "service.jsonl"

#: Durable fencing-epoch log (``<root>/fencing.jsonl``): one ``epoch``
#: record per coordinator take-over.  The highest epoch wins; everyone
#: else is fenced (DESIGN.md §14).
FENCING_LOG_FILENAME = "fencing.jsonl"

#: Global in-flight request cap (the backpressure admission limit).
DEFAULT_MAX_INFLIGHT = 64

#: Seconds a 429'd client is told to wait before retrying.
DEFAULT_RETRY_AFTER = 1.0

#: Standby → primary health-probe cadence and the consecutive-miss count
#: that triggers auto-promotion.
DEFAULT_PING_INTERVAL = 1.0
DEFAULT_PING_MISSES = 3

#: Artifact names the API will serve (everything else 404s: the campaign
#: directory also holds journals, which are replay state, not artifacts).
ARTIFACTS = (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
    CAMPAIGN_MANIFEST_FILENAME,
)

#: Request-body ceiling (specs and shard commits are KiB-scale; anything
#: bigger is abuse and is refused with 413 before a byte is buffered).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Per-request read deadline: one slow (or silent) client may not pin a
#: connection handler forever; past this it gets 408 and the socket back.
DEFAULT_READ_TIMEOUT = 10.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Maps straight to an HTTP error response.

    ``extra`` is merged into the JSON error body (machine-readable
    fields like ``fenced`` or ``retry_after``); ``headers`` are extra
    response headers (e.g. ``Retry-After`` on a 429).
    """

    def __init__(
        self,
        status: int,
        message: str,
        extra: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.extra = extra or {}
        self.headers = headers or {}


class _ConnectionClosed(Exception):
    """The client hung up between requests on a keep-alive connection —
    the normal end of a conversation, never an error."""


class CampaignService:
    """Campaign orchestration bound to one root directory.

    ``jobs``/``shards``/``cache_dir``/``batch_mode`` are the execution
    knobs applied to every campaign this service runs; they do not enter
    any fingerprint, so a service restarted with different parallelism
    resumes its campaigns to identical artifacts.
    """

    def __init__(
        self,
        root,
        jobs: int = 1,
        shards: Optional[int] = None,
        cache_dir: Optional[str] = None,
        batch_mode: str = "auto",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        steal_enabled: bool = True,
        fabric_secret: Optional[str] = None,
        auth_window: float = DEFAULT_AUTH_WINDOW,
        standby_of: Optional[str] = None,
        node_name: Optional[str] = None,
        ping_interval: float = DEFAULT_PING_INTERVAL,
        ping_misses: int = DEFAULT_PING_MISSES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        min_sync_interval: float = 0.0,
        cache_max_bytes: Optional[int] = None,
        cache_max_entries: Optional[int] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.jobs = max(1, int(jobs))
        self.shards = shards
        self.cache_dir = cache_dir
        self.batch_mode = batch_mode
        self.lease_ttl = float(lease_ttl)
        self.read_timeout = float(read_timeout)
        self.steal_enabled = bool(steal_enabled)
        #: id → "queued" | "running" | "fleet" | "done" | "failed"
        self._states: Dict[str, str] = {}
        self._errors: Dict[str, str] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        #: id → shard queue of a fleet-executed campaign
        self._queues: Dict[str, CampaignQueue] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        #: Cross-campaign wearer-result cache (fed by shard commits,
        #: served over GET/PUT /cache/wearers/<fp>, prefetched on leases).
        self.wearer_cache = WearerResultCache(
            self.root / WEARER_CACHE_DIRNAME,
            max_bytes=cache_max_bytes,
            max_entries=cache_max_entries,
        )
        #: Round-robin cursor over active fleet campaigns (lease fairness).
        self._rr_cursor = 0

        # -- hardening state (PR 10) --
        secret = resolve_secret(fabric_secret)
        self.auth = (
            FabricAuth(secret, window_s=auth_window) if secret else None
        )
        self.node_name = node_name or f"pid{os.getpid()}"
        self.standby_of = standby_of
        self.role = "standby" if standby_of else "primary"
        self.ping_interval = float(ping_interval)
        self.ping_misses = max(1, int(ping_misses))
        self.max_inflight = max(1, int(max_inflight))
        self.min_sync_interval = float(min_sync_interval)
        self.retry_after = DEFAULT_RETRY_AFTER
        self._inflight = 0
        self._fenced = False
        self._fencing_path = self.root / FENCING_LOG_FILENAME
        self._fencing_size = 0
        self._fencing_follower = None
        self._watch_task: Optional[asyncio.Task] = None
        self.epoch = 0

        if self.role == "primary":
            self._claim_epoch()
            self._journal: Optional[EventLog] = EventLog(
                self.root / SERVICE_LOG_FILENAME
            )
            self._replay_states()
        else:
            # A standby never opens a journal for append — the primary
            # owns those files until promotion.  State is read through
            # incremental followers instead.
            self._journal = None
            self._service_follower = EventLog.follow(
                self.root / SERVICE_LOG_FILENAME
            )
            self._refresh_standby_view()

    # -- fencing epochs (DESIGN.md §14) ------------------------------------------

    def _claim_epoch(self) -> None:
        """Claim this coordinator's fencing epoch in ``fencing.jsonl``.

        A plain restart (same ``node_name`` as the last holder) re-adopts
        its own epoch, keeping outstanding lease tokens valid — the PR 8
        restart contract.  Any other transition claims ``last + 1``, so
        a promoted standby always outranks the coordinator it replaced.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self._fencing_log = EventLog(self._fencing_path)
        last_epoch, last_holder = 0, None
        for entry in self._fencing_log.entries:
            if entry.get("kind") == "epoch":
                last_epoch = int(entry.get("epoch", 0))
                last_holder = entry.get("holder")
        if last_epoch > 0 and last_holder == self.node_name:
            self.epoch = last_epoch
        else:
            self.epoch = last_epoch + 1
        self._fencing_log.append(
            {"kind": "epoch", "epoch": self.epoch, "holder": self.node_name}
        )
        self._fencing_follower = EventLog.follow(self._fencing_path)
        self._fencing_follower.poll()  # consume history incl. our claim
        try:
            self._fencing_size = os.stat(self._fencing_path).st_size
        except OSError:
            self._fencing_size = 0

    def _check_fenced(self) -> None:
        """Refuse (410) every mutation once a higher epoch exists.

        Cheap on the happy path — one ``stat`` comparing the fencing
        log's size against the last-seen value; only growth triggers a
        re-read.  Once fenced, a coordinator stays fenced for life: the
        operator restarts it (as a standby or with a fresh claim), the
        process never un-fences itself.
        """
        if self._fenced:
            raise HttpError(
                410,
                f"this coordinator (epoch {self.epoch}) has been "
                "superseded by a higher fencing epoch — fail over to the "
                "current coordinator",
                extra={"fenced": True, "epoch": self.epoch},
            )
        if self._fencing_follower is None:
            return
        try:
            size = os.stat(self._fencing_path).st_size
        except OSError:
            return
        if size == self._fencing_size:
            return
        self._fencing_size = size
        for entry in self._fencing_follower.poll():
            if (
                entry.get("kind") == "epoch"
                and int(entry.get("epoch", 0)) > self.epoch
                and entry.get("holder") != self.node_name
            ):
                self._fenced = True
        if self._fenced:
            self._check_fenced()  # raise via the fenced fast path

    def _replay_states(self) -> None:
        """Restore remembered campaign outcomes from the service journal.

        Only terminal *failures* are restored into memory: ``done`` is
        always derivable from the aggregate on disk, and transient
        states (queued/running/fleet) mean the campaign was interrupted
        and should go through :meth:`recover` as before.  A restored
        failure keeps its error message and is **not** auto-relaunched —
        retrying is an explicit resubmission.
        """
        if self._journal is None:
            return
        states: Dict[str, str] = {}
        errors: Dict[str, str] = {}
        for entry in self._journal.entries:
            kind = entry.get("kind")
            cid = str(entry.get("id", ""))
            if not cid:
                continue
            if kind == "state":
                states[cid] = str(entry.get("state", ""))
                if states[cid] != "failed":
                    errors.pop(cid, None)
            elif kind == "error":
                errors[cid] = str(entry.get("error", ""))
        for cid, state in states.items():
            if state == "failed":
                self._states[cid] = "failed"
                if cid in errors:
                    self._errors[cid] = errors[cid]

    def _refresh_standby_view(self) -> None:
        """Fold any new primary journal records into the standby's
        read-only state view (all states, not just failures — this view
        exists for operator status, not for relaunch decisions)."""
        for entry in self._service_follower.poll():
            kind = entry.get("kind")
            cid = str(entry.get("id", ""))
            if not cid:
                continue
            if kind == "state":
                self._states[cid] = str(entry.get("state", ""))
                if self._states[cid] != "failed":
                    self._errors.pop(cid, None)
            elif kind == "error":
                self._errors[cid] = str(entry.get("error", ""))

    def _set_state(
        self, campaign_id: str, state: str, error: Optional[str] = None
    ) -> None:
        """Record a state transition (journaled so restarts remember it)."""
        if self._states.get(campaign_id) != state:
            self._states[campaign_id] = state
            if self._journal is not None:
                self._journal.append(
                    {"kind": "state", "id": campaign_id, "state": state}
                )
        if error is not None and self._errors.get(campaign_id) != error:
            self._errors[campaign_id] = error
            if self._journal is not None:
                self._journal.append(
                    {"kind": "error", "id": campaign_id, "error": error}
                )

    def _fleet_shards(self, spec: CampaignSpec) -> int:
        """Shard count for a fleet campaign: the lease granularity.

        ``--shards`` wins when given; otherwise one shard per wearer up
        to 8 — fine-grained enough that a small fleet of workers all get
        work, coarse enough that lease traffic stays negligible next to
        simulation time.
        """
        return self.shards or min(len(spec.wearers), 8)

    # -- campaign bookkeeping ----------------------------------------------------

    def campaign_dir(self, campaign_id: str) -> pathlib.Path:
        if not campaign_id or any(c in campaign_id for c in "/\\."):
            raise HttpError(400, f"bad campaign id {campaign_id!r}")
        return self.root / campaign_id

    def known_ids(self):
        ids = set(self._states)
        if self.root.exists():
            for entry in self.root.iterdir():
                if (entry / CAMPAIGN_MANIFEST_FILENAME).exists():
                    ids.add(entry.name)
        return sorted(ids)

    def _progress(self, directory: pathlib.Path) -> Tuple[int, int]:
        """(done, total) wearer counts straight from the filesystem."""
        try:
            manifest = load_campaign_manifest(directory)
        except JournalError:
            return (0, 0)
        total = len(manifest.get("spec", {}).get("wearers", ()))
        done = len(list(directory.glob(f"shards/*/*/{SUMMARY_FILENAME}")))
        return (done, total)

    def status(self, campaign_id: str) -> dict:
        directory = self.campaign_dir(campaign_id)
        if campaign_id not in self._states and not (
            directory / CAMPAIGN_MANIFEST_FILENAME
        ).exists():
            raise HttpError(404, f"unknown campaign {campaign_id!r}")
        state = self._states.get(campaign_id)
        if state is None:
            # Not tracked in memory: the directory is from a previous
            # service life.  The artifacts decide.
            state = (
                "done"
                if (directory / AGGREGATE_FILENAME).exists()
                else "interrupted"
            )
        done, total = self._progress(directory)
        payload = {
            "id": campaign_id,
            "state": state,
            "wearers_done": done,
            "wearers_total": total,
        }
        queue = self._queues.get(campaign_id)
        if queue is not None:
            # Operator view of the fabric: queue counters plus every
            # shard's pending / leased(worker, expiry) / committed state,
            # so fleet progress is visible without reading any journal.
            counts = queue.counts()
            payload["queue"] = {
                "shards": queue.shards,
                "lease_ttl": queue.lease_ttl,
                **counts,
            }
            payload["shards"] = queue.shard_states()
        if campaign_id in self._errors:
            payload["error"] = self._errors[campaign_id]
        return payload

    def submit(self, spec: CampaignSpec, execution: str = "local") -> dict:
        """Start (or attach to) the campaign for ``spec``.

        ``execution="local"`` runs it on this host (PR 7 behaviour);
        ``execution="fleet"`` decomposes it into shard-grain work items
        and waits for pulling workers.  Submission stays idempotent
        either way — resubmitting a known spec attaches to the existing
        campaign regardless of the execution mode requested.
        """
        if execution not in ("local", "fleet"):
            raise HttpError(
                400, f"execution must be 'local' or 'fleet', got "
                f"{execution!r}"
            )
        campaign_id = spec.fingerprint()
        state = self._states.get(campaign_id)
        if state in ("queued", "running", "fleet", "done"):
            return self.status(campaign_id)
        directory = self.campaign_dir(campaign_id)
        if (directory / AGGREGATE_FILENAME).exists():
            self._set_state(campaign_id, "done")
            return self.status(campaign_id)
        if execution == "fleet":
            self._open_queue(campaign_id, spec)
        else:
            self._launch(campaign_id, spec)
        return self.status(campaign_id)

    def _open_queue(self, campaign_id: str, spec: CampaignSpec) -> None:
        """Create (or reopen) the shard queue of a fleet campaign."""
        queue = CampaignQueue(
            spec,
            self.campaign_dir(campaign_id),
            shards=self._fleet_shards(spec),
            lease_ttl=self.lease_ttl,
            steal_enabled=self.steal_enabled,
            epoch=self.epoch,
        )
        self._queues[campaign_id] = queue
        self._errors.pop(campaign_id, None)
        if queue.done:
            # Every shard already committed (e.g. killed between the
            # last commit and aggregation): finalize immediately.
            queue.finalize()
            self._set_state(campaign_id, "done")
        else:
            self._set_state(campaign_id, "fleet")

    def _launch(self, campaign_id: str, spec: CampaignSpec) -> None:
        self._set_state(campaign_id, "queued")
        self._errors.pop(campaign_id, None)
        self._tasks[campaign_id] = asyncio.get_running_loop().create_task(
            self._run(campaign_id, spec)
        )

    async def _run(self, campaign_id: str, spec: CampaignSpec) -> None:
        from repro.campaign.runner import run_campaign

        self._set_state(campaign_id, "running")
        try:
            await asyncio.to_thread(
                run_campaign,
                spec,
                self.campaign_dir(campaign_id),
                shards=self.shards,
                jobs=self.jobs,
                cache_dir=self.cache_dir,
                batch_mode=self.batch_mode,
                wearer_cache_dir=str(self.wearer_cache.directory),
            )
        except Exception as exc:  # surfaced via GET status, not lost
            self._set_state(
                campaign_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
        else:
            self._set_state(campaign_id, "done")

    def recover(self) -> int:
        """Resume every interrupted campaign found under the root.

        Called at service start; each resumed campaign finishes through
        the journal-replay path to byte-identical artifacts.  Returns the
        number of campaigns resumed.
        """
        resumed = 0
        if not self.root.exists():
            return 0
        for entry in sorted(self.root.iterdir()):
            if not (entry / CAMPAIGN_MANIFEST_FILENAME).exists():
                continue
            if (entry / AGGREGATE_FILENAME).exists():
                self._states.setdefault(entry.name, "done")
                continue
            if self._states.get(entry.name) == "failed":
                # Remembered from the service journal: a failed campaign
                # stays failed (error and all) until explicitly
                # resubmitted — restarting the coordinator is not a retry.
                continue
            try:
                manifest = load_campaign_manifest(entry)
                spec = CampaignSpec.from_dict(manifest["spec"])
            except (JournalError, KeyError, ValueError) as exc:
                self._set_state(
                    entry.name, "failed",
                    error=f"unrecoverable manifest: {exc}",
                )
                continue
            if (entry / QUEUE_LOG_FILENAME).exists():
                # Fleet campaign: rebuild the queue from its lease/commit
                # log.  Committed shards stay committed, in-flight leases
                # keep their original expiry (and are reassigned once it
                # lapses) — the coordinator must never re-run shards
                # locally behind its workers' backs.
                try:
                    self._open_queue(entry.name, spec)
                except (JournalError, QueueError, OSError, ValueError) as exc:
                    self._set_state(
                        entry.name, "failed",
                        error=f"unrecoverable queue log: {exc}",
                    )
                    continue
            else:
                self._launch(entry.name, spec)
            resumed += 1
        return resumed

    # -- HTTP layer --------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[asyncio.base_events.Server, int]:
        """Bind, recover interrupted campaigns, and begin serving.
        Returns ``(server, bound_port)`` — pass ``port=0`` for an
        ephemeral port (the test suite's socket-flakiness guard).

        A standby binds without recovering (the primary owns the
        campaigns) and starts probing the primary's health for
        auto-promotion instead."""
        if self.role == "primary":
            self.recover()
        elif self.standby_of:
            self._watch_task = asyncio.get_running_loop().create_task(
                self._watch_primary()
            )
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()[1]
        return self._server, bound

    async def stop(self) -> None:
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except (asyncio.CancelledError, Exception):
                pass
            self._watch_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for queue in self._queues.values():
            queue.close()
        if self._journal is not None:
            self._journal.close()
        if getattr(self, "_fencing_log", None) is not None:
            self._fencing_log.close()

    # -- standby promotion -------------------------------------------------------

    def promote(self) -> dict:
        """Turn this standby into the primary (idempotent).

        Claims the next fencing epoch (durably, in ``fencing.jsonl`` —
        from this instant every mutation on the deposed primary fails
        its :meth:`_check_fenced` with 410), opens the service journal,
        and recovers every campaign under the root: committed shards
        stay committed, in-flight leases are restored verbatim (their
        old-epoch tokens remain honoured, so mid-shard work commits
        without re-simulation) and newly minted tokens carry the new
        epoch.
        """
        if self.role == "primary":
            return {"role": self.role, "epoch": self.epoch,
                    "promoted": False}
        self.role = "primary"
        self.standby_of = None
        if self._watch_task is not None:
            self._watch_task.cancel()
            self._watch_task = None
        self._claim_epoch()
        self._states.clear()
        self._errors.clear()
        self._journal = EventLog(self.root / SERVICE_LOG_FILENAME)
        self._replay_states()
        resumed = self.recover()
        from repro.obs import runtime

        obs = runtime.get_active()
        if obs is not None:
            obs.counter("fabric.promotions").inc()
            obs.event(
                "fabric.promote", node=self.node_name, epoch=self.epoch,
                resumed=resumed,
            )
        print(
            f"hi-explore serve: node {self.node_name} promoted to "
            f"primary at fencing epoch {self.epoch} "
            f"({resumed} campaign(s) resumed)",
            flush=True,
        )
        return {"role": self.role, "epoch": self.epoch, "promoted": True,
                "resumed": resumed}

    async def _probe_primary(self) -> bool:
        """One ``GET /healthz`` against the primary; False on any
        failure (connect refused, timeout, non-200, garbage)."""
        target = str(self.standby_of or "")
        target = target.split("//", 1)[-1].rstrip("/")
        host, _, port_text = target.partition(":")
        try:
            port = int(port_text or 80)
        except ValueError:
            return False
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host or "127.0.0.1", port),
                self.ping_interval,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: primary\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), self.ping_interval
            )
            return b" 200 " in status_line
        except (OSError, asyncio.TimeoutError):
            return False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _watch_primary(self) -> None:
        """Auto-promotion loop: probe the primary every
        ``ping_interval`` seconds and promote after ``ping_misses``
        consecutive failures.  A single successful probe resets the
        count, so a slow-but-alive primary is never deposed."""
        misses = 0
        while self.role == "standby":
            await asyncio.sleep(self.ping_interval)
            if await self._probe_primary():
                misses = 0
                continue
            misses += 1
            if misses >= self.ping_misses:
                self.promote()
                return

    async def join(self) -> None:
        """Wait for every launched campaign task to settle (test helper)."""
        tasks = [t for t in self._tasks.values() if not t.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def _admit(self, method: str, path: str) -> bool:
        """Claim a global in-flight slot for one request, or raise 429.

        Runs synchronously right after the request line is parsed —
        before headers or body — so a saturating flood is refused at the
        cheapest possible point and a stalled-body upload holds exactly
        one slot for exactly as long as it stalls.  Health probes and
        promotion are exempt: an overloaded coordinator must stay
        observable and deposable.  Returns True when a slot was taken
        (the caller owes a release).
        """
        bare = path.split("?", 1)[0]
        if bare == "/healthz" or bare == "/fabric/promote":
            return False
        if self._inflight >= self.max_inflight:
            self._note_backpressure("global")
            raise HttpError(
                429,
                f"coordinator is saturated ({self._inflight} requests "
                f"in flight, limit {self.max_inflight}) — retry after "
                f"{self.retry_after}s",
                extra={"retry_after": self.retry_after},
                headers={"Retry-After": f"{self.retry_after:g}"},
            )
        self._inflight += 1
        return True

    def _note_backpressure(self, scope: str) -> None:
        from repro.obs import runtime

        obs = runtime.get_active()
        if obs is not None:
            obs.counter("fabric.backpressure_rejections").inc()
            obs.event(
                "fabric.backpressure", scope=scope,
                inflight=self._inflight, limit=self.max_inflight,
                retry_after=self.retry_after,
            )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        #: Monotonic time of this connection's last /fabric/sync (the
        #: per-connection backpressure state).
        last_sync: Optional[float] = None
        try:
            first = True
            while True:
                # Mutable per-request holder: _read_request flips it the
                # instant a slot is claimed, so the slot is released even
                # when the read is cancelled (timeout) mid-body.
                slot = {"held": False}
                try:
                    try:
                        # One slow or silent client must not pin this
                        # handler: the whole request read shares a single
                        # deadline.
                        try:
                            method, path, body, want_close, headers = (
                                await asyncio.wait_for(
                                    self._read_request(reader, slot=slot),
                                    self.read_timeout,
                                )
                            )
                        except asyncio.TimeoutError:
                            if not first:
                                # An idle keep-alive connection simply
                                # aged out; hanging up is the answer,
                                # not 408.
                                break
                            raise HttpError(
                                408,
                                f"request not received within "
                                f"{self.read_timeout}s",
                            ) from None
                    except _ConnectionClosed:
                        break
                    except HttpError as exc:
                        # The byte stream is in an unknown state after a
                        # failed read: answer what we can, then hang up.
                        await self._respond(
                            writer, exc.status,
                            {"error": exc.message, **exc.extra},
                            keep_alive=False, headers=exc.headers,
                        )
                        break
                    keep_alive = not want_close
                    extra_headers: Dict[str, str] = {}
                    try:
                        if (
                            self.min_sync_interval > 0
                            and method == "POST"
                            and path.split("?", 1)[0] == "/fabric/sync"
                        ):
                            now = time.monotonic()
                            if (
                                last_sync is not None
                                and now - last_sync < self.min_sync_interval
                            ):
                                wait = self.min_sync_interval - (
                                    now - last_sync
                                )
                                self._note_backpressure("connection")
                                raise HttpError(
                                    429,
                                    "syncing faster than the "
                                    f"{self.min_sync_interval:g}s "
                                    "per-connection minimum — slow down",
                                    extra={"retry_after": wait},
                                    headers={"Retry-After": f"{wait:g}"},
                                )
                            last_sync = now
                        status, payload = self._route(
                            method, path, body, headers
                        )
                    except HttpError as exc:
                        status, payload = exc.status, {
                            "error": exc.message, **exc.extra
                        }
                        extra_headers = exc.headers
                    except Exception as exc:  # never let a request kill us
                        status, payload = 500, {
                            "error": f"{type(exc).__name__}: {exc}"
                        }
                    await self._respond(
                        writer, status, payload, keep_alive=keep_alive,
                        headers=extra_headers,
                    )
                finally:
                    if slot["held"]:
                        self._inflight -= 1
                if not keep_alive:
                    break
                first = False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, slot: Optional[dict] = None
    ) -> Tuple[str, str, bytes, bool, Dict[str, str]]:
        raw = await reader.readline()
        if not raw:
            raise _ConnectionClosed()
        request_line = raw.decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        if slot is not None:
            # Admission control happens here — after the request line,
            # before headers or body — so saturation is answered at the
            # cheapest point and a stalled upload owns exactly one slot.
            slot["held"] = self._admit(method, path)
        # HTTP/1.1 defaults to keep-alive, anything older to close; the
        # Connection header overrides either way.
        want_close = parts[2] != "HTTP/1.1"
        content_length = 0
        headers: Dict[str, str] = {}
        while True:
            try:
                line = (await reader.readline()).decode("latin-1")
            except ValueError:
                # StreamReader refuses header lines past its buffer
                # limit — an oversized/garbage header, not our bug.
                raise HttpError(400, "header line too long") from None
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            name = name.strip().lower()
            headers[name] = value.strip()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length") from None
            elif name == "connection":
                token = value.strip().lower()
                if token == "close":
                    want_close = True
                elif token == "keep-alive":
                    want_close = False
        if content_length > MAX_BODY_BYTES:
            # Refused before buffering a byte of it: the declared size
            # alone disqualifies the request.
            raise HttpError(
                413,
                f"request body of {content_length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body, want_close, headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        ).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _protected(method: str, segments: List[str]) -> bool:
        """Is this a fabric-plane request that must be signed?

        The fabric plane — everything a *worker* does (sync, leases,
        heartbeats, commits, cache) plus promotion — is protected.  The
        operator plane (submission, status, result, artifact GETs) is
        deliberately not: it mutates nothing a worker's signature would
        protect, and keeping it open means `curl` diagnostics keep
        working during an incident.  DESIGN.md §14 spells out the split.
        """
        if segments[:1] == ["fabric"]:
            return True
        if segments[:2] == ["cache", "wearers"]:
            return True
        if (
            method == "POST"
            and len(segments) >= 3
            and segments[0] == "campaigns"
            and segments[2] in ("leases", "shards")
        ):
            return True
        return False

    def _authenticate(
        self, method: str, path: str, body: bytes,
        headers: Dict[str, str],
    ) -> None:
        try:
            self.auth.verify(method, path, body, headers)
        except AuthError as exc:
            from repro.obs import runtime

            obs = runtime.get_active()
            if obs is not None:
                obs.counter("fabric.auth_denied").inc()
                obs.event(
                    "fabric.auth", status=exc.status, method=method,
                    path=path.split("?", 1)[0],
                )
            raise HttpError(exc.status, exc.message) from None

    def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, dict]:
        raw_path = path
        path = path.split("?", 1)[0]
        segments = [s for s in path.split("/") if s]
        # Authentication comes first — before fencing, before standby
        # gating, before any handler — so an unauthenticated request
        # learns nothing and mutates nothing.  Signatures cover the raw
        # request-target exactly as the client sent it.
        if self.auth is not None and self._protected(method, segments):
            self._authenticate(method, raw_path, body, headers or {})
        if segments == ["healthz"]:
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return 200, {
                "ok": True,
                "campaigns": len(self.known_ids()),
                "role": self.role,
                "epoch": self.epoch,
                "node": self.node_name,
                "auth": self.auth is not None,
            }
        if segments == ["fabric", "promote"]:
            if method != "POST":
                raise HttpError(405, "fabric promote is POST-only")
            return 200, self.promote()
        if method in ("POST", "PUT"):
            # Every mutation, fabric- or operator-plane, is refused on a
            # standby (503: retry against the primary or promote first)
            # and on a fenced ex-primary (410: a newer epoch owns the
            # root now).
            if self.role == "standby":
                raise HttpError(
                    503,
                    "this coordinator is a standby (read-only until "
                    "promoted) — send mutations to the primary or "
                    "POST /fabric/promote",
                    extra={"role": "standby"},
                )
            self._check_fenced()
        elif self.role == "standby":
            self._refresh_standby_view()
        if len(segments) == 3 and segments[:2] == ["cache", "wearers"]:
            if method == "GET":
                return self._get_wearer_cache(segments[2])
            if method == "PUT":
                return self._put_wearer_cache(segments[2], body)
            raise HttpError(405, f"{method} not allowed on {path!r}")
        if segments == ["fabric", "sync"]:
            if method != "POST":
                raise HttpError(405, "fabric sync is POST-only")
            return self._post_sync(body)
        if not segments or segments[0] != "campaigns":
            raise HttpError(404, f"no route for {path!r}")
        if len(segments) == 1:
            if method == "POST":
                return self._post_campaign(body)
            if method == "GET":
                return 200, {
                    "campaigns": [self.status(cid) for cid in self.known_ids()]
                }
            raise HttpError(405, f"{method} not allowed on /campaigns")
        campaign_id = segments[1]
        # -- fabric surface (POST: leases, heartbeats, commits) ----------------
        if method == "POST":
            if len(segments) == 3 and segments[2] == "leases":
                return self._post_lease(campaign_id, body)
            if (
                len(segments) == 5
                and segments[2] == "leases"
                and segments[4] in ("heartbeat", "release")
            ):
                return self._post_lease_action(
                    campaign_id, segments[3], segments[4], body
                )
            if len(segments) == 5 and (
                segments[2] == "shards" and segments[4] == "complete"
            ):
                return self._post_complete(campaign_id, segments[3], body)
            raise HttpError(405, f"POST not allowed on {path!r}")
        if method != "GET":
            raise HttpError(405, f"{method} not allowed on {path!r}")
        if len(segments) == 2:
            return 200, self.status(campaign_id)
        if len(segments) == 3 and segments[2] == "status":
            return 200, self.status(campaign_id)
        if len(segments) == 3 and segments[2] == "result":
            return self._get_result(campaign_id)
        if len(segments) == 4 and segments[2] == "artifacts":
            return self._get_artifact(campaign_id, segments[3])
        raise HttpError(404, f"no route for {path!r}")

    def _json_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload

    def _post_campaign(self, body: bytes) -> Tuple[int, dict]:
        payload = self._json_body(body)
        execution = str(payload.pop("execution", "local"))
        try:
            spec = CampaignSpec.from_dict(payload.get("spec", payload))
        except ValueError as exc:
            raise HttpError(400, f"bad campaign spec: {exc}") from None
        status = self.submit(spec, execution=execution)
        return (200 if status["state"] == "done" else 202), status

    # -- fabric handlers ---------------------------------------------------------

    def _queue_for(self, campaign_id: str) -> CampaignQueue:
        self.status(campaign_id)  # 404 on unknown campaigns
        queue = self._queues.get(campaign_id)
        if queue is None:
            raise HttpError(
                409,
                f"campaign {campaign_id!r} is not fleet-executed (no "
                "shard queue); submit it with execution='fleet'",
            )
        return queue

    def _post_lease(self, campaign_id: str, body: bytes) -> Tuple[int, dict]:
        payload = self._json_body(body) if body else {}
        worker = str(payload.get("worker") or "anonymous")
        queue = self._queue_for(campaign_id)
        try:
            lease = queue.acquire(worker)
        except QueueError as exc:
            raise HttpError(exc.status, exc.message) from None
        return 200, {"lease": lease, "queue": queue.counts()}

    def _post_lease_action(
        self, campaign_id: str, token: str, action: str, body: bytes
    ) -> Tuple[int, dict]:
        queue = self._queue_for(campaign_id)
        try:
            if action == "heartbeat":
                return 200, queue.heartbeat(token)
            payload = self._json_body(body) if body else {}
            reason = str(payload.get("reason") or "released")
            return 200, queue.release(token, reason=reason)
        except QueueError as exc:
            raise HttpError(exc.status, exc.message) from None

    def _post_complete(
        self, campaign_id: str, shard_text: str, body: bytes
    ) -> Tuple[int, dict]:
        try:
            shard = int(shard_text)
        except ValueError:
            raise HttpError(400, f"bad shard index {shard_text!r}") from None
        payload = self._json_body(body)
        summaries = payload.get("summaries")
        if not isinstance(summaries, dict):
            raise HttpError(400, "commit needs a 'summaries' object")
        queue = self._queue_for(campaign_id)
        try:
            outcome = queue.commit(
                shard,
                summaries,
                crc=str(payload.get("crc") or ""),
                worker=str(payload.get("worker") or "anonymous"),
                token=payload.get("token"),
            )
        except QueueError as exc:
            raise HttpError(exc.status, exc.message) from None
        # Feed the cross-campaign cache: every summary that just landed
        # is now a download for any other campaign naming this wearer.
        self._ingest_summaries(queue, summaries)
        if queue.done and self._states.get(campaign_id) != "done":
            # The last shard just landed: aggregation triggers exactly
            # here, and the artifacts are byte-identical to a single-host
            # run because they are built from the same summary bytes.
            queue.finalize()
            self._set_state(campaign_id, "done")
        outcome["campaign_state"] = self._states.get(campaign_id, "fleet")
        return 200, outcome

    def _ingest_summaries(
        self, queue: CampaignQueue, summaries: Dict[str, dict]
    ) -> None:
        """Fold freshly-committed summaries into the wearer cache.

        The queue has already CRC-validated these bytes against this
        campaign's shard; a divergence surfacing *here* means a different
        campaign cached other bytes for the same fingerprint.  The cache
        is first-writer-wins, so the commit still stands — but silently
        serving either version onward would be wrong, so it is counted
        and the entry left untouched for the operator to compare.
        """
        for wearer_id, summary in summaries.items():
            if not isinstance(summary, dict):
                continue
            try:
                wearer = queue.spec.wearer(str(wearer_id))
            except KeyError:
                continue
            fingerprint = wearer_fingerprint(queue.spec.preset, wearer)
            try:
                self.wearer_cache.put(fingerprint, summary)
            except WearerCacheDiverged:
                from repro.obs import runtime

                obs = runtime.get_active()
                if obs is not None:
                    obs.counter("cache.wearer_divergences").inc()

    # -- cross-campaign wearer cache ---------------------------------------------

    def _get_wearer_cache(self, fingerprint: str) -> Tuple[int, dict]:
        try:
            summary = self.wearer_cache.get(fingerprint)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        if summary is None:
            raise HttpError(
                404, f"no cached wearer result for {fingerprint!r}"
            )
        return 200, {
            "fingerprint": fingerprint,
            "summary": summary,
            "crc": summary_crc(summary),
        }

    def _put_wearer_cache(
        self, fingerprint: str, body: bytes
    ) -> Tuple[int, dict]:
        payload = self._json_body(body)
        summary = payload.get("summary")
        if not isinstance(summary, dict):
            raise HttpError(400, "cache put needs a 'summary' object")
        crc = str(payload.get("crc") or "")
        if not crc:
            raise HttpError(400, "cache put needs the summary 'crc'")
        if crc != summary_crc(summary):
            raise HttpError(
                400,
                f"summary bytes do not match declared crc {crc!r} — "
                "refusing to cache a corrupted upload",
            )
        try:
            stored = self.wearer_cache.put(fingerprint, summary)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        except WearerCacheDiverged as exc:
            raise HttpError(409, str(exc)) from None
        return 200, {"fingerprint": fingerprint, "stored": stored}

    # -- batched worker sync -----------------------------------------------------

    def _post_sync(self, body: bytes) -> Tuple[int, dict]:
        """One round-trip for a whole worker tick.

        Renews every lease the worker still holds (individually — one
        dead token must not poison the others), then optionally grants
        one new lease, round-robin across active fleet campaigns.  Every
        heartbeat entry carries its own ``status`` (200 or the
        :class:`QueueError` code, e.g. 410 once reassigned) so the
        worker can drop exactly the leases it lost.
        """
        payload = self._json_body(body)
        worker = str(payload.get("worker") or "anonymous")
        heartbeats = payload.get("heartbeats") or []
        if not isinstance(heartbeats, list):
            raise HttpError(400, "'heartbeats' must be a list")
        results: List[dict] = []
        for entry in heartbeats:
            if not isinstance(entry, dict):
                continue
            cid = str(entry.get("campaign") or "")
            token = str(entry.get("token") or "")
            result = {"campaign": cid, "token": token}
            queue = self._queues.get(cid)
            if queue is None:
                result.update(
                    status=410,
                    error=f"campaign {cid!r} has no active queue",
                )
            else:
                try:
                    outcome = queue.heartbeat(token)
                except QueueError as exc:
                    result.update(status=exc.status, error=exc.message)
                else:
                    result.update(outcome)
                    result["status"] = 200
            results.append(result)
        response: dict = {
            "worker": worker,
            "heartbeats": results,
            "campaign": None,
            "lease": None,
        }
        if payload.get("acquire", True):
            granted = self._grant_lease(worker)
            if granted is not None:
                response["campaign"], response["lease"] = granted
        return 200, response

    def _grant_lease(self, worker: str) -> Optional[Tuple[str, dict]]:
        """One lease from the active fleet campaigns, round-robin.

        The cursor advances past whichever campaign granted, so one big
        early campaign cannot starve later submissions.  Cached wearer
        summaries for the granted shard ride along under ``"cached"`` —
        the worker never makes a separate cache round-trip for work the
        coordinator already knew was warm.
        """
        active = [
            cid for cid in sorted(self._queues)
            if not self._queues[cid].done
        ]
        if not active:
            return None
        start = self._rr_cursor % len(active)
        for offset in range(len(active)):
            cid = active[(start + offset) % len(active)]
            queue = self._queues[cid]
            try:
                lease = queue.acquire(worker)
            except QueueError:
                continue
            if lease is None:
                continue
            self._rr_cursor = (start + offset + 1) % len(active)
            cached = self.wearer_cache.prefetch(
                queue.spec.preset, lease.get("wearers") or []
            )
            if cached:
                lease["cached"] = cached
            return cid, lease
        return None

    def _get_result(self, campaign_id: str) -> Tuple[int, dict]:
        status = self.status(campaign_id)
        path = self.campaign_dir(campaign_id) / AGGREGATE_FILENAME
        if not path.exists():
            raise HttpError(
                409,
                f"campaign {campaign_id!r} is {status['state']} "
                f"({status['wearers_done']}/{status['wearers_total']} "
                "wearers done); no aggregate yet",
            )
        with open(path, "r", encoding="utf-8") as fh:
            return 200, json.load(fh)

    def _get_artifact(
        self, campaign_id: str, name: str
    ) -> Tuple[int, dict]:
        self.status(campaign_id)  # 404 on unknown campaigns
        if name not in ARTIFACTS:
            raise HttpError(
                404, f"unknown artifact {name!r} (have {list(ARTIFACTS)})"
            )
        path = self.campaign_dir(campaign_id) / name
        if not path.exists():
            raise HttpError(409, f"artifact {name!r} not written yet")
        with open(path, "r", encoding="utf-8") as fh:
            return 200, json.load(fh)


async def _serve(service: CampaignService, host: str, port: int) -> None:
    server, bound = await service.start(host=host, port=port)
    print(
        f"hi-explore serve: campaigns root {service.root} on "
        f"http://{host}:{bound} (jobs={service.jobs}, "
        f"role={service.role}, epoch={service.epoch}, "
        f"node={service.node_name})",
        flush=True,
    )
    async with server:
        await server.serve_forever()


def serve_forever(
    root,
    host: str = "127.0.0.1",
    port: int = 8732,
    jobs: int = 1,
    shards: Optional[int] = None,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    steal_enabled: bool = True,
    fabric_secret: Optional[str] = None,
    standby_of: Optional[str] = None,
    node_name: Optional[str] = None,
    ping_interval: float = DEFAULT_PING_INTERVAL,
    ping_misses: int = DEFAULT_PING_MISSES,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    min_sync_interval: float = 0.0,
    cache_max_bytes: Optional[int] = None,
    cache_max_entries: Optional[int] = None,
) -> int:
    """Blocking entry point for ``hi-explore serve``."""
    service = CampaignService(
        root, jobs=jobs, shards=shards, cache_dir=cache_dir,
        batch_mode=batch_mode, lease_ttl=lease_ttl,
        steal_enabled=steal_enabled, fabric_secret=fabric_secret,
        standby_of=standby_of, node_name=node_name,
        ping_interval=ping_interval, ping_misses=ping_misses,
        max_inflight=max_inflight, min_sync_interval=min_sync_interval,
        cache_max_bytes=cache_max_bytes,
        cache_max_entries=cache_max_entries,
    )
    if service.auth is None:
        print(
            "hi-explore serve: WARNING — fabric auth is DISABLED (legacy "
            "mode). Anyone who can reach this port can lease shards, "
            "commit results, and write the wearer cache. Set "
            "--fabric-secret or REPRO_FABRIC_SECRET to require signed "
            "fabric RPCs.",
            flush=True,
        )
    try:
        asyncio.run(_serve(service, host, port))
    except KeyboardInterrupt:
        print("hi-explore serve: interrupted, shutting down", flush=True)
    return 0
