"""Stdlib-only async HTTP API over the campaign runtime.

A tiny, dependency-free HTTP/1.1 server hand-rolled on
:func:`asyncio.start_server` (one request per connection, JSON in/out)
that turns :func:`repro.campaign.runner.run_campaign` into a service::

    GET  /healthz                       liveness probe
    POST /campaigns                     submit a CampaignSpec (JSON body);
                                        202 {"id", "state"} — idempotent:
                                        resubmitting a known spec returns
                                        the existing campaign.  Body may
                                        carry {"execution": "fleet"} to
                                        queue the campaign for pulling
                                        workers instead of running it on
                                        the service host
    GET  /campaigns                     list known campaigns
    GET  /campaigns/<id>                status + progress (wearers done /
                                        total, read from the filesystem —
                                        the journals are the truth)
    GET  /campaigns/<id>/status         same, spelled out (operator alias)
    GET  /campaigns/<id>/result         the aggregate report (409 until done)
    GET  /campaigns/<id>/artifacts/<n>  raw artifact file (aggregate.json,
                                        atlas.json, telemetry.json,
                                        campaign.json)

Fleet-executed campaigns add the lease/commit surface of the
distributed work queue (:mod:`repro.campaign.queue`, DESIGN.md §12)::

    POST /campaigns/<id>/leases                    acquire a shard lease
                                                   (body {"worker": name};
                                                   {"lease": null} = no work)
    POST /campaigns/<id>/leases/<token>/heartbeat  renew (410 once gone)
    POST /campaigns/<id>/leases/<token>/release    graceful return
    POST /campaigns/<id>/shards/<n>/complete       CRC-checked idempotent
                                                   commit of the shard's
                                                   per-wearer summaries

The fleet hot path (PR 9, DESIGN.md §13) adds three more::

    POST /fabric/sync                  one round-trip for a whole worker
                                       tick: renew every held lease AND
                                       acquire new work (granted
                                       round-robin across active fleet
                                       campaigns, so one big campaign
                                       cannot starve later submissions),
                                       with cross-campaign cached wearer
                                       summaries prefetched onto the
                                       lease payload
    GET  /cache/wearers/<fingerprint>  cross-campaign wearer-result cache
    PUT  /cache/wearers/<fingerprint>  (content-addressed, CRC-validated,
                                       idempotent; 409 on divergence)

Connections are **keep-alive** by default (HTTP/1.1 semantics: one
request after another on the same socket until the client sends
``Connection: close`` or goes quiet), so a worker's entire
pull→heartbeat→commit loop rides one TCP connection.

Campaign ids are spec fingerprints, so submission is naturally
idempotent and the id is stable across service restarts.

Durability is the whole point: the service holds **no** authoritative
state.  Every campaign lives in ``<root>/<id>/`` as manifests + per-wearer
journals + artifacts; on startup :meth:`CampaignService.recover` scans the
root and re-runs every campaign that has a manifest but no aggregate —
completed wearers load their summaries, in-flight wearers replay their
journals (PR 5), so a SIGKILLed service finishes every interrupted
campaign with byte-identical artifacts.  Fleet campaigns recover through
their ``queue.jsonl`` lease/commit log instead: committed shards stay
committed (the summaries are on disk), in-flight leases are restored
with their original expiry and reassigned once the TTL lapses, and a
campaign killed between its last commit and aggregation is finalized on
the spot.

Campaign execution is CPU-bound and runs on a worker thread
(``asyncio.to_thread``); inside that thread the fault-tolerant
:class:`~repro.core.parallel.WorkerPool` fans wearers out across
processes.  The event loop itself only parses requests and reads files;
queue mutations are synchronous on the loop, which is what makes the
lease state machine race-free without locks.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.campaign.aggregate import (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
)
from repro.campaign.queue import (
    DEFAULT_LEASE_TTL,
    CampaignQueue,
    QueueError,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.wearer_cache import (
    WEARER_CACHE_DIRNAME,
    WearerCacheDiverged,
    WearerResultCache,
    summary_crc,
    wearer_fingerprint,
)
from repro.core.journal import (
    CAMPAIGN_MANIFEST_FILENAME,
    QUEUE_LOG_FILENAME,
    SUMMARY_FILENAME,
    EventLog,
    JournalError,
    load_campaign_manifest,
)

#: Durable record of campaign state transitions (``<root>/service.jsonl``):
#: replayed at startup so a restarted coordinator also remembers *failed*
#: campaigns (their error included) instead of silently re-running them.
SERVICE_LOG_FILENAME = "service.jsonl"

#: Artifact names the API will serve (everything else 404s: the campaign
#: directory also holds journals, which are replay state, not artifacts).
ARTIFACTS = (
    AGGREGATE_FILENAME,
    ATLAS_FILENAME,
    TELEMETRY_FILENAME,
    CAMPAIGN_MANIFEST_FILENAME,
)

#: Request-body ceiling (specs and shard commits are KiB-scale; anything
#: bigger is abuse and is refused with 413 before a byte is buffered).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Per-request read deadline: one slow (or silent) client may not pin a
#: connection handler forever; past this it gets 408 and the socket back.
DEFAULT_READ_TIMEOUT = 10.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _ConnectionClosed(Exception):
    """The client hung up between requests on a keep-alive connection —
    the normal end of a conversation, never an error."""


class CampaignService:
    """Campaign orchestration bound to one root directory.

    ``jobs``/``shards``/``cache_dir``/``batch_mode`` are the execution
    knobs applied to every campaign this service runs; they do not enter
    any fingerprint, so a service restarted with different parallelism
    resumes its campaigns to identical artifacts.
    """

    def __init__(
        self,
        root,
        jobs: int = 1,
        shards: Optional[int] = None,
        cache_dir: Optional[str] = None,
        batch_mode: str = "auto",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        steal_enabled: bool = True,
    ) -> None:
        self.root = pathlib.Path(root)
        self.jobs = max(1, int(jobs))
        self.shards = shards
        self.cache_dir = cache_dir
        self.batch_mode = batch_mode
        self.lease_ttl = float(lease_ttl)
        self.read_timeout = float(read_timeout)
        self.steal_enabled = bool(steal_enabled)
        #: id → "queued" | "running" | "fleet" | "done" | "failed"
        self._states: Dict[str, str] = {}
        self._errors: Dict[str, str] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        #: id → shard queue of a fleet-executed campaign
        self._queues: Dict[str, CampaignQueue] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        #: Cross-campaign wearer-result cache (fed by shard commits,
        #: served over GET/PUT /cache/wearers/<fp>, prefetched on leases).
        self.wearer_cache = WearerResultCache(
            self.root / WEARER_CACHE_DIRNAME
        )
        #: Round-robin cursor over active fleet campaigns (lease fairness).
        self._rr_cursor = 0
        self._journal = EventLog(self.root / SERVICE_LOG_FILENAME)
        self._replay_states()

    def _replay_states(self) -> None:
        """Restore remembered campaign outcomes from the service journal.

        Only terminal *failures* are restored into memory: ``done`` is
        always derivable from the aggregate on disk, and transient
        states (queued/running/fleet) mean the campaign was interrupted
        and should go through :meth:`recover` as before.  A restored
        failure keeps its error message and is **not** auto-relaunched —
        retrying is an explicit resubmission.
        """
        states: Dict[str, str] = {}
        errors: Dict[str, str] = {}
        for entry in self._journal.entries:
            kind = entry.get("kind")
            cid = str(entry.get("id", ""))
            if not cid:
                continue
            if kind == "state":
                states[cid] = str(entry.get("state", ""))
                if states[cid] != "failed":
                    errors.pop(cid, None)
            elif kind == "error":
                errors[cid] = str(entry.get("error", ""))
        for cid, state in states.items():
            if state == "failed":
                self._states[cid] = "failed"
                if cid in errors:
                    self._errors[cid] = errors[cid]

    def _set_state(
        self, campaign_id: str, state: str, error: Optional[str] = None
    ) -> None:
        """Record a state transition (journaled so restarts remember it)."""
        if self._states.get(campaign_id) != state:
            self._states[campaign_id] = state
            self._journal.append(
                {"kind": "state", "id": campaign_id, "state": state}
            )
        if error is not None and self._errors.get(campaign_id) != error:
            self._errors[campaign_id] = error
            self._journal.append(
                {"kind": "error", "id": campaign_id, "error": error}
            )

    def _fleet_shards(self, spec: CampaignSpec) -> int:
        """Shard count for a fleet campaign: the lease granularity.

        ``--shards`` wins when given; otherwise one shard per wearer up
        to 8 — fine-grained enough that a small fleet of workers all get
        work, coarse enough that lease traffic stays negligible next to
        simulation time.
        """
        return self.shards or min(len(spec.wearers), 8)

    # -- campaign bookkeeping ----------------------------------------------------

    def campaign_dir(self, campaign_id: str) -> pathlib.Path:
        if not campaign_id or any(c in campaign_id for c in "/\\."):
            raise HttpError(400, f"bad campaign id {campaign_id!r}")
        return self.root / campaign_id

    def known_ids(self):
        ids = set(self._states)
        if self.root.exists():
            for entry in self.root.iterdir():
                if (entry / CAMPAIGN_MANIFEST_FILENAME).exists():
                    ids.add(entry.name)
        return sorted(ids)

    def _progress(self, directory: pathlib.Path) -> Tuple[int, int]:
        """(done, total) wearer counts straight from the filesystem."""
        try:
            manifest = load_campaign_manifest(directory)
        except JournalError:
            return (0, 0)
        total = len(manifest.get("spec", {}).get("wearers", ()))
        done = len(list(directory.glob(f"shards/*/*/{SUMMARY_FILENAME}")))
        return (done, total)

    def status(self, campaign_id: str) -> dict:
        directory = self.campaign_dir(campaign_id)
        if campaign_id not in self._states and not (
            directory / CAMPAIGN_MANIFEST_FILENAME
        ).exists():
            raise HttpError(404, f"unknown campaign {campaign_id!r}")
        state = self._states.get(campaign_id)
        if state is None:
            # Not tracked in memory: the directory is from a previous
            # service life.  The artifacts decide.
            state = (
                "done"
                if (directory / AGGREGATE_FILENAME).exists()
                else "interrupted"
            )
        done, total = self._progress(directory)
        payload = {
            "id": campaign_id,
            "state": state,
            "wearers_done": done,
            "wearers_total": total,
        }
        queue = self._queues.get(campaign_id)
        if queue is not None:
            # Operator view of the fabric: queue counters plus every
            # shard's pending / leased(worker, expiry) / committed state,
            # so fleet progress is visible without reading any journal.
            counts = queue.counts()
            payload["queue"] = {
                "shards": queue.shards,
                "lease_ttl": queue.lease_ttl,
                **counts,
            }
            payload["shards"] = queue.shard_states()
        if campaign_id in self._errors:
            payload["error"] = self._errors[campaign_id]
        return payload

    def submit(self, spec: CampaignSpec, execution: str = "local") -> dict:
        """Start (or attach to) the campaign for ``spec``.

        ``execution="local"`` runs it on this host (PR 7 behaviour);
        ``execution="fleet"`` decomposes it into shard-grain work items
        and waits for pulling workers.  Submission stays idempotent
        either way — resubmitting a known spec attaches to the existing
        campaign regardless of the execution mode requested.
        """
        if execution not in ("local", "fleet"):
            raise HttpError(
                400, f"execution must be 'local' or 'fleet', got "
                f"{execution!r}"
            )
        campaign_id = spec.fingerprint()
        state = self._states.get(campaign_id)
        if state in ("queued", "running", "fleet", "done"):
            return self.status(campaign_id)
        directory = self.campaign_dir(campaign_id)
        if (directory / AGGREGATE_FILENAME).exists():
            self._set_state(campaign_id, "done")
            return self.status(campaign_id)
        if execution == "fleet":
            self._open_queue(campaign_id, spec)
        else:
            self._launch(campaign_id, spec)
        return self.status(campaign_id)

    def _open_queue(self, campaign_id: str, spec: CampaignSpec) -> None:
        """Create (or reopen) the shard queue of a fleet campaign."""
        queue = CampaignQueue(
            spec,
            self.campaign_dir(campaign_id),
            shards=self._fleet_shards(spec),
            lease_ttl=self.lease_ttl,
            steal_enabled=self.steal_enabled,
        )
        self._queues[campaign_id] = queue
        self._errors.pop(campaign_id, None)
        if queue.done:
            # Every shard already committed (e.g. killed between the
            # last commit and aggregation): finalize immediately.
            queue.finalize()
            self._set_state(campaign_id, "done")
        else:
            self._set_state(campaign_id, "fleet")

    def _launch(self, campaign_id: str, spec: CampaignSpec) -> None:
        self._set_state(campaign_id, "queued")
        self._errors.pop(campaign_id, None)
        self._tasks[campaign_id] = asyncio.get_running_loop().create_task(
            self._run(campaign_id, spec)
        )

    async def _run(self, campaign_id: str, spec: CampaignSpec) -> None:
        from repro.campaign.runner import run_campaign

        self._set_state(campaign_id, "running")
        try:
            await asyncio.to_thread(
                run_campaign,
                spec,
                self.campaign_dir(campaign_id),
                shards=self.shards,
                jobs=self.jobs,
                cache_dir=self.cache_dir,
                batch_mode=self.batch_mode,
                wearer_cache_dir=str(self.wearer_cache.directory),
            )
        except Exception as exc:  # surfaced via GET status, not lost
            self._set_state(
                campaign_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
        else:
            self._set_state(campaign_id, "done")

    def recover(self) -> int:
        """Resume every interrupted campaign found under the root.

        Called at service start; each resumed campaign finishes through
        the journal-replay path to byte-identical artifacts.  Returns the
        number of campaigns resumed.
        """
        resumed = 0
        if not self.root.exists():
            return 0
        for entry in sorted(self.root.iterdir()):
            if not (entry / CAMPAIGN_MANIFEST_FILENAME).exists():
                continue
            if (entry / AGGREGATE_FILENAME).exists():
                self._states.setdefault(entry.name, "done")
                continue
            if self._states.get(entry.name) == "failed":
                # Remembered from the service journal: a failed campaign
                # stays failed (error and all) until explicitly
                # resubmitted — restarting the coordinator is not a retry.
                continue
            try:
                manifest = load_campaign_manifest(entry)
                spec = CampaignSpec.from_dict(manifest["spec"])
            except (JournalError, KeyError, ValueError) as exc:
                self._set_state(
                    entry.name, "failed",
                    error=f"unrecoverable manifest: {exc}",
                )
                continue
            if (entry / QUEUE_LOG_FILENAME).exists():
                # Fleet campaign: rebuild the queue from its lease/commit
                # log.  Committed shards stay committed, in-flight leases
                # keep their original expiry (and are reassigned once it
                # lapses) — the coordinator must never re-run shards
                # locally behind its workers' backs.
                try:
                    self._open_queue(entry.name, spec)
                except (JournalError, QueueError, OSError, ValueError) as exc:
                    self._set_state(
                        entry.name, "failed",
                        error=f"unrecoverable queue log: {exc}",
                    )
                    continue
            else:
                self._launch(entry.name, spec)
            resumed += 1
        return resumed

    # -- HTTP layer --------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[asyncio.base_events.Server, int]:
        """Bind, recover interrupted campaigns, and begin serving.
        Returns ``(server, bound_port)`` — pass ``port=0`` for an
        ephemeral port (the test suite's socket-flakiness guard)."""
        self.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()[1]
        return self._server, bound

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for queue in self._queues.values():
            queue.close()
        self._journal.close()

    async def join(self) -> None:
        """Wait for every launched campaign task to settle (test helper)."""
        tasks = [t for t in self._tasks.values() if not t.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = True
            while True:
                try:
                    # One slow or silent client must not pin this handler:
                    # the whole request read shares a single deadline.
                    try:
                        method, path, body, want_close = (
                            await asyncio.wait_for(
                                self._read_request(reader),
                                self.read_timeout,
                            )
                        )
                    except asyncio.TimeoutError:
                        if not first:
                            # An idle keep-alive connection simply aged
                            # out; hanging up is the answer, not 408.
                            break
                        raise HttpError(
                            408,
                            f"request not received within "
                            f"{self.read_timeout}s",
                        ) from None
                except _ConnectionClosed:
                    break
                except HttpError as exc:
                    # The byte stream is in an unknown state after a
                    # failed read: answer what we can, then hang up.
                    await self._respond(
                        writer, exc.status, {"error": exc.message},
                        keep_alive=False,
                    )
                    break
                keep_alive = not want_close
                try:
                    status, payload = self._route(method, path, body)
                except HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                except Exception as exc:  # never let a request kill us
                    status, payload = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
                await self._respond(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
                first = False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes, bool]:
        raw = await reader.readline()
        if not raw:
            raise _ConnectionClosed()
        request_line = raw.decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        # HTTP/1.1 defaults to keep-alive, anything older to close; the
        # Connection header overrides either way.
        want_close = parts[2] != "HTTP/1.1"
        content_length = 0
        while True:
            try:
                line = (await reader.readline()).decode("latin-1")
            except ValueError:
                # StreamReader refuses header lines past its buffer
                # limit — an oversized/garbage header, not our bug.
                raise HttpError(400, "header line too long") from None
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length") from None
            elif name == "connection":
                token = value.strip().lower()
                if token == "close":
                    want_close = True
                elif token == "keep-alive":
                    want_close = False
        if content_length > MAX_BODY_BYTES:
            # Refused before buffering a byte of it: the declared size
            # alone disqualifies the request.
            raise HttpError(
                413,
                f"request body of {content_length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body, want_close

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = False,
    ) -> None:
        body = (
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        ).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    def _route(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        path = path.split("?", 1)[0]
        segments = [s for s in path.split("/") if s]
        if segments == ["healthz"]:
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return 200, {"ok": True, "campaigns": len(self.known_ids())}
        if len(segments) == 3 and segments[:2] == ["cache", "wearers"]:
            if method == "GET":
                return self._get_wearer_cache(segments[2])
            if method == "PUT":
                return self._put_wearer_cache(segments[2], body)
            raise HttpError(405, f"{method} not allowed on {path!r}")
        if segments == ["fabric", "sync"]:
            if method != "POST":
                raise HttpError(405, "fabric sync is POST-only")
            return self._post_sync(body)
        if not segments or segments[0] != "campaigns":
            raise HttpError(404, f"no route for {path!r}")
        if len(segments) == 1:
            if method == "POST":
                return self._post_campaign(body)
            if method == "GET":
                return 200, {
                    "campaigns": [self.status(cid) for cid in self.known_ids()]
                }
            raise HttpError(405, f"{method} not allowed on /campaigns")
        campaign_id = segments[1]
        # -- fabric surface (POST: leases, heartbeats, commits) ----------------
        if method == "POST":
            if len(segments) == 3 and segments[2] == "leases":
                return self._post_lease(campaign_id, body)
            if (
                len(segments) == 5
                and segments[2] == "leases"
                and segments[4] in ("heartbeat", "release")
            ):
                return self._post_lease_action(
                    campaign_id, segments[3], segments[4], body
                )
            if len(segments) == 5 and (
                segments[2] == "shards" and segments[4] == "complete"
            ):
                return self._post_complete(campaign_id, segments[3], body)
            raise HttpError(405, f"POST not allowed on {path!r}")
        if method != "GET":
            raise HttpError(405, f"{method} not allowed on {path!r}")
        if len(segments) == 2:
            return 200, self.status(campaign_id)
        if len(segments) == 3 and segments[2] == "status":
            return 200, self.status(campaign_id)
        if len(segments) == 3 and segments[2] == "result":
            return self._get_result(campaign_id)
        if len(segments) == 4 and segments[2] == "artifacts":
            return self._get_artifact(campaign_id, segments[3])
        raise HttpError(404, f"no route for {path!r}")

    def _json_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload

    def _post_campaign(self, body: bytes) -> Tuple[int, dict]:
        payload = self._json_body(body)
        execution = str(payload.pop("execution", "local"))
        try:
            spec = CampaignSpec.from_dict(payload.get("spec", payload))
        except ValueError as exc:
            raise HttpError(400, f"bad campaign spec: {exc}") from None
        status = self.submit(spec, execution=execution)
        return (200 if status["state"] == "done" else 202), status

    # -- fabric handlers ---------------------------------------------------------

    def _queue_for(self, campaign_id: str) -> CampaignQueue:
        self.status(campaign_id)  # 404 on unknown campaigns
        queue = self._queues.get(campaign_id)
        if queue is None:
            raise HttpError(
                409,
                f"campaign {campaign_id!r} is not fleet-executed (no "
                "shard queue); submit it with execution='fleet'",
            )
        return queue

    def _post_lease(self, campaign_id: str, body: bytes) -> Tuple[int, dict]:
        payload = self._json_body(body) if body else {}
        worker = str(payload.get("worker") or "anonymous")
        queue = self._queue_for(campaign_id)
        try:
            lease = queue.acquire(worker)
        except QueueError as exc:
            raise HttpError(exc.status, exc.message) from None
        return 200, {"lease": lease, "queue": queue.counts()}

    def _post_lease_action(
        self, campaign_id: str, token: str, action: str, body: bytes
    ) -> Tuple[int, dict]:
        queue = self._queue_for(campaign_id)
        try:
            if action == "heartbeat":
                return 200, queue.heartbeat(token)
            payload = self._json_body(body) if body else {}
            reason = str(payload.get("reason") or "released")
            return 200, queue.release(token, reason=reason)
        except QueueError as exc:
            raise HttpError(exc.status, exc.message) from None

    def _post_complete(
        self, campaign_id: str, shard_text: str, body: bytes
    ) -> Tuple[int, dict]:
        try:
            shard = int(shard_text)
        except ValueError:
            raise HttpError(400, f"bad shard index {shard_text!r}") from None
        payload = self._json_body(body)
        summaries = payload.get("summaries")
        if not isinstance(summaries, dict):
            raise HttpError(400, "commit needs a 'summaries' object")
        queue = self._queue_for(campaign_id)
        try:
            outcome = queue.commit(
                shard,
                summaries,
                crc=str(payload.get("crc") or ""),
                worker=str(payload.get("worker") or "anonymous"),
                token=payload.get("token"),
            )
        except QueueError as exc:
            raise HttpError(exc.status, exc.message) from None
        # Feed the cross-campaign cache: every summary that just landed
        # is now a download for any other campaign naming this wearer.
        self._ingest_summaries(queue, summaries)
        if queue.done and self._states.get(campaign_id) != "done":
            # The last shard just landed: aggregation triggers exactly
            # here, and the artifacts are byte-identical to a single-host
            # run because they are built from the same summary bytes.
            queue.finalize()
            self._set_state(campaign_id, "done")
        outcome["campaign_state"] = self._states.get(campaign_id, "fleet")
        return 200, outcome

    def _ingest_summaries(
        self, queue: CampaignQueue, summaries: Dict[str, dict]
    ) -> None:
        """Fold freshly-committed summaries into the wearer cache.

        The queue has already CRC-validated these bytes against this
        campaign's shard; a divergence surfacing *here* means a different
        campaign cached other bytes for the same fingerprint.  The cache
        is first-writer-wins, so the commit still stands — but silently
        serving either version onward would be wrong, so it is counted
        and the entry left untouched for the operator to compare.
        """
        for wearer_id, summary in summaries.items():
            if not isinstance(summary, dict):
                continue
            try:
                wearer = queue.spec.wearer(str(wearer_id))
            except KeyError:
                continue
            fingerprint = wearer_fingerprint(queue.spec.preset, wearer)
            try:
                self.wearer_cache.put(fingerprint, summary)
            except WearerCacheDiverged:
                from repro.obs import runtime

                obs = runtime.get_active()
                if obs is not None:
                    obs.counter("cache.wearer_divergences").inc()

    # -- cross-campaign wearer cache ---------------------------------------------

    def _get_wearer_cache(self, fingerprint: str) -> Tuple[int, dict]:
        try:
            summary = self.wearer_cache.get(fingerprint)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        if summary is None:
            raise HttpError(
                404, f"no cached wearer result for {fingerprint!r}"
            )
        return 200, {
            "fingerprint": fingerprint,
            "summary": summary,
            "crc": summary_crc(summary),
        }

    def _put_wearer_cache(
        self, fingerprint: str, body: bytes
    ) -> Tuple[int, dict]:
        payload = self._json_body(body)
        summary = payload.get("summary")
        if not isinstance(summary, dict):
            raise HttpError(400, "cache put needs a 'summary' object")
        crc = str(payload.get("crc") or "")
        if not crc:
            raise HttpError(400, "cache put needs the summary 'crc'")
        if crc != summary_crc(summary):
            raise HttpError(
                400,
                f"summary bytes do not match declared crc {crc!r} — "
                "refusing to cache a corrupted upload",
            )
        try:
            stored = self.wearer_cache.put(fingerprint, summary)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        except WearerCacheDiverged as exc:
            raise HttpError(409, str(exc)) from None
        return 200, {"fingerprint": fingerprint, "stored": stored}

    # -- batched worker sync -----------------------------------------------------

    def _post_sync(self, body: bytes) -> Tuple[int, dict]:
        """One round-trip for a whole worker tick.

        Renews every lease the worker still holds (individually — one
        dead token must not poison the others), then optionally grants
        one new lease, round-robin across active fleet campaigns.  Every
        heartbeat entry carries its own ``status`` (200 or the
        :class:`QueueError` code, e.g. 410 once reassigned) so the
        worker can drop exactly the leases it lost.
        """
        payload = self._json_body(body)
        worker = str(payload.get("worker") or "anonymous")
        heartbeats = payload.get("heartbeats") or []
        if not isinstance(heartbeats, list):
            raise HttpError(400, "'heartbeats' must be a list")
        results: List[dict] = []
        for entry in heartbeats:
            if not isinstance(entry, dict):
                continue
            cid = str(entry.get("campaign") or "")
            token = str(entry.get("token") or "")
            result = {"campaign": cid, "token": token}
            queue = self._queues.get(cid)
            if queue is None:
                result.update(
                    status=410,
                    error=f"campaign {cid!r} has no active queue",
                )
            else:
                try:
                    outcome = queue.heartbeat(token)
                except QueueError as exc:
                    result.update(status=exc.status, error=exc.message)
                else:
                    result.update(outcome)
                    result["status"] = 200
            results.append(result)
        response: dict = {
            "worker": worker,
            "heartbeats": results,
            "campaign": None,
            "lease": None,
        }
        if payload.get("acquire", True):
            granted = self._grant_lease(worker)
            if granted is not None:
                response["campaign"], response["lease"] = granted
        return 200, response

    def _grant_lease(self, worker: str) -> Optional[Tuple[str, dict]]:
        """One lease from the active fleet campaigns, round-robin.

        The cursor advances past whichever campaign granted, so one big
        early campaign cannot starve later submissions.  Cached wearer
        summaries for the granted shard ride along under ``"cached"`` —
        the worker never makes a separate cache round-trip for work the
        coordinator already knew was warm.
        """
        active = [
            cid for cid in sorted(self._queues)
            if not self._queues[cid].done
        ]
        if not active:
            return None
        start = self._rr_cursor % len(active)
        for offset in range(len(active)):
            cid = active[(start + offset) % len(active)]
            queue = self._queues[cid]
            try:
                lease = queue.acquire(worker)
            except QueueError:
                continue
            if lease is None:
                continue
            self._rr_cursor = (start + offset + 1) % len(active)
            cached = self.wearer_cache.prefetch(
                queue.spec.preset, lease.get("wearers") or []
            )
            if cached:
                lease["cached"] = cached
            return cid, lease
        return None

    def _get_result(self, campaign_id: str) -> Tuple[int, dict]:
        status = self.status(campaign_id)
        path = self.campaign_dir(campaign_id) / AGGREGATE_FILENAME
        if not path.exists():
            raise HttpError(
                409,
                f"campaign {campaign_id!r} is {status['state']} "
                f"({status['wearers_done']}/{status['wearers_total']} "
                "wearers done); no aggregate yet",
            )
        with open(path, "r", encoding="utf-8") as fh:
            return 200, json.load(fh)

    def _get_artifact(
        self, campaign_id: str, name: str
    ) -> Tuple[int, dict]:
        self.status(campaign_id)  # 404 on unknown campaigns
        if name not in ARTIFACTS:
            raise HttpError(
                404, f"unknown artifact {name!r} (have {list(ARTIFACTS)})"
            )
        path = self.campaign_dir(campaign_id) / name
        if not path.exists():
            raise HttpError(409, f"artifact {name!r} not written yet")
        with open(path, "r", encoding="utf-8") as fh:
            return 200, json.load(fh)


async def _serve(service: CampaignService, host: str, port: int) -> None:
    server, bound = await service.start(host=host, port=port)
    print(
        f"hi-explore serve: campaigns root {service.root} on "
        f"http://{host}:{bound} (jobs={service.jobs})",
        flush=True,
    )
    async with server:
        await server.serve_forever()


def serve_forever(
    root,
    host: str = "127.0.0.1",
    port: int = 8732,
    jobs: int = 1,
    shards: Optional[int] = None,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    steal_enabled: bool = True,
) -> int:
    """Blocking entry point for ``hi-explore serve``."""
    service = CampaignService(
        root, jobs=jobs, shards=shards, cache_dir=cache_dir,
        batch_mode=batch_mode, lease_ttl=lease_ttl,
        steal_enabled=steal_enabled,
    )
    try:
        asyncio.run(_serve(service, host, port))
    except KeyboardInterrupt:
        print("hi-explore serve: interrupted, shutting down", flush=True)
    return 0
