"""Deterministic wearer→shard assignment.

The sharder is a *pure function* of ``(campaign fingerprint, wearer id,
shard count)`` — no RNG state, no process identity, no iteration order.
Consequences, each load-bearing for the campaign runtime:

* rerunning or resuming a campaign recomputes the identical layout, so a
  resumed run finds every wearer's journal exactly where the killed run
  left it;
* repartitioning the same campaign onto a different worker count moves
  wearers *between* shards but never changes the set of wearers (or any
  wearer's own run — seeds are per-wearer), so the union of per-wearer
  results, and therefore the aggregate report, is invariant to the shard
  count;
* two campaigns with different fingerprints scatter differently, so a
  pathological population cannot be crafted against one fixed layout.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.campaign.spec import CampaignSpec, WearerSpec


def shard_of(fingerprint: str, wearer_id: str, num_shards: int) -> int:
    """The shard index assigned to one wearer (stable across processes,
    platforms, and Python hash randomization)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    digest = hashlib.sha256(
        f"{fingerprint}:{wearer_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def shard_assignment(
    spec: "CampaignSpec", num_shards: int
) -> Dict[int, List["WearerSpec"]]:
    """Partition the campaign's wearers into ``num_shards`` shards.

    Every shard index in ``range(num_shards)`` is present (possibly
    empty), and wearers within a shard keep their spec order — both make
    the layout reproducible for manifests and resume checks.
    """
    fingerprint = spec.fingerprint()
    assignment: Dict[int, List["WearerSpec"]] = {
        index: [] for index in range(num_shards)
    }
    for wearer in spec.wearers:
        assignment[shard_of(fingerprint, wearer.wearer_id, num_shards)].append(
            wearer
        )
    return assignment


def shard_plan(spec: "CampaignSpec", num_shards: int) -> List[dict]:
    """The assignment as manifest-ready primitives (one dict per shard)."""
    return [
        {
            "index": index,
            "wearers": [w.wearer_id for w in wearers],
        }
        for index, wearers in sorted(shard_assignment(spec, num_shards).items())
    ]
