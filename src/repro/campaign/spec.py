"""Campaign specifications: a fingerprinted population of wearer designs.

A campaign is a *population* of per-wearer design problems built from the
same scenario machinery the single-run CLI uses
(:mod:`repro.experiments.scenario`): every wearer gets their own root seed
(distinct channel/fading realizations — the population stand-in until the
anthropometric body-model axis opens), a reliability bound, and either the
nominal (``solve``) or chance-constrained (``robust``) accept test with
its fault-ensemble knobs.

The spec is the campaign's *identity*: :meth:`CampaignSpec.fingerprint`
hashes every result-relevant field (and nothing execution-related), and
that fingerprint pins the campaign directory's manifests, the shard
assignment (:mod:`repro.campaign.shard`), and the resume check — a
campaign directory can only ever be continued by the spec that created it.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

#: Bumped when the spec schema changes incompatibly.
SPEC_VERSION = 1

#: Wearer accept-test modes.
MODES = ("solve", "robust")


@dataclass(frozen=True)
class WearerSpec:
    """One wearer's design problem within a campaign.

    ``seed`` feeds :func:`repro.experiments.scenario.make_problem` exactly
    like the single-run CLI's ``--seed``; the robustness knobs mirror the
    ``robust`` subcommand and are ignored in ``solve`` mode.
    """

    wearer_id: str
    seed: int
    pdr_min: float
    cohort: str = "default"
    mode: str = "solve"
    # -- robust-mode knobs (mirror `hi-explore robust`) ------------------------
    quantile: float = 0.0
    ensemble_size: int = 2
    hub_stress: bool = True
    outage_fraction: float = 0.2
    fault_seed: Optional[int] = None
    correlated_links: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"wearer {self.wearer_id!r}: mode must be one of {MODES}, "
                f"got {self.mode!r}"
            )
        if not 0.0 < self.pdr_min <= 1.0:
            raise ValueError(
                f"wearer {self.wearer_id!r}: pdr_min must be a fraction in "
                f"(0, 1], got {self.pdr_min}"
            )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "WearerSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown wearer fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class CampaignSpec:
    """A named population of wearers under one measurement preset.

    Everything here is result-relevant and enters the fingerprint;
    execution knobs (worker count, shard count, cache directory, batch
    mode) live on the runner call instead, so the same campaign can be
    re-executed under any parallelism and still resume/aggregate
    byte-identically.
    """

    name: str
    preset: str
    wearers: Tuple[WearerSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "wearers", tuple(self.wearers))
        if not self.wearers:
            raise ValueError("a campaign needs at least one wearer")
        ids = [w.wearer_id for w in self.wearers]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate wearer ids: {dupes}")

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "preset": self.preset,
            "wearers": [w.to_dict() for w in self.wearers],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        if not isinstance(payload, dict):
            raise ValueError("campaign spec must be a JSON object")
        version = payload.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"campaign spec version {version} is not {SPEC_VERSION}"
            )
        wearers = payload.get("wearers")
        if not isinstance(wearers, list) or not wearers:
            raise ValueError("campaign spec needs a non-empty wearers list")
        return cls(
            name=str(payload.get("name", "fleet")),
            preset=str(payload.get("preset", "ci")),
            wearers=tuple(WearerSpec.from_dict(w) for w in wearers),
        )

    @classmethod
    def load(cls, path) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    def fingerprint(self) -> str:
        """Stable hex digest of every result-relevant campaign field."""
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def wearer(self, wearer_id: str) -> WearerSpec:
        for w in self.wearers:
            if w.wearer_id == wearer_id:
                return w
        raise KeyError(f"no wearer {wearer_id!r} in campaign {self.name!r}")

    @property
    def cohorts(self) -> List[str]:
        """Distinct cohort labels, in first-appearance order."""
        seen: Dict[str, None] = {}
        for w in self.wearers:
            seen.setdefault(w.cohort, None)
        return list(seen)


def _cohort_label(pdr_min: float) -> str:
    return f"pdr{100 * pdr_min:g}"


def make_population(
    size: int,
    preset: str = "ci",
    base_seed: int = 0,
    pdr_bounds: Sequence[float] = (0.90,),
    mode: str = "solve",
    name: str = "fleet",
    quantile: float = 0.0,
    ensemble_size: int = 2,
    hub_stress: bool = True,
    outage_fraction: float = 0.2,
    correlated_links: bool = False,
) -> CampaignSpec:
    """Build a synthetic wearer population.

    Wearer ``i`` gets seed ``base_seed + i`` (disjoint channel
    realizations) and cycles through ``pdr_bounds``; each bound forms one
    cohort (``pdr90``, ``pdr95``, …) so the aggregator can report a
    Pareto atlas per reliability class.  Bounds given in percent
    (``90``) are normalized to fractions like the CLI's ``--pdr-min``.
    """
    if size < 1:
        raise ValueError("population size must be >= 1")
    bounds = [p / 100.0 if p > 1 else float(p) for p in pdr_bounds]
    if not bounds:
        raise ValueError("need at least one PDR bound")
    wearers = []
    for i in range(size):
        pdr_min = bounds[i % len(bounds)]
        wearers.append(
            WearerSpec(
                wearer_id=f"w{i:03d}",
                seed=base_seed + i,
                pdr_min=pdr_min,
                cohort=_cohort_label(pdr_min),
                mode=mode,
                quantile=quantile,
                ensemble_size=ensemble_size,
                hub_stress=hub_stress,
                outage_fraction=outage_fraction,
                correlated_links=correlated_links,
            )
        )
    return CampaignSpec(name=name, preset=preset, wearers=tuple(wearers))
