"""Cross-campaign wearer-result cache (content-addressed summaries).

A wearer run is a pure function of its *result-relevant* inputs — the
measurement preset plus the :class:`~repro.campaign.spec.WearerSpec`
fields that steer the exploration trajectory.  ``wearer_id`` and
``cohort`` are labels (they appear nowhere in the summary bytes, which
``tests/test_wearer_cache.py`` pins), and the robust-mode knobs are
ignored by ``solve``-mode runs, so :func:`wearer_fingerprint` hashes
exactly the influencing fields and nothing else.  Consequence: two
campaigns that describe the same wearer under different names — the
overwhelmingly common case across robustness studies, which re-sweep
overlapping populations — share one cache entry, and the second campaign
is a download, not a simulation.

The store itself is one file per fingerprint
(``<dir>/<fingerprint>.json``) holding the wearer's *deterministic
summary projection* (:func:`repro.core.journal.summary_projection` — the
exact bytes ``summary.json`` carries) inside the self-healing CRC
envelope from :mod:`repro.core.result_cache`.  Damage handling mirrors
the simulation cache: a file that fails to parse or fails its CRC is
moved to a ``.quarantine`` sidecar and treated as a miss, never trusted
and never fatal.  Writes are first-writer-wins and idempotent; a
*divergent* write for the same fingerprint is a determinism violation
and raises loudly (:class:`WearerCacheDiverged`) instead of silently
replacing bytes other campaigns may already have aggregated.

Both ends of the fabric hold one of these: the coordinator under
``<root>/wearer_cache/`` (fed by shard commits, served over
``GET/PUT /cache/wearers/<fingerprint>``), each worker under its own
local directory (consulted before any simulation, seeded by coordinator
prefetches riding on lease responses).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional

from repro.campaign.spec import WearerSpec
from repro.core.journal import summary_projection
from repro.core.result_cache import open_envelope, seal_envelope

#: Version stamp of the on-disk envelope; bump on incompatible change.
WEARER_CACHE_VERSION = 1

#: Conventional directory name for a wearer cache next to campaign state.
WEARER_CACHE_DIRNAME = "wearer_cache"

#: LRU index filename inside a cache directory (atomic tmp+replace).
INDEX_FILENAME = "index.json"


class WearerCacheDiverged(RuntimeError):
    """Two executions produced different bytes for one fingerprint —
    an integrity violation (determinism bug), never a benign race."""


def wearer_fingerprint(preset: str, wearer: WearerSpec) -> str:
    """Stable hex digest of everything a wearer's summary depends on.

    Excluded on purpose: ``wearer_id`` and ``cohort`` (labels only — the
    summary bytes do not contain them), and in ``solve`` mode every
    robust-ensemble knob (the nominal accept test never reads them).  A
    ``fault_seed`` of ``None`` normalizes to the wearer seed, matching
    the runner's ensemble construction, so the spelled-out and defaulted
    forms of the same ensemble share one entry.
    """
    payload = {
        "preset": str(preset),
        "seed": wearer.seed,
        "pdr_min": wearer.pdr_min,
        "mode": wearer.mode,
    }
    if wearer.mode == "robust":
        payload.update(
            quantile=wearer.quantile,
            ensemble_size=wearer.ensemble_size,
            hub_stress=wearer.hub_stress,
            outage_fraction=wearer.outage_fraction,
            fault_seed=(
                wearer.fault_seed
                if wearer.fault_seed is not None
                else wearer.seed
            ),
            correlated_links=wearer.correlated_links,
        )
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def summary_crc(summary: dict) -> str:
    """Content CRC of a cached summary (validated on both wire ends)."""
    from repro.core.result_cache import envelope_crc

    return envelope_crc(summary_projection(summary))


def _count(name: str, amount: int = 1) -> None:
    from repro.obs import runtime

    obs = runtime.get_active()
    if obs is not None:
        obs.counter(name).inc(amount)


def _event(kind: str, **fields) -> None:
    from repro.obs import runtime

    obs = runtime.get_active()
    if obs is not None:
        obs.event(kind, **fields)


class WearerResultCache:
    """One directory of CRC-enveloped wearer summaries, fingerprint-keyed.

    Files are written atomically (temp + ``os.replace``) so a concurrent
    reader never observes a torn entry, and reads quarantine damage
    instead of raising — the cache may always be treated as advisory.

    ``max_bytes`` / ``max_entries`` bound the store (both default to
    unbounded, the pre-PR-10 behaviour).  Recency lives in an on-disk
    LRU index (``index.json``, atomic tmp+replace) mapping fingerprint →
    ``{"bytes", "seq"}`` with a monotonically increasing touch sequence;
    ``put`` evicts least-recently-used entries until the caps hold
    again, never the entry just written — the caps are therefore
    approximate to within one entry, which keeps a single oversized
    summary storable.  A missing or corrupt index is rebuilt from a
    directory scan ordered by mtime, so the index is never a correctness
    dependency: losing it only loses recency ordering.  An eviction is a
    plain ``unlink`` — a concurrent reader that already leased against
    the entry sees a clean miss (404 on the wire) and re-simulates,
    which the determinism contract guarantees reproduces identical
    bytes.
    """

    def __init__(
        self,
        directory,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.max_bytes = max_bytes if max_bytes and max_bytes > 0 else None
        self.max_entries = (
            max_entries if max_entries and max_entries > 0 else None
        )
        self._index: Optional[dict] = None  # loaded lazily

    # -- LRU index ---------------------------------------------------------------

    @property
    def index_path(self) -> pathlib.Path:
        return self.directory / INDEX_FILENAME

    def _scan_index(self) -> dict:
        """Rebuild the index from the directory, oldest-mtime first (so
        pre-index entries get the lowest recency and evict first)."""
        entries: Dict[str, dict] = {}
        seq = 0
        if self.directory.exists():
            found = []
            for path in self.directory.iterdir():
                if path.suffix != ".json" or path.name == INDEX_FILENAME:
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append((stat.st_mtime, path.stem, stat.st_size))
            for _, fingerprint, size in sorted(found):
                seq += 1
                entries[fingerprint] = {"bytes": size, "seq": seq}
        return {"next_seq": seq + 1, "entries": entries}

    def _load_index(self) -> dict:
        if self._index is not None:
            return self._index
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
            entries = {
                str(fp): {
                    "bytes": int(rec["bytes"]),
                    "seq": int(rec["seq"]),
                }
                for fp, rec in raw["entries"].items()
            }
            self._index = {
                "next_seq": int(raw["next_seq"]),
                "entries": entries,
            }
        except (OSError, ValueError, KeyError, TypeError):
            self._index = self._scan_index()
        return self._index

    def _save_index(self) -> None:
        if self._index is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._index, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.index_path)

    def _touch(self, fingerprint: str, size: Optional[int] = None) -> None:
        """Mark ``fingerprint`` most-recently-used (in memory; persisted
        by the next ``put`` — recency is advisory, losing it is safe)."""
        index = self._load_index()
        record = index["entries"].get(fingerprint)
        if record is None:
            if size is None:
                try:
                    size = self.path_for(fingerprint).stat().st_size
                except OSError:
                    return
            record = {"bytes": size, "seq": 0}
            index["entries"][fingerprint] = record
        elif size is not None:
            record["bytes"] = size
        record["seq"] = index["next_seq"]
        index["next_seq"] += 1

    def _drop(self, fingerprint: str) -> None:
        index = self._load_index()
        index["entries"].pop(fingerprint, None)

    def total_bytes(self) -> int:
        index = self._load_index()
        return sum(rec["bytes"] for rec in index["entries"].values())

    def _evict_over_caps(self, protect: str) -> int:
        """Delete least-recently-used entries until the caps hold,
        never touching ``protect`` (the entry just written)."""
        index = self._load_index()
        evicted = 0
        while True:
            entries = index["entries"]
            over_entries = (
                self.max_entries is not None
                and len(entries) > self.max_entries
            )
            over_bytes = (
                self.max_bytes is not None
                and sum(r["bytes"] for r in entries.values()) > self.max_bytes
            )
            if not (over_entries or over_bytes):
                break
            victims = [fp for fp in entries if fp != protect]
            if not victims:
                break
            victim = min(victims, key=lambda fp: entries[fp]["seq"])
            try:
                os.unlink(self.path_for(victim))
            except OSError:
                pass
            del entries[victim]
            evicted += 1
            _count("cache.wearer_evictions")
            _event(
                "cache.wearer",
                action="evict",
                fingerprint=victim,
                entries=len(entries),
            )
        return evicted

    def path_for(self, fingerprint: str) -> pathlib.Path:
        if not fingerprint or not all(
            c in "0123456789abcdef" for c in fingerprint
        ):
            raise ValueError(f"bad wearer fingerprint {fingerprint!r}")
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached summary for ``fingerprint``, or None.

        A damaged entry (unparseable, wrong version, CRC failure) is
        moved aside to ``<entry>.quarantine`` and reported as a miss, so
        one flipped bit costs a re-simulation, never a wrong result.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except FileNotFoundError:
            self._drop(fingerprint)
            return None
        try:
            summary = open_envelope(
                text, WEARER_CACHE_VERSION, key="summary"
            )
        except Exception:
            quarantine = path.with_suffix(path.suffix + ".quarantine")
            try:
                os.replace(path, quarantine)
            except OSError:
                pass
            self._drop(fingerprint)
            _count("cache.wearer_quarantined")
            return None
        self._touch(fingerprint, size=len(text.encode("utf-8")))
        return summary

    def put(self, fingerprint: str, summary: dict) -> bool:
        """Store a summary (first-writer-wins; True when newly written).

        The stored bytes are the deterministic projection — identical to
        what ``write_summary`` puts in ``summary.json`` — so a cache hit
        replayed into a run directory is byte-identical to a fresh run.
        A divergent repeat raises :class:`WearerCacheDiverged`.
        """
        projected = summary_projection(summary)
        existing = self.get(fingerprint)
        if existing is not None:
            if existing == projected:
                return False
            raise WearerCacheDiverged(
                f"wearer cache entry {fingerprint} already holds different "
                "bytes — two executions of the same wearer disagreed"
            )
        path = self.path_for(fingerprint)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        blob = (
            seal_envelope(projected, WEARER_CACHE_VERSION, key="summary")
            + "\n"
        )
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _count("cache.wearer_stores")
        self._touch(fingerprint, size=len(blob.encode("utf-8")))
        self._evict_over_caps(protect=fingerprint)
        self._save_index()
        return True

    def prefetch(
        self, preset: str, wearers
    ) -> Dict[str, dict]:
        """wearer_id → cached summary for every hit among ``wearers``
        (the coordinator's lease-response piggyback)."""
        out: Dict[str, dict] = {}
        for wearer in wearers:
            if isinstance(wearer, dict):
                wearer = WearerSpec.from_dict(wearer)
            summary = self.get(wearer_fingerprint(preset, wearer))
            if summary is not None:
                out[wearer.wearer_id] = summary
        return out

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(
            1
            for p in self.directory.iterdir()
            if p.suffix == ".json"
            and p.name != INDEX_FILENAME
            and not p.name.endswith(".tmp")
        )

    def __repr__(self) -> str:
        return f"WearerResultCache({str(self.directory)!r})"
