"""Worker agent: turn any host into simulation capacity for the fabric.

``hi-explore worker --coordinator URL --workdir DIR`` runs a pull→run→
commit loop against the campaign coordinator's lease endpoints
(:mod:`repro.campaign.queue` via :mod:`repro.campaign.service`):

1. **pull** — one ``POST /fabric/sync`` round-trip both renews any held
   lease and acquires new work (the coordinator hands out shards
   round-robin across active campaigns, with cached wearer summaries
   prefetched onto the lease payload);
2. **run** — execute the leased shard's wearers through the *same*
   :func:`repro.campaign.runner.run_wearer_task` the single-host runner
   uses, journaled under ``<workdir>/<campaign>/shards/shard-NN/`` — so
   a worker that inherits a dead worker's shard (same workdir, e.g. a
   shared scratch mount or a localhost fleet) resumes each wearer from
   its PR 5 journal and pays only the uncommitted tail, never a full
   re-simulation.  Before simulating, each wearer is looked up in the
   cross-campaign wearer cache (coordinator prefetch first, then the
   worker's local store) — a hit is a file write, not a simulation.  A
   background thread heartbeats the lease the whole time, and on a
   *split* shard the heartbeat response names the wearers thieves have
   taken, which the run loop then skips;
3. **commit** — upload the per-wearer summaries with a content CRC.
   Commits are idempotent on the coordinator, so losing the lease
   mid-run is harmless: the worker still commits what it computed, and
   whichever execution lands first wins (the bytes are identical by
   determinism).  On a split shard any subset commits cleanly.

All coordinator traffic rides **one persistent keep-alive connection**
(:class:`CoordinatorClient` reconnects transparently when the server
ages an idle socket out), so a worker tick costs one round-trip, not
one TCP handshake per request.

The loop retries with capped exponential backoff whenever the
coordinator is unreachable, and drains gracefully on SIGTERM/SIGINT:
the first signal lets the current shard finish and commit, the second
releases the lease and exits immediately.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import random
import signal
import socket
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Tuple

from repro.campaign.auth import FabricAuth, resolve_secret
from repro.campaign.queue import shard_payload_crc

#: Worker-side ceiling on coordinator silence: after this many failed
#: RPC attempts in a row the current operation is abandoned (the lease
#: will expire server-side and the shard is reassigned; journals remain).
MAX_RPC_ATTEMPTS = 8


class CoordinatorUnavailable(ConnectionError):
    """The coordinator could not be reached (retry with backoff)."""


class CommitDiverged(RuntimeError):
    """The coordinator refused our commit as divergent — a determinism
    violation that must be loud, never retried into oblivion."""


class CoordinatorClient:
    """Stdlib JSON-over-HTTP client on one persistent keep-alive
    connection.

    The connection opens lazily, is shared by every request (a lock
    serializes the heartbeat thread against the main loop — HTTP/1.1
    without pipelining is strictly one exchange at a time), and is
    re-opened transparently exactly once when a request fails on what
    is most likely a socket the server idled out.  That single retry is
    safe because the whole fabric protocol is idempotent: a heartbeat
    renews, a commit first-writer-wins, and an acquire whose response
    was lost leaves a lease that simply expires and is reassigned.

    ``requests`` / ``connections_opened`` counters make the savings
    measurable (``bench fleet`` asserts opened ≪ requests).

    ``base_url`` may be a **comma-separated ordered list** of
    coordinators (primary first, standbys after) — a transport failure
    walks the list one endpoint at a time before giving up, and
    :meth:`rotate` lets the agent advance deliberately when a
    coordinator answers "I am fenced/standby".  With ``auth`` set,
    every request (and every retry, with a fresh nonce — a response
    lost in flight must not burn the retry's nonce) carries the HMAC
    signature headers from :mod:`repro.campaign.auth`.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        auth: Optional[FabricAuth] = None,
    ) -> None:
        self.endpoints: List[Tuple[str, int]] = []
        for url in str(base_url).split(","):
            url = url.strip()
            if not url:
                continue
            parsed = urllib.parse.urlsplit(url)
            if parsed.scheme not in ("http", ""):
                raise ValueError(
                    f"coordinator URL must be http://, got {url!r}"
                )
            netloc = parsed.netloc or parsed.path
            host, _, port = netloc.partition(":")
            self.endpoints.append(
                (host or "127.0.0.1", int(port) if port else 80)
            )
        if not self.endpoints:
            raise ValueError(f"no coordinator in {base_url!r}")
        self.timeout = timeout
        self.auth = auth
        self.requests = 0
        self.connections_opened = 0
        self.rotations = 0
        self._active = 0
        self._conn: Optional[http.client.HTTPConnection] = None
        self._lock = threading.Lock()

    @property
    def host(self) -> str:
        return self.endpoints[self._active][0]

    @property
    def port(self) -> int:
        return self.endpoints[self._active][1]

    def rotate(self) -> None:
        """Advance to the next coordinator in the ordered list (no-op
        with a single endpoint)."""
        with self._lock:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        if len(self.endpoints) > 1:
            self._drop_connection()
            self._active = (self._active + 1) % len(self.endpoints)
            self.rotations += 1

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self.connections_opened += 1
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _roundtrip(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, dict]:
        conn = self._connection()
        headers = {"Content-Type": "application/json"}
        if self.auth is not None:
            headers.update(self.auth.sign(method, path, body or b""))
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        if response.will_close:
            # The server asked to close (or spoke a pre-keep-alive
            # dialect): honor it so the next request starts clean.
            self._drop_connection()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
        return response.status, decoded

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        body = None if payload is None else json.dumps(payload).encode()
        errors = (
            ConnectionError,
            socket.timeout,
            http.client.HTTPException,
            OSError,
        )
        with self._lock:
            self.requests += 1
            try:
                return self._roundtrip(method, path, body)
            except errors:
                # A kept-alive socket the server quietly aged out fails
                # exactly like this; a fresh connection on the same
                # endpoint tells a stale socket apart from a coordinator
                # that is really gone — and a really-gone coordinator is
                # what the rest of the ordered list is for.  Every retry
                # is safe: the whole fabric protocol is idempotent.
                self._drop_connection()
                last: Optional[Exception] = None
                for _ in range(len(self.endpoints)):
                    try:
                        return self._roundtrip(method, path, body)
                    except errors as exc:
                        last = exc
                        self._drop_connection()
                        self._rotate_locked()
                raise CoordinatorUnavailable(
                    f"{method} {path}: {last}"
                ) from None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()


class WorkerAgent:
    """One pull→run→commit loop bound to a coordinator and a workdir."""

    def __init__(
        self,
        coordinator: str,
        workdir,
        name: Optional[str] = None,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        batch_mode: str = "auto",
        poll_interval: float = 1.0,
        backoff_base: float = 0.2,
        backoff_cap: float = 15.0,
        exit_idle: Optional[float] = None,
        client: Optional[CoordinatorClient] = None,
        wearer_cache_dir: Optional[str] = None,
        throttle_s: float = 0.0,
        fabric_secret: Optional[str] = None,
        rpc_timeout: float = 30.0,
    ) -> None:
        from repro.obs import runtime

        secret = resolve_secret(fabric_secret)
        self.auth = FabricAuth(secret) if secret else None
        self.client = client or CoordinatorClient(
            coordinator, timeout=rpc_timeout, auth=self.auth
        )
        self.workdir = pathlib.Path(workdir)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.jobs = max(1, int(jobs))
        self.cache_dir = cache_dir
        self.batch_mode = batch_mode
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.exit_idle = exit_idle
        #: Artificial delay after each wearer: models a slow or loaded
        #: host (the straggler the work-stealing path exists for) in
        #: benchmarks and tests without needing heterogeneous hardware.
        self.throttle_s = max(0.0, float(throttle_s))
        #: Local cross-campaign wearer-result store (consulted before any
        #: simulation, seeded by coordinator prefetches).
        self.wearer_cache_dir = pathlib.Path(
            wearer_cache_dir
            if wearer_cache_dir is not None
            else self.workdir / "wearer_cache"
        )
        self.obs = runtime.get_active()
        #: Backoff jitter source — deliberately NOT the global RNG (it
        #: must never perturb simulation determinism) and seeded per
        #: worker name so two workers' retry schedules decorrelate.
        self._rng = random.Random(f"{self.name}/backoff")
        self.shards_committed = 0
        self.wearers_run = 0
        self.wearers_resumed = 0
        self.wearers_skipped = 0
        self._draining = False
        self._stop_now = False
        self._lease_lost = threading.Event()
        #: Wearers of the *current* split shard that thieves own or have
        #: committed (fed by heartbeat responses, read by the run loop).
        self._stolen_wearers: set = set()
        self._stolen_lock = threading.Lock()

    # -- signals -----------------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """First SIGTERM/SIGINT: finish + commit the current shard, then
        exit.  Second: release the lease and exit immediately."""

        def _handler(signum, frame):
            if self._draining:
                self._stop_now = True
            else:
                self._draining = True
                self._log("drain requested: finishing current lease")

        try:
            signal.signal(signal.SIGTERM, _handler)
            signal.signal(signal.SIGINT, _handler)
        except ValueError:
            # Not the main thread (in-process agents in tests): signals
            # go to the host process; drain is driven programmatically.
            pass

    def _log(self, message: str) -> None:
        print(f"worker {self.name}: {message}", flush=True)

    # -- RPC with retry/backoff --------------------------------------------------

    def _next_delay(self, prev: float) -> float:
        """Decorrelated-jitter backoff: ``uniform(base, prev*3)`` capped.

        Plain doubling synchronizes a fleet — every worker that failed
        together retries together, which is exactly the thundering herd
        a recovering (or 429-saturated) coordinator cannot absorb.
        Decorrelating from a per-worker RNG spreads the retry instants
        while keeping the same expected growth.
        """
        return min(
            self.backoff_cap,
            self._rng.uniform(
                self.backoff_base, max(prev * 3, self.backoff_base)
            ),
        )

    def _rpc(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        attempts: int = MAX_RPC_ATTEMPTS,
    ) -> Tuple[int, dict]:
        """One coordinator call, retried through unavailability windows
        with capped decorrelated-jitter backoff.  Also absorbs the two
        fleet-level "not you, not now" answers: **429** (backpressure —
        honour the server's ``Retry-After`` plus jitter) and
        **503/fenced** (a standby or deposed coordinator — rotate to the
        next endpoint in the ordered list and retry).  Raises
        :class:`CoordinatorUnavailable` only after ``attempts`` failures
        in a row."""
        delay = self.backoff_base
        for attempt in range(attempts):
            last = attempt == attempts - 1 or self._stop_now
            try:
                status, response = self.client.request(
                    method, path, payload
                )
            except CoordinatorUnavailable as exc:
                if last:
                    raise
                self.obs.counter("worker.rpc_retries").inc()
                self._log(
                    f"coordinator unavailable ({exc}); retry in "
                    f"{delay:.1f}s"
                )
                time.sleep(delay)
                delay = self._next_delay(delay)
                continue
            if status == 429 and not last:
                # Saturated, not broken: wait what the coordinator asked
                # for, plus jitter so the fleet does not re-arrive as one
                # synchronized wave.
                retry_after = float(
                    response.get("retry_after") or self.backoff_base
                )
                delay = self._next_delay(delay)
                wait = retry_after + delay
                self.obs.counter("worker.backpressure_waits").inc()
                self._log(
                    f"coordinator saturated (429); backing off {wait:.1f}s"
                )
                time.sleep(wait)
                continue
            if (
                not last
                and (status == 503 or response.get("fenced"))
                and len(self.client.endpoints) > 1
            ):
                # A standby (503) or a deposed ex-primary (fenced 410):
                # the answer lives at another endpoint in the list.
                self.client.rotate()
                self.obs.counter("worker.failovers").inc()
                self._log(
                    f"coordinator refused ({status}: "
                    f"{response.get('error')}); failing over to "
                    f"http://{self.client.host}:{self.client.port}"
                )
                time.sleep(delay)
                delay = self._next_delay(delay)
                continue
            return status, response
        raise CoordinatorUnavailable(f"{method} {path}: attempts exhausted")

    # -- pull --------------------------------------------------------------------

    def _try_acquire(self) -> Optional[Tuple[str, dict]]:
        """One batched sync round-trip: any work anywhere → one lease."""
        status, payload = self._rpc(
            "POST", "/fabric/sync",
            {"worker": self.name, "acquire": True, "heartbeats": []},
        )
        if status != 200:
            return None
        lease = payload.get("lease")
        if not lease:
            return None
        campaign_id = str(payload.get("campaign") or lease.get("campaign"))
        return campaign_id, lease

    # -- run ---------------------------------------------------------------------

    def _heartbeat_loop(
        self, campaign_id: str, token: str, ttl: float,
        stop: threading.Event,
    ) -> None:
        interval = max(0.05, ttl / 3.0)
        while not stop.wait(interval):
            try:
                status, payload = self.client.request(
                    "POST", "/fabric/sync",
                    {
                        "worker": self.name,
                        "acquire": False,
                        "heartbeats": [
                            {"campaign": campaign_id, "token": token}
                        ],
                    },
                )
            except CoordinatorUnavailable:
                # Transient: the lease may still be alive; keep trying
                # until the run finishes or the TTL truly lapses.
                self.obs.counter("worker.heartbeat_misses").inc()
                continue
            if status != 200:
                self.obs.counter("worker.heartbeat_misses").inc()
                continue
            entries = payload.get("heartbeats") or [{}]
            entry = entries[0] if isinstance(entries[0], dict) else {}
            if entry.get("status") == 410:
                self._lease_lost.set()
                self.obs.counter("worker.leases_lost").inc()
                return
            stolen = entry.get("stolen")
            if stolen:
                # Thieves took (or finished) these wearers of our split
                # shard; the run loop skips whichever it has not started.
                with self._stolen_lock:
                    self._stolen_wearers.update(stolen)
            self.obs.counter("worker.heartbeats").inc()

    def _is_stolen(self, wearer_id: str) -> bool:
        with self._stolen_lock:
            return wearer_id in self._stolen_wearers

    def _shard_tasks(self, lease: dict) -> List[dict]:
        from repro.campaign.runner import wearer_run_dir

        campaign_root = self.workdir / lease["campaign"]
        if lease.get("sub"):
            # A stolen wearer must not share run directories with the
            # original holder (same-host fleets share workdirs, and a
            # journal is single-writer): thieves run in their own
            # namespace.  Byte-identity makes the duplicate dirs cheap.
            campaign_root = campaign_root / "steal" / self.name
        cached = lease.get("cached") or {}
        return [
            {
                "campaign": lease["campaign"],
                "preset": lease["preset"],
                "wearer": wearer,
                "run_dir": str(
                    wearer_run_dir(
                        campaign_root, lease["shard"], wearer["wearer_id"]
                    )
                ),
                "cache_dir": self.cache_dir,
                "batch_mode": self.batch_mode,
                "wearer_cache_dir": str(self.wearer_cache_dir),
                "cached_summary": cached.get(wearer["wearer_id"]),
            }
            for wearer in lease["wearers"]
        ]

    def _run_shard(self, campaign_id: str, lease: dict) -> bool:
        """Execute one leased shard (or stolen wearer) and commit it.
        Returns True when the commit landed (duplicates included)."""
        from repro.campaign.runner import run_wearer_task

        token = lease["token"]
        shard = lease["shard"]
        is_sub = bool(lease.get("sub"))
        self._lease_lost.clear()
        with self._stolen_lock:
            self._stolen_wearers = set()
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(campaign_id, token, float(lease["ttl"]), stop_heartbeat),
            daemon=True,
        )
        heartbeat.start()
        self.obs.event(
            "worker.lease", worker=self.name, campaign=campaign_id,
            shard=shard, wearers=len(lease["wearers"]),
            stolen=is_sub,
        )
        self._log(
            ("stole wearer "
             f"{lease['sub']} of shard {shard} of {campaign_id}")
            if is_sub
            else (
                f"leased shard {shard} of {campaign_id} "
                f"({len(lease['wearers'])} wearer(s))"
            )
        )
        skipped: List[str] = []
        try:
            tasks = self._shard_tasks(lease)
            results = []
            if self.jobs > 1 and len(tasks) > 1:
                # Pool path: tasks fan out up front, so mid-flight steal
                # notices cannot retract work already submitted — the
                # commit merge makes any overlap a benign duplicate.
                from repro.core.parallel import WorkerPool

                with WorkerPool(self.jobs) as pool:
                    results = pool.map_ordered(run_wearer_task, tasks)
            else:
                for task in tasks:
                    if self._stop_now:
                        self._release(campaign_id, token, "hard stop")
                        return False
                    wearer_id = task["wearer"]["wearer_id"]
                    if not is_sub and self._is_stolen(wearer_id):
                        skipped.append(wearer_id)
                        continue
                    results.append(run_wearer_task(task))
                    if self.throttle_s:
                        time.sleep(self.throttle_s)
        finally:
            stop_heartbeat.set()
            heartbeat.join(timeout=5.0)

        if skipped:
            self.wearers_skipped += len(skipped)
            self.obs.counter("worker.wearers_skipped").inc(len(skipped))
            self._log(
                f"skipped {len(skipped)} stolen wearer(s) of shard "
                f"{shard}: {skipped}"
            )
        resumed = sum(1 for r in results if r["state"] != "ran")
        self.wearers_run += len(results)
        self.wearers_resumed += resumed
        summaries: Dict[str, dict] = {
            r["wearer_id"]: r["summary"] for r in results
        }
        if not summaries:
            # Everything was stolen out from under us before we started
            # any of it: nothing to commit, just hand the lease back.
            self._release(campaign_id, token, "all wearers stolen")
            return False
        return self._commit(
            campaign_id, shard, token, summaries,
            resumed=resumed, is_sub=is_sub,
        )

    def _release(self, campaign_id: str, token: str, reason: str) -> None:
        try:
            self._rpc(
                "POST",
                f"/campaigns/{campaign_id}/leases/{token}/release",
                {"reason": reason},
                attempts=2,
            )
            self._log(f"released lease on {campaign_id} ({reason})")
        except CoordinatorUnavailable:
            pass  # the TTL reclaims it; nothing more a dying worker can do

    # -- commit ------------------------------------------------------------------

    def _commit(
        self, campaign_id: str, shard: int, token: str,
        summaries: Dict[str, dict], resumed: int = 0,
        is_sub: bool = False,
    ) -> bool:
        payload = {
            "worker": self.name,
            "token": token,
            "crc": shard_payload_crc(summaries),
            "summaries": summaries,
        }
        status, response = self._rpc(
            "POST", f"/campaigns/{campaign_id}/shards/{shard}/complete",
            payload,
        )
        if status == 409:
            raise CommitDiverged(
                f"coordinator refused shard {shard} of {campaign_id} as "
                f"divergent: {response.get('error')}"
            )
        if status != 200:
            self._log(
                f"commit of shard {shard} failed with {status}: "
                f"{response.get('error')} — lease will expire and the "
                "shard will be reassigned"
            )
            return False
        duplicate = bool(response.get("duplicate"))
        self.shards_committed += 1
        self.obs.counter("worker.commits").inc()
        self.obs.event(
            "worker.commit", worker=self.name, campaign=campaign_id,
            shard=shard, duplicate=duplicate,
            wearers=len(summaries), wearers_resumed=resumed,
            campaign_state=response.get("campaign_state"),
        )
        self._log(
            f"committed shard {shard} of {campaign_id}"
            + (" (duplicate: already committed — no-op)" if duplicate else "")
        )
        if response.get("state") == "split" and not is_sub:
            # We committed our remainder of a split shard while thieves
            # still hold wearers: our shard-level lease outlived its
            # usefulness — hand it back rather than letting it expire.
            # (A thief's sub-lease token is consumed by its own commit.)
            self._release(campaign_id, token, "remainder committed")
        return True

    # -- main loop ---------------------------------------------------------------

    def run_forever(self) -> int:
        """Pull→run→commit until drained (or idle past ``exit_idle``).
        Returns a process exit code."""
        self._log(
            f"pulling from http://{self.client.host}:{self.client.port} "
            f"into {self.workdir} (jobs={self.jobs})"
        )
        idle_since: Optional[float] = None
        while not self._draining and not self._stop_now:
            try:
                acquired = self._try_acquire()
            except CoordinatorUnavailable as exc:
                self._log(f"giving up on coordinator: {exc}")
                return 1
            if acquired is None:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (
                    self.exit_idle is not None
                    and now - idle_since >= self.exit_idle
                ):
                    self._log(
                        f"idle for {self.exit_idle:.1f}s with no work; "
                        "exiting"
                    )
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            campaign_id, lease = acquired
            try:
                self._run_shard(campaign_id, lease)
            except CommitDiverged:
                raise
            except CoordinatorUnavailable as exc:
                self._log(
                    f"lost the coordinator mid-shard ({exc}); journals "
                    "are on disk, the lease will expire and the shard "
                    "will be reassigned"
                )
                time.sleep(self.poll_interval)
        self._log(
            f"drained: {self.shards_committed} shard(s) committed, "
            f"{self.wearers_run} wearer(s) run "
            f"({self.wearers_resumed} resumed from journals, "
            f"{self.wearers_skipped} skipped as stolen); "
            f"{self.client.requests} RPC(s) over "
            f"{self.client.connections_opened} connection(s)"
        )
        self.client.close()
        return 0


def run_worker(
    coordinator: str,
    workdir,
    name: Optional[str] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
    poll_interval: float = 1.0,
    exit_idle: Optional[float] = None,
    wearer_cache_dir: Optional[str] = None,
    fabric_secret: Optional[str] = None,
    rpc_timeout: float = 30.0,
) -> int:
    """Blocking entry point for ``hi-explore worker``."""
    agent = WorkerAgent(
        coordinator,
        workdir,
        name=name,
        jobs=jobs,
        cache_dir=cache_dir,
        batch_mode=batch_mode,
        poll_interval=poll_interval,
        exit_idle=exit_idle,
        wearer_cache_dir=wearer_cache_dir,
        fabric_secret=fabric_secret,
        rpc_timeout=rpc_timeout,
    )
    agent.install_signal_handlers()
    try:
        return agent.run_forever()
    except CommitDiverged as exc:
        print(f"worker {agent.name}: INTEGRITY ERROR: {exc}", flush=True)
        return 3
