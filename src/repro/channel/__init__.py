"""Wireless body-area channel models.

The paper's channel (Sec. 2.1.1, Eq. 1) is ``PL(i,j,t) = PL̄(i,j) + δPL(t)``
with the mean term taken from the NICTA on-body measurement dataset and the
temporal variation drawn from an empirically fitted conditional density.
Neither dataset ships with the paper, so this package provides the
documented synthetic substitute (see DESIGN.md):

* :mod:`repro.channel.body` — 3-D anthropometric coordinates of the ten
  candidate node locations and the geometric line-of-sight test;
* :mod:`repro.channel.pathloss` — a distance + around-torso shadowing mean
  path-loss law calibrated to published 2.4 GHz WBAN ranges;
* :mod:`repro.channel.fading` — a mean-reverting Ornstein-Uhlenbeck
  process in dB implementing exactly the conditional structure of Eq. 1
  (the density of δPL(t) depends on δPL(t-Δt) and Δt);
* :mod:`repro.channel.link` — the link-budget reception test
  (Tx dBm ≥ Rx sensitivity + PL(t)) used by the radio model.
"""

from repro.channel.body import BodyLocation, BodyModel, STANDARD_BODY
from repro.channel.pathloss import MeanPathLossModel, PathLossParameters
from repro.channel.fading import OrnsteinUhlenbeckFading, FadingParameters
from repro.channel.link import Channel, LinkBudget
from repro.channel.posture import (
    DAILY_ACTIVITY,
    Posture,
    PostureParameters,
    PostureProcess,
)

__all__ = [
    "BodyLocation",
    "BodyModel",
    "STANDARD_BODY",
    "MeanPathLossModel",
    "PathLossParameters",
    "OrnsteinUhlenbeckFading",
    "FadingParameters",
    "Channel",
    "LinkBudget",
    "Posture",
    "PostureParameters",
    "PostureProcess",
    "DAILY_ACTIVITY",
]
