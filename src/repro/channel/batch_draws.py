"""Shared raw-draw blocks: the batch kernel's structure-of-arrays RNG.

The scalar simulator draws from per-stream ``numpy.random.Generator``
objects one value at a time, paying a Generator method call per sample.
The batched kernel (:mod:`repro.core.batch`) evaluates many *lanes* —
fault worlds and TX-power variants — of the same ``(seed, replicate)``
pair, and every lane owns streams with identical names and therefore
identical seeding: lane i's k-th draw from stream s equals lane j's k-th
draw bit-for-bit.  A :class:`Block` materializes one stream's raw draw
sequence once, in vectorized chunks with amortized doubling, and each
lane indexes into it with a private cursor.

Bit-identity contract: numpy's ``Generator.standard_normal(size=n)``
consumes the underlying bit stream exactly as n successive scalar
``standard_normal()`` calls do (the array path repeats the same
per-value routine), and ``random(size=n)`` likewise; chained block
extensions therefore continue the same sequence scalar draws would have
produced.  The scalar consumers draw via ``normal(loc, scale)`` (which
numpy computes as ``loc + scale * standard_normal()``) and ``uniform()``
with default bounds (identical to ``random()``), so block values map
onto the scalar path's draws exactly.  ``tests/test_batch_kernel.py``
asserts all four equivalences against the installed numpy.
"""

from __future__ import annotations

from typing import Dict

from repro.des.rng import RngStreams

#: Raw-draw kinds: standard-normal raws feed the OU fading streams,
#: uniform raws feed the node-shadowing streams.
NORMAL = "normal"
UNIFORM = "uniform"

#: First allocation per stream; doubles on exhaustion.  128 covers a
#: short lane outright while keeping unused streams cheap.
_INITIAL_BLOCK = 128


class Block:
    """The materialized raw-draw sequence of one named stream.

    ``values`` holds plain Python floats (via ``ndarray.tolist``) so the
    consuming arithmetic runs on the exact same objects the scalar path's
    ``float(...)`` conversions produce.
    """

    __slots__ = ("_gen", "_kind", "values")

    def __init__(self, gen, kind: str, initial: int = _INITIAL_BLOCK) -> None:
        if kind not in (NORMAL, UNIFORM):
            raise ValueError(f"unknown draw kind {kind!r}")
        self._gen = gen
        self._kind = kind
        self.values: list = []
        self._extend(initial)

    def _extend(self, n: int) -> None:
        if self._kind == NORMAL:
            chunk = self._gen.standard_normal(size=n)
        else:
            chunk = self._gen.random(size=n)
        self.values.extend(chunk.tolist())

    def get(self, index: int) -> float:
        """The stream's ``index``-th raw draw (growing the block to reach
        it)."""
        values = self.values
        while index >= len(values):
            self._extend(len(values))
        return values[index]

    def __len__(self) -> int:
        return len(self.values)


class DrawBlocks:
    """All blocks of one ``(seed, replicate)``: a lazy dict of streams.

    Stream names and seeding are exactly those of
    :class:`repro.des.rng.RngStreams` — the generator behind each block
    *is* an ``RngStreams.stream(name)`` handle, so derivation stays a
    single source of truth.
    """

    __slots__ = ("_rng", "_blocks")

    def __init__(self, seed: int, replicate: int) -> None:
        self._rng = RngStreams(seed=seed, replicate=replicate)
        self._blocks: Dict[str, Block] = {}

    def block(self, name: str, kind: str) -> Block:
        """Return (creating on first use) the block for stream ``name``."""
        block = self._blocks.get(name)
        if block is None:
            block = Block(self._rng.stream(name), kind)
            self._blocks[name] = block
        return block

    def __repr__(self) -> str:
        return (
            f"DrawBlocks(seed={self._rng.seed}, "
            f"replicate={self._rng.replicate}, streams={len(self._blocks)})"
        )
