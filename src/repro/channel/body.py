"""Anthropometric body model: candidate node locations and geometry.

The paper places nodes at ten predefined body locations (Fig. 1 and
Sec. 4.1): chest, left/right hip, left/right ankle, left/right wrist, left
upper arm (referred to as the shoulder for node 7), head, and back.  This
module assigns each location a 3-D coordinate on a standing adult body
(meters, origin at the feet midpoint, x to the subject's right, y forward,
z up) and classifies each pair of locations as line-of-sight or
around-the-body, which drives the shadowing term of the mean path-loss law.

The coordinates follow standard adult anthropometry (stature ≈ 1.75 m).
Absolute precision is unimportant; what matters for reproducing the paper's
behaviour is the *relative structure*: wrist-to-ankle and front-to-back
links are long and/or occluded (deep average path loss), chest-to-hip and
chest-to-arm links are short and clear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Torso is approximated as an elliptic cylinder for the occlusion test.
TORSO_CENTER_XY = (0.0, 0.0)
TORSO_HALF_WIDTH = 0.18   # meters, x half-axis
TORSO_HALF_DEPTH = 0.12   # meters, y half-axis
TORSO_Z_RANGE = (0.90, 1.55)  # hips to shoulders


@dataclass(frozen=True)
class BodyLocation:
    """One candidate node location.

    Attributes
    ----------
    index:
        Paper's location id (0..9).
    name:
        Human-readable label matching Sec. 4.1.
    position:
        (x, y, z) in meters on the standing body.
    side:
        ``"front"``, ``"back"``, or ``"limb"`` — used when classifying
        around-body links.
    """

    index: int
    name: str
    position: Tuple[float, float, float]
    side: str

    def distance_to(self, other: "BodyLocation") -> float:
        """Euclidean distance in meters."""
        return math.dist(self.position, other.position)


#: The ten locations of the paper's design example (Sec. 4.1), indexed as in
#: the paper: n0 chest, n1/n2 hips, n3/n4 ankles, n5/n6 wrists, n7 upper
#: arm/shoulder, n8 head, n9 back.
_LOCATIONS: List[BodyLocation] = [
    BodyLocation(0, "chest", (0.00, 0.13, 1.35), "front"),
    BodyLocation(1, "left_hip", (-0.16, 0.08, 0.95), "front"),
    BodyLocation(2, "right_hip", (0.16, 0.08, 0.95), "front"),
    BodyLocation(3, "left_ankle", (-0.12, 0.02, 0.10), "limb"),
    BodyLocation(4, "right_ankle", (0.12, 0.02, 0.10), "limb"),
    BodyLocation(5, "left_wrist", (-0.35, 0.05, 0.80), "limb"),
    BodyLocation(6, "right_wrist", (0.35, 0.05, 0.80), "limb"),
    BodyLocation(7, "left_upper_arm", (-0.25, 0.00, 1.40), "limb"),
    BodyLocation(8, "head", (0.00, 0.05, 1.70), "front"),
    BodyLocation(9, "back", (0.00, -0.13, 1.30), "back"),
]


class BodyModel:
    """Geometry container for a set of body locations.

    Provides pairwise distances and the front/back occlusion classification
    consumed by :class:`repro.channel.pathloss.MeanPathLossModel`.
    """

    def __init__(self, locations: Sequence[BodyLocation]) -> None:
        indices = [loc.index for loc in locations]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate location indices in body model")
        self.locations: List[BodyLocation] = sorted(locations, key=lambda l: l.index)
        self._by_index: Dict[int, BodyLocation] = {l.index: l for l in self.locations}
        self._by_name: Dict[str, BodyLocation] = {l.name: l for l in self.locations}

    @property
    def num_locations(self) -> int:
        return len(self.locations)

    def location(self, index: int) -> BodyLocation:
        try:
            return self._by_index[index]
        except KeyError:
            raise KeyError(f"no body location with index {index}") from None

    def by_name(self, name: str) -> BodyLocation:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no body location named {name!r}") from None

    def distance(self, i: int, j: int) -> float:
        """Pairwise Euclidean distance in meters."""
        return self.location(i).distance_to(self.location(j))

    def is_occluded(self, i: int, j: int) -> bool:
        """Whether the (i, j) link propagates around the body.

        A link counts as occluded (non-line-of-sight, creeping-wave
        propagation) when either endpoint pair straddles the torso front to
        back, or the straight segment between the endpoints crosses the
        torso cylinder.  Occluded links receive the around-body shadowing
        penalty in the mean path-loss law.
        """
        a, b = self.location(i), self.location(j)
        if {a.side, b.side} == {"front", "back"}:
            return True
        return _segment_crosses_torso(a.position, b.position)

    def link_classes(self) -> Dict[Tuple[int, int], str]:
        """Classify every unordered pair as ``"los"`` or ``"nlos"``."""
        classes: Dict[Tuple[int, int], str] = {}
        n = self.num_locations
        idx = [loc.index for loc in self.locations]
        for ii in range(n):
            for jj in range(ii + 1, n):
                i, j = idx[ii], idx[jj]
                classes[(i, j)] = "nlos" if self.is_occluded(i, j) else "los"
        return classes


def _segment_crosses_torso(
    p: Tuple[float, float, float], q: Tuple[float, float, float], samples: int = 16
) -> bool:
    """Sample the open segment and test points against the torso cylinder.

    The endpoints themselves sit *on* the body, so only strictly interior
    sample points count; a point is inside when it falls within the elliptic
    cross-section at a torso height.  Sampling is ample for the coarse
    geometry used here and keeps the test trivially robust.
    """
    cx, cy = TORSO_CENTER_XY
    z_lo, z_hi = TORSO_Z_RANGE
    for k in range(1, samples):
        t = k / samples
        x = p[0] + t * (q[0] - p[0])
        y = p[1] + t * (q[1] - p[1])
        z = p[2] + t * (q[2] - p[2])
        if not (z_lo <= z <= z_hi):
            continue
        # Deep-interior test: a segment between two points on the body
        # surface naturally grazes the ellipse (normalized radius near 1),
        # and creeping-wave propagation along the skin is what the LOS
        # class models.  Only a segment cutting well inside the torso
        # (normalized squared radius < 0.5) counts as through-body.
        norm = ((x - cx) / TORSO_HALF_WIDTH) ** 2 + ((y - cy) / TORSO_HALF_DEPTH) ** 2
        if norm < 0.5:
            return True
    return False


#: The default body used by the paper's design example.
STANDARD_BODY = BodyModel(_LOCATIONS)

#: Indices used in the Sec. 4.1 topological constraints.
CHEST = 0
LEFT_HIP, RIGHT_HIP = 1, 2
LEFT_ANKLE, RIGHT_ANKLE = 3, 4
LEFT_WRIST, RIGHT_WRIST = 5, 6
LEFT_UPPER_ARM = 7
HEAD = 8
BACK = 9
