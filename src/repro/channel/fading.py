"""Temporal variation of the body channel: δPL(t) in Eq. 1.

The paper models the instantaneous path loss as
``PL(i,j,t) = PL̄(i,j) + δPL(i,j,t)`` where the density of ``δPL(t)``
depends on the previously observed value ``δPL(t−Δt)`` and on the elapsed
time ``Δt`` — if little time has passed the channel has not changed much
(Smith et al.'s conditional-probability link model).  The empirical
densities are not distributable, so we use the canonical continuous-time
process with exactly that conditional structure: a stationary
Ornstein-Uhlenbeck (OU) process in dB,

    δPL(t) | δPL(t−Δt) = v  ~  Normal( v·ρ,  σ²·(1 − ρ²) ),
    ρ = exp(−Δt/τ)

whose stationary distribution is Normal(0, σ²).  σ controls fade depth
(default 6 dB — deep fades of 12–18 dB occur with realistic probability)
and τ the coherence time of body-movement shadowing (default 1.0 s, so
consecutive 100 ms packets see correlated channels while packets seconds
apart are nearly independent).

Fades are clipped at ±``clip_db`` to keep extreme tail draws physical.
Each unordered link pair carries an independent process with its own RNG
stream; the channel is reciprocal (δPL(i,j) = δPL(j,i)) as in narrowband
on-body measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.des.rng import RngStreams


@dataclass(frozen=True)
class FadingParameters:
    """Temporal-variation parameters: OU fading plus node shadowing.

    The OU component models fast, link-independent multipath variation.
    The *node shadowing* component models the dominant on-body outage
    mechanism measured in WBAN campaigns: a posture change (arm behind the
    back, lying on a sensor) occludes one node's antenna from the whole
    network for on the order of a second, attenuating **all** of that
    node's links simultaneously.  This correlated outage is what limits
    mesh redundancy in practice — without it, two disjoint relay paths
    would virtually never fail together and every mesh configuration would
    measure a perfect PDR, contrary to the paper's Fig. 3.

    Shadowing is a two-state continuous-time Markov chain per node:
    occluded a ``shadow_fraction`` of the time in episodes of mean length
    ``shadow_dwell_s``, adding ``shadow_depth_db`` to every link of the
    affected node while active.
    """

    sigma_db: float = 6.0
    coherence_time_s: float = 1.0
    clip_db: float = 25.0
    shadow_fraction: float = 0.05
    shadow_dwell_s: float = 1.2
    shadow_depth_db: float = 16.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma must be non-negative")
        if self.coherence_time_s <= 0:
            raise ValueError("coherence time must be positive")
        if self.clip_db <= 0:
            raise ValueError("clip must be positive")
        if not 0.0 <= self.shadow_fraction < 1.0:
            raise ValueError("shadow fraction must lie in [0, 1)")
        if self.shadow_dwell_s <= 0:
            raise ValueError("shadow dwell must be positive")
        if self.shadow_depth_db < 0:
            raise ValueError("shadow depth cannot be negative")


class OrnsteinUhlenbeckFading:
    """Per-link OU fading with lazy conditional sampling.

    The process is only sampled when a link is actually used, at the times
    packets traverse it; the conditional update is exact for any Δt, so
    irregular sampling (bursty traffic, idle periods) is handled without
    discretization error.
    """

    def __init__(self, params: FadingParameters, rng: RngStreams) -> None:
        self.params = params
        self.rng = rng
        # Per-link state: [stream, last_time, last_value].  The stream
        # handle lives in the state record so the hot path never pays the
        # f-string + registry lookup of :meth:`RngStreams.stream` again
        # after a link's first use (profile: that lookup dominated the
        # per-sample cost).  A list (not a tuple) so updates are in place.
        self._state: Dict[Tuple[int, int], list] = {}
        # Hot-path constants hoisted out of the frozen-dataclass attribute
        # chain (sample() runs once per link per transmission).
        self._sigma = params.sigma_db
        self._clip_limit = params.clip_db
        self._tau = params.coherence_time_s

    def sample(self, i: int, j: int, t: float) -> float:
        """Draw δPL(i,j,t) in dB, conditioned on the link's history.

        Queries must be non-decreasing in time per link (the simulator only
        moves forward); a repeated query at the same time returns the same
        value, so both endpoints of one transmission see one channel.
        """
        key = (i, j) if i <= j else (j, i)
        state = self._state.get(key)
        sigma = self._sigma
        if state is None:
            stream = self.rng.stream(f"fading/{key[0]}-{key[1]}")
            value = float(stream.normal(0.0, sigma)) if sigma > 0 else 0.0
            value = _clip(value, self._clip_limit)
            self._state[key] = [stream, t, value]
            return value
        last_t = state[1]
        dt = t - last_t
        if dt <= 0.0:
            if dt < -1e-12:
                raise ValueError(
                    f"fading sampled backwards in time on link {key}: "
                    f"{t} < {last_t}"
                )
            return state[2]
        if sigma == 0:
            value = 0.0
        else:
            rho = math.exp(-dt / self._tau)
            mean = state[2] * rho
            std = sigma * math.sqrt(max(0.0, 1.0 - rho * rho))
            # numpy's scalar normal(mean, std) is exactly
            # mean + std*standard_normal() (same draw, same IEEE ops);
            # the raw form skips the broadcasting machinery.
            value = mean + std * float(state[0].standard_normal())
            limit = self._clip_limit
            if value > limit:
                value = limit
            elif value < -limit:
                value = -limit
        state[1] = t
        state[2] = value
        return value

    def peek(self, i: int, j: int) -> float:
        """Last sampled value without advancing the process (0 if unused)."""
        key = (i, j) if i <= j else (j, i)
        state = self._state.get(key)
        return 0.0 if state is None else state[2]

    def reset(self) -> None:
        """Forget all link histories (used between replicate runs)."""
        self._state.clear()


class NodeShadowing:
    """Per-node two-state occlusion process (see FadingParameters).

    The chain has stationary occluded probability π = ``shadow_fraction``
    and mean occluded dwell τ_on = ``shadow_dwell_s``; with exit rate
    b = 1/τ_on and entry rate a = b·π/(1−π), the exact transition
    probabilities over any elapsed Δt are

        P(on | was on)  = π + (1−π)·e^{−(a+b)Δt}
        P(on | was off) = π·(1 − e^{−(a+b)Δt})

    which allows the same lazy, irregular sampling as the OU process.
    """

    def __init__(self, params: FadingParameters, rng: RngStreams) -> None:
        self.params = params
        self.rng = rng
        # Per-node state: [stream, last_time, occluded?] — stream handle
        # cached for the same reason as in OrnsteinUhlenbeckFading.
        self._state: Dict[int, list] = {}
        p = params
        if p.shadow_fraction > 0:
            self._exit_rate = 1.0 / p.shadow_dwell_s
            self._entry_rate = self._exit_rate * p.shadow_fraction / (
                1.0 - p.shadow_fraction
            )
            self._relax = self._exit_rate + self._entry_rate
        else:
            self._exit_rate = self._entry_rate = self._relax = 0.0
        # Hot-path constants (is_occluded runs twice per link sample).
        self._pi = p.shadow_fraction
        self._enabled = p.shadow_fraction > 0 and p.shadow_depth_db > 0

    def is_occluded(self, node: int, t: float) -> bool:
        """Sample the node's occlusion state at time t (non-decreasing per
        node; repeated queries at the same time agree)."""
        if not self._enabled:
            return False
        state = self._state.get(node)
        pi = self._pi
        if state is None:
            stream = self.rng.stream(f"shadow/{node}")
            occluded = bool(stream.uniform() < pi)
            self._state[node] = [stream, t, occluded]
            return occluded
        dt = t - state[1]
        if dt <= 0.0:
            if dt < -1e-12:
                raise ValueError(
                    f"shadowing sampled backwards in time for node {node}"
                )
            return state[2]
        decay = math.exp(-self._relax * dt)
        if state[2]:
            p_on = pi + (1.0 - pi) * decay
        else:
            p_on = pi * (1.0 - decay)
        # uniform() is the raw next-double; random() returns it without
        # the low/high scaling prologue.
        occluded = bool(state[0].random() < p_on)
        state[1] = t
        state[2] = occluded
        return occluded

    def extra_loss_db(self, i: int, j: int, t: float) -> float:
        """Additional path loss on link (i, j) from either endpoint being
        occluded at time t."""
        depth = self.params.shadow_depth_db
        if depth <= 0:
            return 0.0
        loss = 0.0
        if self.is_occluded(i, t):
            loss += depth
        if self.is_occluded(j, t):
            loss += depth
        return loss

    def reset(self) -> None:
        self._state.clear()


def _clip(value: float, limit: float) -> float:
    return max(-limit, min(limit, value))
