"""The composite channel and the link-budget reception test.

:class:`Channel` is what the network stack talks to: it combines the mean
path-loss model and the temporal fading process into the instantaneous
``PL(i,j,t)`` of Eq. 1 and answers the two questions the PHY layer asks —
"at what power does a transmission from i arrive at j right now?" and "does
that close the link?" (Sec. 2.1.2: successful reception requires
``Tx_dBm ≥ Rx_sensitivity_dBm + PL(i,j,t)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.channel.fading import (
    FadingParameters,
    NodeShadowing,
    OrnsteinUhlenbeckFading,
)
from repro.channel.pathloss import MeanPathLossModel, PathLossParameters
from repro.channel.body import BodyModel, STANDARD_BODY
from repro.des.rng import RngStreams


@dataclass(frozen=True)
class LinkBudget:
    """Static link-budget summary for one (tx power, link) combination."""

    tx_power_dbm: float
    sensitivity_dbm: float
    mean_path_loss_db: float

    @property
    def margin_db(self) -> float:
        """Fading margin: how much extra loss the link tolerates on
        average before reception fails."""
        return self.tx_power_dbm - self.sensitivity_dbm - self.mean_path_loss_db

    @property
    def closes_on_average(self) -> bool:
        return self.margin_db >= 0.0


class Channel:
    """Instantaneous body-channel model shared by all nodes of a network.

    Parameters
    ----------
    body:
        Body geometry (defaults to the paper's ten locations).
    pathloss_params, fading_params:
        Model parameters; see the respective modules for calibration notes.
    rng:
        Random-stream factory for the fading processes.  Passing streams
        from the enclosing simulation run keeps replicates independent.
    measured:
        Optional per-pair mean path-loss overrides (measurement data).
    posture_params:
        Optional :class:`repro.channel.posture.PostureParameters`
        enabling minute-scale posture regimes on top of the fast fading
        (off by default — the calibrated Figure 3 channel excludes it).
    """

    def __init__(
        self,
        rng: RngStreams,
        body: Optional[BodyModel] = None,
        pathloss_params: Optional[PathLossParameters] = None,
        fading_params: Optional[FadingParameters] = None,
        measured=None,
        posture_params=None,
    ) -> None:
        self.body = body or STANDARD_BODY
        self.mean_model = MeanPathLossModel(self.body, pathloss_params, measured)
        params = fading_params or FadingParameters()
        self.fading = OrnsteinUhlenbeckFading(params, rng)
        self.shadowing = NodeShadowing(params, rng)
        if posture_params is not None:
            from repro.channel.posture import PostureProcess

            self.posture: Optional[PostureProcess] = PostureProcess(
                posture_params, rng
            )
        else:
            self.posture = None

    def path_loss(self, i: int, j: int, t: float) -> float:
        """Instantaneous path loss PL(i,j,t) in dB (Eq. 1): mean + OU
        variation + node-shadowing episodes + (optional) posture regime."""
        total = (
            self.mean_model.mean_path_loss(i, j)
            + self.fading.sample(i, j, t)
            + self.shadowing.extra_loss_db(i, j, t)
        )
        if self.posture is not None:
            total += self.posture.extra_loss_db(
                self.body.is_occluded(i, j), t
            )
        return total

    def received_power_dbm(self, tx_dbm: float, i: int, j: int, t: float) -> float:
        """Power arriving at location j from a transmitter at i."""
        return tx_dbm - self.path_loss(i, j, t)

    def link_closes(
        self, tx_dbm: float, sensitivity_dbm: float, i: int, j: int, t: float
    ) -> bool:
        """The paper's reception condition at time t."""
        return self.received_power_dbm(tx_dbm, i, j, t) >= sensitivity_dbm

    def max_fade_gain_db(self) -> float:
        """Largest amount by which the instantaneous path loss can fall
        *below* the mean: the OU fade is clipped at ±``clip_db`` and both
        shadowing and posture only ever add loss.  This bounds the best
        case a link can ever see — the basis for the dead-pair skip."""
        p = self.fading.params
        return p.clip_db if p.sigma_db > 0 else 0.0

    def fanout_powers(
        self,
        sender: int,
        tx_dbm: float,
        entries: Sequence[Tuple[int, float, bool]],
        t: float,
        blocked=None,
    ) -> List[float]:
        """Received power at every receiver of one broadcast, bit-identical
        to calling :meth:`received_power_dbm` per receiver in order.

        ``entries`` is the precomputed fan-out plan: ``(receiver,
        mean_path_loss, skip)`` tuples where ``mean_path_loss`` is the
        precomputed ``PL̄(sender, receiver)`` (hoisting the per-packet
        model lookup out of the hot loop) and ``skip`` marks a pair whose
        best-case power (``tx − PL̄ + max_fade_gain_db()``) is
        unobservable in *both* directions — such a pair's OU draw
        is never consulted by any reception, capture, or carrier-sense
        decision, so the sample is skipped and −inf returned.  The node
        shadowing chains of both endpoints are still advanced (they are
        shared with the node's other links), so every other draw in the
        run is unchanged.  ``blocked`` is the fault-layer pair predicate;
        blocked receivers get −inf with *no* sampling at all, exactly like
        the pre-fast-path reception loop.

        Skips are disabled at plan-build time when the posture process is
        active (posture draws are time-keyed and shared across pairs);
        that path falls back to the generic per-receiver computation.
        """
        if self.posture is not None:
            out: List[float] = []
            for loc, _det, _skip in entries:
                if blocked is not None and blocked(sender, loc):
                    out.append(-math.inf)
                else:
                    out.append(tx_dbm - self.path_loss(sender, loc, t))
            return out
        fading = self.fading
        fading_sample = fading.sample
        fading_state = fading._state
        sigma = fading._sigma
        clip_limit = fading._clip_limit
        tau = fading._tau
        shadow = self.shadowing
        params = shadow.params
        depth = params.shadow_depth_db
        shadow_on = depth > 0 and params.shadow_fraction > 0
        is_occ = shadow.is_occluded
        shadow_state = shadow._state
        pi = shadow._pi
        relax = shadow._relax
        exp = math.exp
        sqrt = math.sqrt
        out = []
        append = out.append

        # The warm-state update of both processes (a state record exists
        # and time strictly advanced — by far the common case on the
        # per-packet fan-out) is inlined below with the exact arithmetic
        # of OrnsteinUhlenbeckFading.sample / NodeShadowing.is_occluded;
        # cold starts, repeated timestamps, and backwards-time errors
        # delegate to those methods, which remain the single source of
        # truth for the non-hot branches.  The raw-draw forms
        # ``random()`` and ``mean + std*standard_normal()`` are what
        # numpy's ``uniform()``/``normal(mean, std)`` compute internally
        # (same bit-stream consumption, same IEEE operations), minus the
        # scalar broadcasting overhead.  The channel-unit tests assert
        # bit-equality of this loop against the generic path.
        def tick_shadow(node: int) -> bool:
            state = shadow_state.get(node)
            if state is not None and t > state[1]:
                decay = exp(-relax * (t - state[1]))
                if state[2]:
                    p_on = pi + (1.0 - pi) * decay
                else:
                    p_on = pi * (1.0 - decay)
                occluded = bool(state[0].random() < p_on)
                state[1] = t
                state[2] = occluded
                return occluded
            return is_occ(node, t)

        # The sender's occlusion state is the same for every receiver at
        # this timestamp; compute it once, but only when the first
        # non-blocked receiver needs it — the per-receiver loop must
        # advance each node's chain in exactly the order the generic path
        # does (sender first, then receivers), and must not touch the
        # sender's chain at all when every receiver is fault-blocked.
        sender_occ = -1
        # Grouping note: the generic path computes the loss as
        # ``(mean + fading) + extra`` and the power as ``tx − loss``; the
        # same association is kept here so every float is bit-identical.
        for loc, mean_pl, skip in entries:
            if blocked is not None and blocked(sender, loc):
                append(-math.inf)
                continue
            if skip:
                # Unobservable pair: keep the shared shadowing chains in
                # step but leave the pair's private OU stream untouched.
                if shadow_on:
                    if sender_occ < 0:
                        sender_occ = 1 if tick_shadow(sender) else 0
                    tick_shadow(loc)
                append(-math.inf)
                continue
            key = (sender, loc) if sender <= loc else (loc, sender)
            state = fading_state.get(key)
            if state is not None and t > state[1]:
                if sigma == 0:
                    value = 0.0
                else:
                    dt = t - state[1]
                    rho = exp(-dt / tau)
                    mean = state[2] * rho
                    var = 1.0 - rho * rho
                    std = sigma * sqrt(var if var > 0.0 else 0.0)
                    value = mean + std * float(state[0].standard_normal())
                    if value > clip_limit:
                        value = clip_limit
                    elif value < -clip_limit:
                        value = -clip_limit
                state[1] = t
                state[2] = value
            else:
                value = fading_sample(sender, loc, t)
            loss = mean_pl + value
            if shadow_on:
                if sender_occ < 0:
                    sender_occ = 1 if tick_shadow(sender) else 0
                extra = depth if sender_occ else 0.0
                # Receiver shadow tick, inlined once more (same warm
                # branch as tick_shadow) — it runs for every receiver of
                # every packet and the closure call was measurable.
                state = shadow_state.get(loc)
                if state is not None and t > state[1]:
                    decay = exp(-relax * (t - state[1]))
                    if state[2]:
                        p_on = pi + (1.0 - pi) * decay
                    else:
                        p_on = pi * (1.0 - decay)
                    occluded = bool(state[0].random() < p_on)
                    state[1] = t
                    state[2] = occluded
                else:
                    occluded = is_occ(loc, t)
                if occluded:
                    extra += depth
                loss = loss + extra
            else:
                loss = loss + 0.0
            append(tx_dbm - loss)
        return out

    def budget(self, tx_dbm: float, sensitivity_dbm: float, i: int, j: int) -> LinkBudget:
        """Static (mean) link budget for planning and diagnostics."""
        return LinkBudget(
            tx_power_dbm=tx_dbm,
            sensitivity_dbm=sensitivity_dbm,
            mean_path_loss_db=self.mean_model.mean_path_loss(i, j),
        )

    def reset_fading(self) -> None:
        """Clear fading, shadowing, and posture history (fresh state)."""
        self.fading.reset()
        self.shadowing.reset()
        if self.posture is not None:
            self.posture.reset()
