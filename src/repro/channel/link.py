"""The composite channel and the link-budget reception test.

:class:`Channel` is what the network stack talks to: it combines the mean
path-loss model and the temporal fading process into the instantaneous
``PL(i,j,t)`` of Eq. 1 and answers the two questions the PHY layer asks —
"at what power does a transmission from i arrive at j right now?" and "does
that close the link?" (Sec. 2.1.2: successful reception requires
``Tx_dBm ≥ Rx_sensitivity_dBm + PL(i,j,t)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.channel.fading import (
    FadingParameters,
    NodeShadowing,
    OrnsteinUhlenbeckFading,
)
from repro.channel.pathloss import MeanPathLossModel, PathLossParameters
from repro.channel.body import BodyModel, STANDARD_BODY
from repro.des.rng import RngStreams


@dataclass(frozen=True)
class LinkBudget:
    """Static link-budget summary for one (tx power, link) combination."""

    tx_power_dbm: float
    sensitivity_dbm: float
    mean_path_loss_db: float

    @property
    def margin_db(self) -> float:
        """Fading margin: how much extra loss the link tolerates on
        average before reception fails."""
        return self.tx_power_dbm - self.sensitivity_dbm - self.mean_path_loss_db

    @property
    def closes_on_average(self) -> bool:
        return self.margin_db >= 0.0


class Channel:
    """Instantaneous body-channel model shared by all nodes of a network.

    Parameters
    ----------
    body:
        Body geometry (defaults to the paper's ten locations).
    pathloss_params, fading_params:
        Model parameters; see the respective modules for calibration notes.
    rng:
        Random-stream factory for the fading processes.  Passing streams
        from the enclosing simulation run keeps replicates independent.
    measured:
        Optional per-pair mean path-loss overrides (measurement data).
    posture_params:
        Optional :class:`repro.channel.posture.PostureParameters`
        enabling minute-scale posture regimes on top of the fast fading
        (off by default — the calibrated Figure 3 channel excludes it).
    """

    def __init__(
        self,
        rng: RngStreams,
        body: Optional[BodyModel] = None,
        pathloss_params: Optional[PathLossParameters] = None,
        fading_params: Optional[FadingParameters] = None,
        measured=None,
        posture_params=None,
    ) -> None:
        self.body = body or STANDARD_BODY
        self.mean_model = MeanPathLossModel(self.body, pathloss_params, measured)
        params = fading_params or FadingParameters()
        self.fading = OrnsteinUhlenbeckFading(params, rng)
        self.shadowing = NodeShadowing(params, rng)
        if posture_params is not None:
            from repro.channel.posture import PostureProcess

            self.posture: Optional[PostureProcess] = PostureProcess(
                posture_params, rng
            )
        else:
            self.posture = None

    def path_loss(self, i: int, j: int, t: float) -> float:
        """Instantaneous path loss PL(i,j,t) in dB (Eq. 1): mean + OU
        variation + node-shadowing episodes + (optional) posture regime."""
        total = (
            self.mean_model.mean_path_loss(i, j)
            + self.fading.sample(i, j, t)
            + self.shadowing.extra_loss_db(i, j, t)
        )
        if self.posture is not None:
            total += self.posture.extra_loss_db(
                self.body.is_occluded(i, j), t
            )
        return total

    def received_power_dbm(self, tx_dbm: float, i: int, j: int, t: float) -> float:
        """Power arriving at location j from a transmitter at i."""
        return tx_dbm - self.path_loss(i, j, t)

    def link_closes(
        self, tx_dbm: float, sensitivity_dbm: float, i: int, j: int, t: float
    ) -> bool:
        """The paper's reception condition at time t."""
        return self.received_power_dbm(tx_dbm, i, j, t) >= sensitivity_dbm

    def budget(self, tx_dbm: float, sensitivity_dbm: float, i: int, j: int) -> LinkBudget:
        """Static (mean) link budget for planning and diagnostics."""
        return LinkBudget(
            tx_power_dbm=tx_dbm,
            sensitivity_dbm=sensitivity_dbm,
            mean_path_loss_db=self.mean_model.mean_path_loss(i, j),
        )

    def reset_fading(self) -> None:
        """Clear fading, shadowing, and posture history (fresh state)."""
        self.fading.reset()
        self.shadowing.reset()
        if self.posture is not None:
            self.posture.reset()
