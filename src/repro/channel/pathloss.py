"""Mean path-loss law for on-body 2.4 GHz links.

The paper takes the average path loss ``PL̄(i,j)`` from a two-hour NICTA
measurement campaign.  That dataset is not distributable, so we substitute
a parametric law with the same observable structure — per-link constants in
the 35–90 dB range with short front-of-torso links at the low end and long
or around-body links at the high end:

    PL̄(i,j) = PL0 + 10·n·log10(d(i,j)/d0) + S·occluded(i,j)

with defaults calibrated against the IEEE 802.15.6 CM3 (body surface to
body surface, 2.4 GHz) channel characterization: ``PL0 = 42 dB`` at
``d0 = 0.1 m``, exponent ``n = 4.0``, and an around-body shadowing penalty
``S = 18 dB``.  With the CC2650 link budgets of Table 1 (77/87/97 dB at
−20/−10/0 dBm), this reproduces the qualitative regimes of the paper's
Figure 3: −20 dBm cannot close the long limb links, −10 dBm closes them
marginally (fading-limited PDR), 0 dBm closes them with margin.

Users with measured data can bypass the law entirely by passing a
``measured`` table of per-pair values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.channel.body import BodyModel


@dataclass(frozen=True)
class PathLossParameters:
    """Parameters of the mean path-loss law (all in dB / meters)."""

    pl0_db: float = 42.0
    ref_distance_m: float = 0.1
    exponent: float = 4.0
    nlos_penalty_db: float = 18.0
    #: Floor applied after evaluation; a node cannot be closer than ~the
    #: antenna near-field, so path loss never drops below this.
    min_path_loss_db: float = 30.0

    def __post_init__(self) -> None:
        if self.ref_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if self.exponent <= 0:
            raise ValueError("path-loss exponent must be positive")


class MeanPathLossModel:
    """Per-pair average path loss ``PL̄(i,j)`` over a body model.

    Parameters
    ----------
    body:
        Geometry provider (distances and occlusion classification).
    params:
        Law parameters; defaults documented above.
    measured:
        Optional overrides: ``{(i, j): PL_dB}`` with unordered pairs.  Any
        pair present here bypasses the parametric law, which is how real
        measurement campaigns (the paper's NICTA dataset) would be plugged
        in.
    """

    def __init__(
        self,
        body: BodyModel,
        params: Optional[PathLossParameters] = None,
        measured: Optional[Mapping[Tuple[int, int], float]] = None,
    ) -> None:
        self.body = body
        self.params = params or PathLossParameters()
        self._measured: Dict[Tuple[int, int], float] = {}
        if measured:
            for (i, j), value in measured.items():
                self._measured[_ordered(i, j)] = float(value)
        self._cache: Dict[Tuple[int, int], float] = {}

    def mean_path_loss(self, i: int, j: int) -> float:
        """Average path loss in dB between locations ``i`` and ``j``."""
        if i == j:
            raise ValueError("path loss is undefined for a link to itself")
        key = _ordered(i, j)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        override = self._measured.get(key)
        if override is not None:
            self._cache[key] = override
            return override
        p = self.params
        distance = self.body.distance(i, j)
        value = p.pl0_db + 10.0 * p.exponent * math.log10(
            max(distance, 1e-3) / p.ref_distance_m
        )
        if self.body.is_occluded(i, j):
            value += p.nlos_penalty_db
        value = max(value, p.min_path_loss_db)
        self._cache[key] = value
        return value

    def matrix(self) -> np.ndarray:
        """Full symmetric path-loss matrix (NaN on the diagonal)."""
        n = self.body.num_locations
        indices = [loc.index for loc in self.body.locations]
        out = np.full((n, n), np.nan)
        for a in range(n):
            for b in range(a + 1, n):
                value = self.mean_path_loss(indices[a], indices[b])
                out[a, b] = out[b, a] = value
        return out

    def worst_link(self, indices) -> Tuple[Tuple[int, int], float]:
        """The highest-loss link among a set of occupied locations."""
        worst_pair = None
        worst_value = -math.inf
        idx = list(indices)
        for a in range(len(idx)):
            for b in range(a + 1, len(idx)):
                value = self.mean_path_loss(idx[a], idx[b])
                if value > worst_value:
                    worst_value = value
                    worst_pair = (idx[a], idx[b])
        if worst_pair is None:
            raise ValueError("need at least two locations")
        return worst_pair, worst_value


def _ordered(i: int, j: int) -> Tuple[int, int]:
    return (i, j) if i <= j else (j, i)
