"""Posture dynamics: slow, whole-body modulation of the channel.

The paper's mean path loss comes from a *two-hour daily-activity*
measurement campaign: subjects walk, sit, and lie down, and each posture
reshapes every link at once (arms swing near the torso, sitting brings
wrists and hips together and occludes ankle links, lying flattens
everything onto the mattress).  The OU fading and node-shadowing processes
in :mod:`repro.channel.fading` capture second-scale variation; this module
adds the minute-scale regime changes.

Model: a continuous-time Markov chain over named postures.  To allow the
same lazy, exact, arbitrary-Δt sampling as the other channel processes,
the chain is *star-shaped*: every posture's dwell time is exponential with
the same rate ``1/mean_dwell_s``, and on leaving a posture the next one is
drawn from the stationary distribution (including possibly the same
posture).  For such chains the state distribution after any Δt is the
exact mixture

    P(state_j at t+Δt | state_i at t) = π_j + e^{−Δt/τ}(1_{i=j} − π_j)

so a single uniform draw per query suffices.  Each posture carries an
additive path-loss offset per link class (LOS/NLOS) and a multiplier on
the node-shadowing fraction, letting e.g. "lying" both deepen every link
and make occlusion episodes more likely.

Posture modulation is **off by default** (the calibrated Figure 3 channel
in DESIGN.md does not include it); it is an extension for users who want
activity-conditioned exploration, exercised by the posture ablation bench
and the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.des.rng import RngStreams


@dataclass(frozen=True)
class Posture:
    """One body posture and its channel signature.

    ``los_offset_db`` / ``nlos_offset_db`` are added to the mean path loss
    of line-of-sight / around-body links while the posture is active;
    ``shadow_multiplier`` scales the node-shadowing stationary fraction
    (clamped to [0, 0.95] downstream).
    """

    name: str
    probability: float
    los_offset_db: float = 0.0
    nlos_offset_db: float = 0.0
    shadow_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.probability < 0:
            raise ValueError("posture probability cannot be negative")
        if self.shadow_multiplier < 0:
            raise ValueError("shadow multiplier cannot be negative")


#: A daily-activity mixture loosely matching wearable-campaign time budgets:
#: mostly upright movement, substantial sitting, some lying.
STANDING = Posture("standing", probability=0.45)
SITTING = Posture(
    "sitting", probability=0.40, los_offset_db=2.0, nlos_offset_db=4.0,
    shadow_multiplier=1.5,
)
LYING = Posture(
    "lying", probability=0.15, los_offset_db=5.0, nlos_offset_db=8.0,
    shadow_multiplier=2.5,
)

DAILY_ACTIVITY: Tuple[Posture, ...] = (STANDING, SITTING, LYING)


@dataclass(frozen=True)
class PostureParameters:
    """Configuration of the posture chain."""

    postures: Tuple[Posture, ...] = DAILY_ACTIVITY
    mean_dwell_s: float = 120.0

    def __post_init__(self) -> None:
        if not self.postures:
            raise ValueError("need at least one posture")
        if self.mean_dwell_s <= 0:
            raise ValueError("dwell time must be positive")
        total = sum(p.probability for p in self.postures)
        if total <= 0:
            raise ValueError("posture probabilities must sum to a positive value")

    def stationary(self) -> Tuple[float, ...]:
        total = sum(p.probability for p in self.postures)
        return tuple(p.probability / total for p in self.postures)


class PostureProcess:
    """Lazy exact sampler of the star-shaped posture chain."""

    def __init__(self, params: PostureParameters, rng: RngStreams) -> None:
        self.params = params
        self.rng = rng
        self._pi = params.stationary()
        self._state: Optional[Tuple[float, int]] = None  # (time, index)

    def posture_at(self, t: float) -> Posture:
        """The active posture at time t (queries non-decreasing in t)."""
        stream = self.rng.stream("posture")
        if self._state is None:
            index = self._draw_stationary(float(stream.uniform()))
            self._state = (t, index)
            return self.params.postures[index]
        last_t, last_index = self._state
        if t < last_t - 1e-12:
            raise ValueError("posture sampled backwards in time")
        dt = max(0.0, t - last_t)
        if dt > 0.0:
            stay = math.exp(-dt / self.params.mean_dwell_s)
            u = float(stream.uniform())
            if u >= stay:
                # The chain resampled from the stationary mixture at least
                # once within dt; the exact conditional is the mixture.
                last_index = self._draw_stationary(
                    (u - stay) / max(1e-12, 1.0 - stay)
                )
            self._state = (t, last_index)
        return self.params.postures[last_index]

    def _draw_stationary(self, u: float) -> int:
        acc = 0.0
        for index, pi in enumerate(self._pi):
            acc += pi
            if u <= acc:
                return index
        return len(self._pi) - 1

    def extra_loss_db(self, occluded: bool, t: float) -> float:
        """Posture path-loss offset for a link of the given class."""
        posture = self.posture_at(t)
        return posture.nlos_offset_db if occluded else posture.los_offset_db

    def shadow_fraction_multiplier(self, t: float) -> float:
        return self.posture_at(t).shadow_multiplier

    def reset(self) -> None:
        self._state = None
