"""Measured-channel data interchange: per-pair path-loss tables.

The paper's mean path loss comes from the NICTA on-body measurement
campaign.  Users with such data plug it in through the ``measured``
argument of :class:`repro.channel.pathloss.MeanPathLossModel` /
:class:`repro.channel.link.Channel`; this module provides the plumbing
around that argument:

* CSV load/save of per-pair tables (``i,j,path_loss_db`` rows), the format
  a measurement pipeline would export;
* a synthetic campaign generator that perturbs the parametric law with
  per-pair offsets — useful for studying how sensitive the selected design
  is to channel uncertainty without any real dataset;
* a sensitivity helper quantifying how far two tables disagree.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

import numpy as np

from repro.channel.body import BodyModel, STANDARD_BODY
from repro.channel.pathloss import MeanPathLossModel, PathLossParameters

PairTable = Dict[Tuple[int, int], float]


def _ordered(i: int, j: int) -> Tuple[int, int]:
    return (i, j) if i <= j else (j, i)


def save_pathloss_csv(table: Mapping[Tuple[int, int], float],
                      destination: Union[str, Path, io.TextIOBase]) -> None:
    """Write a per-pair table as ``i,j,path_loss_db`` CSV."""
    own = isinstance(destination, (str, Path))
    handle = open(destination, "w", newline="") if own else destination
    try:
        writer = csv.writer(handle)
        writer.writerow(["i", "j", "path_loss_db"])
        for (i, j), value in sorted(table.items()):
            writer.writerow([i, j, f"{value:.6f}"])
    finally:
        if own:
            handle.close()


def load_pathloss_csv(
    source: Union[str, Path, io.TextIOBase]
) -> PairTable:
    """Read a per-pair table written by :func:`save_pathloss_csv`.

    Validates the header, pair sanity (i != j, non-negative indices), and
    value positivity; raises :class:`ValueError` on malformed input so a
    corrupted measurement file cannot silently skew an exploration.
    """
    own = isinstance(source, (str, Path))
    handle = open(source, newline="") if own else source
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header] != [
            "i", "j", "path_loss_db"
        ]:
            raise ValueError(
                "expected header 'i,j,path_loss_db', got " + repr(header)
            )
        table: PairTable = {}
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ValueError(f"line {line_no}: expected 3 fields, got {row}")
            i, j = int(row[0]), int(row[1])
            value = float(row[2])
            if i == j or i < 0 or j < 0:
                raise ValueError(f"line {line_no}: invalid pair ({i}, {j})")
            if value <= 0:
                raise ValueError(
                    f"line {line_no}: path loss must be positive, got {value}"
                )
            key = _ordered(i, j)
            if key in table:
                raise ValueError(f"line {line_no}: duplicate pair {key}")
            table[key] = value
        return table
    finally:
        if own:
            handle.close()


def synthetic_campaign(
    body: BodyModel = STANDARD_BODY,
    params: PathLossParameters | None = None,
    per_pair_sigma_db: float = 3.0,
    seed: int = 0,
) -> PairTable:
    """A synthetic 'measurement campaign': the parametric law plus a fixed
    per-pair Gaussian offset (subject-to-subject and placement-jig
    variation).  Deterministic per seed."""
    if per_pair_sigma_db < 0:
        raise ValueError("per-pair sigma cannot be negative")
    model = MeanPathLossModel(body, params)
    rng = np.random.default_rng(seed)
    table: PairTable = {}
    indices = [loc.index for loc in body.locations]
    for a_pos, i in enumerate(indices):
        for j in indices[a_pos + 1:]:
            base = model.mean_path_loss(i, j)
            offset = float(rng.normal(0.0, per_pair_sigma_db))
            table[_ordered(i, j)] = max(
                (params or PathLossParameters()).min_path_loss_db,
                base + offset,
            )
    return table


def table_disagreement_db(a: Mapping[Tuple[int, int], float],
                          b: Mapping[Tuple[int, int], float]) -> Dict[str, float]:
    """Compare two per-pair tables on their shared pairs.

    Returns mean absolute, max absolute, and RMS differences in dB — the
    summary a designer checks before trusting a synthetic substitute for a
    measured table (or vice versa).
    """
    shared = sorted(set(a) & set(b))
    if not shared:
        raise ValueError("tables share no pairs")
    diffs = np.array([a[key] - b[key] for key in shared])
    return {
        "pairs": float(len(shared)),
        "mean_abs_db": float(np.abs(diffs).mean()),
        "max_abs_db": float(np.abs(diffs).max()),
        "rms_db": float(np.sqrt((diffs ** 2).mean())),
    }


def full_table(body: BodyModel = STANDARD_BODY,
               params: PathLossParameters | None = None) -> PairTable:
    """The parametric law evaluated on every pair (export convenience)."""
    model = MeanPathLossModel(body, params)
    indices = [loc.index for loc in body.locations]
    return {
        _ordered(i, j): model.mean_path_loss(i, j)
        for a_pos, i in enumerate(indices)
        for j in indices[a_pos + 1:]
    }
