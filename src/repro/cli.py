"""``hi-explore`` — command-line front end to the exploration framework.

Subcommands mirror the experiment harnesses::

    hi-explore solve --pdr-min 90 [--preset ci]     # one Algorithm 1 run
    hi-explore dual --min-lifetime-days 15          # the dual problem
    hi-explore figure3 [--preset ci]                # the Fig. 3 sweep
    hi-explore reduction [--preset ci]              # R1: vs exhaustive
    hi-explore annealing [--preset ci]              # R2: vs SA
    hi-explore extensions [--preset ci]             # E1-E3 studies
    hi-explore table1                               # Table 1
    hi-explore space                                # design-space summary
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="ci",
        choices=("paper", "ci", "smoke"),
        help="measurement protocol (paper = Tsim 600 s x 3 runs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation oracle "
        "(1 = serial, 0 = all cores; results are bit-identical)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the persistent simulation-result cache "
        "(shared across experiments; reruns become near-free)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a structured JSONL trace of the run (manifest, "
        "explorer decisions, oracle/MILP/DES milestones); summarize "
        "with `python -m repro.analysis.trace_report PATH`",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics registry (counters/histograms) "
        "as JSON on exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hi-explore",
        description="Human Intranet design-space exploration (DAC'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run Algorithm 1 for one PDR bound")
    solve.add_argument(
        "--pdr-min",
        type=float,
        required=True,
        help="reliability bound in percent (e.g. 90)",
    )
    solve.add_argument(
        "--exhaustive",
        action="store_true",
        help="disable early termination and sweep every power level",
    )
    _add_common(solve)

    fig3 = sub.add_parser("figure3", help="reproduce Figure 3")
    _add_common(fig3)

    red = sub.add_parser("reduction", help="R1: simulations vs exhaustive search")
    _add_common(red)

    ann = sub.add_parser("annealing", help="R2: comparison with simulated annealing")
    ann.add_argument("--sa-steps", type=int, default=150, help="SA step budget")
    _add_common(ann)

    sub.add_parser("table1", help="print Table 1 (CC2650 specifications)")

    dual = sub.add_parser(
        "dual", help="maximize reliability under a lifetime bound"
    )
    dual.add_argument(
        "--min-lifetime-days", type=float, required=True,
        help="network lifetime bound in days",
    )
    _add_common(dual)

    ext = sub.add_parser(
        "extensions", help="E1-E3: routing comparison, posture, dual staircase"
    )
    _add_common(ext)

    space = sub.add_parser("space", help="summarize the design space")
    _add_common(space)

    return parser


def _open_instrumentation(args):
    """Build the run's observability bundle from the parsed flags."""
    from repro.obs import Instrumentation, MetricsRegistry, TraceWriter

    tracer = None
    if getattr(args, "trace_out", None):
        tracer = TraceWriter(args.trace_out)
    return Instrumentation(MetricsRegistry(), tracer)


def _write_manifest(args, obs) -> None:
    """First trace line: everything needed to reproduce the run."""
    if not obs.tracing:
        return
    from repro.core.result_cache import scenario_fingerprint
    from repro.experiments.scenario import make_scenario

    scenario = make_scenario(args.preset, seed=args.seed)
    obs.manifest(
        command=args.command,
        preset=args.preset,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        scenario_fingerprint=scenario_fingerprint(scenario),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        from repro.experiments.table1 import format_table1

        print(format_table1())
        return 0

    from repro.obs import runtime as obs_runtime

    obs = _open_instrumentation(args)
    _write_manifest(args, obs)
    try:
        with obs_runtime.activate(obs):
            code = _run_command(args, obs)
        obs.event("run.exit", code=code)
        return code
    finally:
        if getattr(args, "metrics_out", None):
            import json

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(obs.metrics.to_dict(), fh, indent=1, sort_keys=True)
                fh.write("\n")
        obs.tracer.close()


def _run_command(args, obs) -> int:
    if args.command == "space":
        from repro.experiments.scenario import make_space

        space = make_space(args.preset)
        print(f"total grid points: {space.total_size}")
        print(f"constraint-satisfying configurations: {space.feasible_count()}")
        print(f"feasible placements by node count: {space.placements_by_size()}")
        return 0

    if args.command == "solve":
        from repro.core.explorer import HumanIntranetExplorer
        from repro.experiments.scenario import get_preset, make_problem

        pdr_min = args.pdr_min / 100.0 if args.pdr_min > 1 else args.pdr_min
        problem = make_problem(
            pdr_min, args.preset, seed=args.seed,
            n_jobs=args.jobs, cache_dir=args.cache_dir,
        )
        preset = get_preset(args.preset)
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        result = explorer.explore(exhaustive=args.exhaustive)
        print(result.summary())
        for record in result.iterations:
            print(
                f"  iteration {record.index}: analytic P={record.analytic_power_mw:.3f} mW, "
                f"{record.num_candidates} candidates, {len(record.feasible)} feasible"
            )
        print(explorer.oracle.format_stats())
        explorer.oracle.close()
        return 0 if result.found else 1

    if args.command == "figure3":
        from repro.experiments.figure3 import format_figure3, run_figure3

        print(
            format_figure3(
                run_figure3(
                    args.preset, seed=args.seed,
                    n_jobs=args.jobs, cache_dir=args.cache_dir,
                )
            )
        )
        return 0

    if args.command == "reduction":
        from repro.experiments.reduction import format_reduction, run_reduction

        print(
            format_reduction(
                run_reduction(
                    args.preset, seed=args.seed,
                    n_jobs=args.jobs, cache_dir=args.cache_dir,
                )
            )
        )
        return 0

    if args.command == "dual":
        from repro.core.explorer import HumanIntranetExplorer
        from repro.experiments.scenario import get_preset, make_problem

        problem = make_problem(
            0.5, args.preset, seed=args.seed,
            n_jobs=args.jobs, cache_dir=args.cache_dir,
        )
        preset = get_preset(args.preset)
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        result = explorer.explore_max_reliability(args.min_lifetime_days)
        print(result.summary())
        print(explorer.oracle.format_stats())
        explorer.oracle.close()
        return 0 if result.found else 1

    if args.command == "extensions":
        from repro.experiments.extensions import (
            format_dual_staircase,
            format_posture_sensitivity,
            format_routing_comparison,
            run_dual_staircase,
            run_posture_sensitivity,
            run_routing_comparison,
        )

        print(format_routing_comparison(
            run_routing_comparison(args.preset, seed=args.seed)))
        print()
        print(format_posture_sensitivity(
            run_posture_sensitivity(args.preset, seed=args.seed)))
        print()
        print(format_dual_staircase(
            run_dual_staircase(
                args.preset, seed=args.seed,
                n_jobs=args.jobs, cache_dir=args.cache_dir,
            )))
        return 0

    if args.command == "annealing":
        from repro.experiments.annealing_cmp import (
            format_annealing_comparison,
            run_annealing_comparison,
        )

        print(
            format_annealing_comparison(
                run_annealing_comparison(
                    args.preset, seed=args.seed, sa_steps=args.sa_steps,
                    n_jobs=args.jobs, cache_dir=args.cache_dir,
                )
            )
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
