"""``hi-explore`` — command-line front end to the exploration framework.

Subcommands mirror the experiment harnesses::

    hi-explore solve --pdr-min 90 [--preset ci]     # one Algorithm 1 run
    hi-explore robust --pdr-min 85 [--hub-stress]   # chance-constrained run
    hi-explore dual --min-lifetime-days 15          # the dual problem
    hi-explore figure3 [--preset ci]                # the Fig. 3 sweep
    hi-explore reduction [--preset ci]              # R1: vs exhaustive
    hi-explore annealing [--preset ci]              # R2: vs SA
    hi-explore extensions [--preset ci]             # E1-E3 studies
    hi-explore robustness [--preset ci]             # E4: nominal vs robust
    hi-explore table1                               # Table 1
    hi-explore space                                # design-space summary
    hi-explore campaign --wearers 8 --out DIR       # fleet campaign
    hi-explore serve --root DIR                     # campaign HTTP service
    hi-explore worker --coordinator URL \
        --workdir DIR                               # fabric worker agent

Every subcommand accepts the same runtime flags (``--jobs``,
``--cache-dir``, ``--batch``, ``--trace-out``, ``--metrics-out``), wired
once by :func:`add_runtime_flags`; the campaign subcommands are thin
shells over the shared :mod:`repro.campaign` package.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _positive_jobs(text: str) -> int:
    """argparse type for ``--jobs``: a positive worker count.

    ``resolve_jobs`` still accepts 0/negative (joblib convention) for
    programmatic callers, but on the command line those spellings are far
    more often typos than intent, so the CLI rejects them up front.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive integer, got {text!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive integer, got {value}"
        )
    return value


def add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Execution/observability flags shared by *every* subcommand.

    These knobs configure how a run executes and what it records — they
    never change a computed result — so they are wired once here instead
    of being duplicated per subparser (each copy used to drift).
    """
    parser.add_argument(
        "--jobs",
        type=_positive_jobs,
        default=None,
        help="worker processes for the simulation oracle "
        "(positive integer; 1 = the serial escape hatch; omitted = "
        "auto-detect all cores, capped at the configuration count; "
        "results are bit-identical at any count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the persistent simulation-result cache "
        "(shared across experiments; reruns become near-free)",
    )
    parser.add_argument(
        "--batch",
        default="auto",
        choices=("auto", "on", "off"),
        help="batched-lane kernel dispatch for the simulation oracle: "
        "auto = batch whenever the kernel supports the configuration "
        "and at least two lanes share a topology, on = batch every "
        "supported evaluation, off = always scalar DES; results are "
        "bit-identical in every mode",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a structured JSONL trace of the run (manifest, "
        "explorer decisions, oracle/MILP/DES milestones); summarize "
        "with `python -m repro.analysis.trace_report PATH`",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics registry (counters/histograms) "
        "as JSON on exit",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="ci",
        choices=("paper", "ci", "smoke"),
        help="measurement protocol (paper = Tsim 600 s x 3 runs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    add_runtime_flags(parser)


def _add_journal_flags(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume flags (mutually exclusive run-directory modes)."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="run directory: record a crash-safe journal of every "
        "evaluated candidate and MILP cut, plus a deterministic "
        "summary.json; a killed run can be continued with --resume DIR",
    )
    group.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume the journaled run in DIR: replay its evaluations "
        "(zero re-simulation), verify the trajectory, and continue — "
        "the final result is bit-identical to an uninterrupted run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hi-explore",
        description="Human Intranet design-space exploration (DAC'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run Algorithm 1 for one PDR bound")
    solve.add_argument(
        "--pdr-min",
        type=float,
        required=True,
        help="reliability bound in percent (e.g. 90)",
    )
    solve.add_argument(
        "--exhaustive",
        action="store_true",
        help="disable early termination and sweep every power level",
    )
    _add_journal_flags(solve)
    _add_common(solve)

    robust = sub.add_parser(
        "robust",
        help="chance-constrained Algorithm 1 over a fault ensemble",
    )
    robust.add_argument(
        "--pdr-min",
        type=float,
        required=True,
        help="reliability bound in percent (e.g. 85), enforced on the "
        "ensemble PDR quantile instead of the healthy PDR",
    )
    robust.add_argument(
        "--quantile",
        type=float,
        default=0.25,
        help="chance-constraint quantile q in [0, 1]: the bound must "
        "hold in at least a (1-q) fraction of fault worlds (0 = worst "
        "case over the ensemble)",
    )
    robust.add_argument(
        "--ensemble-size",
        type=int,
        default=3,
        help="number of fault scenarios in the ensemble",
    )
    robust.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the sampled fault ensemble (default: --seed)",
    )
    robust.add_argument(
        "--hub-stress",
        action="store_true",
        help="use the deterministic coordinator-outage ensemble instead "
        "of sampled mixed faults",
    )
    robust.add_argument(
        "--outage-fraction",
        type=float,
        default=0.2,
        help="hub-stress only: fraction of the horizon the coordinator "
        "radio is down in every scenario",
    )
    robust.add_argument(
        "--correlated-links",
        action="store_true",
        help="sampled ensemble only: replace the independent link "
        "blackout with a correlated group blacking out every "
        "torso-crossing link simultaneously",
    )
    _add_journal_flags(robust)
    _add_common(robust)

    fig3 = sub.add_parser("figure3", help="reproduce Figure 3")
    _add_common(fig3)

    red = sub.add_parser("reduction", help="R1: simulations vs exhaustive search")
    _add_common(red)

    ann = sub.add_parser("annealing", help="R2: comparison with simulated annealing")
    ann.add_argument("--sa-steps", type=int, default=150, help="SA step budget")
    _add_common(ann)

    table1 = sub.add_parser(
        "table1", help="print Table 1 (CC2650 specifications)"
    )
    add_runtime_flags(table1)

    dual = sub.add_parser(
        "dual", help="maximize reliability under a lifetime bound"
    )
    dual.add_argument(
        "--min-lifetime-days", type=float, required=True,
        help="network lifetime bound in days",
    )
    _add_common(dual)

    ext = sub.add_parser(
        "extensions", help="E1-E3: routing comparison, posture, dual staircase"
    )
    _add_common(ext)

    rob = sub.add_parser(
        "robustness",
        help="E4: nominal vs chance-constrained design under hub-stress faults",
    )
    rob.add_argument(
        "--pdr-min",
        type=float,
        default=85.0,
        help="reliability bound in percent (default 85)",
    )
    rob.add_argument(
        "--quantile",
        type=float,
        default=0.0,
        help="chance-constraint quantile (default 0 = ensemble minimum)",
    )
    rob.add_argument(
        "--outage-fraction",
        type=float,
        default=0.2,
        help="fraction of the horizon the coordinator radio is down",
    )
    rob.add_argument(
        "--ensemble-size",
        type=int,
        default=2,
        help="number of hub-stress scenarios",
    )
    _add_common(rob)

    space = sub.add_parser("space", help="summarize the design space")
    _add_common(space)

    bench = sub.add_parser(
        "bench",
        help="benchmark suites (hotpath: DES kernel, PHY fan-out, MILP "
        "warm starts; fleet: warm cache, work stealing, RPC batching); "
        "writes a JSON report",
    )
    bench.add_argument(
        "--suite",
        default="hotpath",
        choices=("hotpath", "fleet"),
        help="which benchmark suite to run",
    )
    bench.add_argument(
        "--preset",
        default="ci",
        choices=("paper", "ci", "smoke"),
        help="measurement preset for the simulation/MILP benchmarks",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="path of the JSON report (default BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--wearers",
        type=int,
        default=6,
        help="fleet suite: wearer population size",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=2,
        help="fleet suite: worker agent count",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of repeat count per timed section",
    )
    bench.add_argument(
        "--des-events",
        type=int,
        default=50_000,
        help="timer-churn workload size for the DES kernel benchmark",
    )
    add_runtime_flags(bench)

    campaign = sub.add_parser(
        "campaign",
        help="run a fleet campaign: one journaled design run per wearer, "
        "sharded over the worker pool, aggregated into per-cohort "
        "Pareto atlases",
    )
    campaign.add_argument(
        "--wearers",
        type=int,
        default=4,
        help="population size when no --spec file is given",
    )
    campaign.add_argument(
        "--pdr-min",
        type=float,
        action="append",
        default=None,
        metavar="BOUND",
        help="reliability bound in percent; repeat to split the "
        "population into one cohort per bound (default: 90)",
    )
    campaign.add_argument(
        "--mode",
        default="solve",
        choices=("solve", "robust"),
        help="per-wearer accept test: nominal Algorithm 1 or the "
        "chance-constrained robust variant",
    )
    campaign.add_argument(
        "--name", default="fleet", help="campaign name (reporting only)"
    )
    campaign.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="JSON CampaignSpec file; overrides the population flags",
    )
    campaign.add_argument(
        "--shards",
        type=_positive_jobs,
        default=None,
        help="shard count pinning the campaign directory layout "
        "(default: --jobs); a resumed campaign keeps its original "
        "shard count regardless",
    )
    campaign.add_argument(
        "--quantile",
        type=float,
        default=0.0,
        help="robust mode: chance-constraint quantile",
    )
    campaign.add_argument(
        "--ensemble-size",
        type=int,
        default=2,
        help="robust mode: fault scenarios per wearer ensemble",
    )
    campaign.add_argument(
        "--hub-stress",
        action="store_true",
        help="robust mode: deterministic coordinator-outage ensemble "
        "instead of sampled mixed faults",
    )
    campaign.add_argument(
        "--outage-fraction",
        type=float,
        default=0.2,
        help="robust mode: hub-stress outage fraction of the horizon",
    )
    campaign.add_argument(
        "--correlated-links",
        action="store_true",
        help="robust mode: correlated torso-crossing link blackouts in "
        "the sampled ensemble",
    )
    campaign_dir = campaign.add_mutually_exclusive_group()
    campaign_dir.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="fresh campaign directory: per-wearer crash-safe journals "
        "under shards/, deterministic aggregate.json/atlas.json at the "
        "root; continue a killed campaign with --resume DIR",
    )
    campaign_dir.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume the campaign in DIR: completed wearers load their "
        "summaries, in-flight wearers replay their journals, and the "
        "final aggregate is byte-identical to an uninterrupted run",
    )
    _add_common(campaign)

    serve = sub.add_parser(
        "serve",
        help="serve campaigns over an async HTTP API "
        "(submit/status/result/artifacts) with journals as the "
        "durable backend; a killed service resumes every in-flight "
        "campaign on restart",
    )
    serve.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="directory holding one campaign directory per submitted "
        "campaign (scanned for interrupted campaigns at startup)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8732)
    serve.add_argument(
        "--shards",
        type=_positive_jobs,
        default=None,
        help="shard count per campaign (default: --jobs for local "
        "execution; one shard per wearer capped at 8 for fleet "
        "execution)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="fleet execution: seconds a worker's shard lease lives "
        "without a heartbeat before the shard is reclaimed and "
        "reassigned",
    )
    serve.add_argument(
        "--fabric-secret",
        default=None,
        metavar="SECRET",
        help="shared secret for HMAC-signed fabric RPCs (default: "
        "REPRO_FABRIC_SECRET env var; unset = legacy unauthenticated "
        "mode with a loud warning)",
    )
    serve.add_argument(
        "--standby-of",
        default=None,
        metavar="URL",
        help="run as a warm standby of the primary at URL (shares "
        "--root): serve read-only status, auto-promote with a higher "
        "fencing epoch once the primary misses --ping-misses health "
        "probes, or promote on demand via POST /fabric/promote",
    )
    serve.add_argument(
        "--node-name",
        default=None,
        help="stable coordinator identity in the fencing log (default: "
        "pid<PID>; give primaries a stable name so a plain restart "
        "re-adopts its own epoch)",
    )
    serve.add_argument(
        "--ping-interval",
        type=float,
        default=1.0,
        help="standby: seconds between primary health probes",
    )
    serve.add_argument(
        "--ping-misses",
        type=int,
        default=3,
        help="standby: consecutive missed probes before auto-promotion",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="backpressure: maximum concurrently-processed requests "
        "before new ones get 429 + Retry-After",
    )
    serve.add_argument(
        "--min-sync-interval",
        type=float,
        default=0.0,
        help="backpressure: minimum seconds between /fabric/sync "
        "requests on one connection (0 = unlimited)",
    )
    serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="wearer-cache byte cap (LRU eviction past it; default "
        "unbounded)",
    )
    serve.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="wearer-cache entry cap (LRU eviction past it; default "
        "unbounded)",
    )
    add_runtime_flags(serve)

    worker = sub.add_parser(
        "worker",
        help="run a campaign worker agent: pull shard leases from a "
        "coordinator (`serve`), execute the wearers (journaled, so a "
        "reassigned shard resumes from a dead worker's journals), and "
        "commit CRC-checked summaries back",
    )
    worker.add_argument(
        "--coordinator",
        required=True,
        metavar="URL[,URL...]",
        help="ordered coordinator list (primary first, standbys after), "
        "e.g. http://127.0.0.1:8732,http://127.0.0.1:8733 — the worker "
        "fails over down the list when a coordinator dies or answers "
        "fenced/standby",
    )
    worker.add_argument(
        "--workdir",
        required=True,
        metavar="DIR",
        help="scratch root for shard run directories; point multiple "
        "workers at a shared mount and a reassigned shard resumes "
        "from its predecessor's journals",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="worker identity reported to the coordinator "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=1.0,
        help="seconds between pulls when the queue is empty",
    )
    worker.add_argument(
        "--exit-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit once there has been no work for this long "
        "(default: run until SIGTERM)",
    )
    worker.add_argument(
        "--fabric-secret",
        default=None,
        metavar="SECRET",
        help="shared secret for HMAC-signed fabric RPCs (default: "
        "REPRO_FABRIC_SECRET env var; must match the coordinator's)",
    )
    worker.add_argument(
        "--rpc-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request coordinator timeout; a stalled coordinator "
        "(e.g. a paused/zombie primary) counts as unreachable after "
        "this long and the worker fails over down the list",
    )
    add_runtime_flags(worker)

    return parser


def _open_instrumentation(args):
    """Build the run's observability bundle from the parsed flags."""
    from repro.obs import Instrumentation, MetricsRegistry, TraceWriter

    tracer = None
    if getattr(args, "trace_out", None):
        tracer = TraceWriter(args.trace_out)
    return Instrumentation(MetricsRegistry(), tracer)


def _resolve_jobs(args) -> None:
    """Resolve an omitted ``--jobs`` to the auto-detected worker count.

    Detection is ``os.cpu_count()`` clamped to the preset's feasible
    configuration count (no point forking more workers than there are
    configurations to simulate).  An explicit ``--jobs 1`` remains the
    serial escape hatch and is passed through untouched, as is any other
    explicit count.  Both the request and the resolution are recorded on
    ``args`` so the run manifest can report them.
    """
    if not hasattr(args, "jobs"):
        return
    args.jobs_requested = args.jobs
    if args.jobs is not None:
        return
    from repro.core.parallel import auto_jobs

    limit = None
    try:
        from repro.experiments.scenario import make_space

        limit = make_space(args.preset).feasible_count()
    except Exception:
        limit = None  # unknown space: fall back to plain core count
    args.jobs = auto_jobs(limit)


def _write_manifest(args, obs) -> None:
    """First trace line: everything needed to reproduce the run.

    Field order is stable for the scenario-bound subcommands (the golden
    traces pin it); subcommands without a preset/seed (``table1``,
    ``serve``) simply omit the fields that do not apply.
    """
    if not obs.tracing:
        return
    fields = {"command": args.command}
    if hasattr(args, "preset"):
        fields["preset"] = args.preset
    if hasattr(args, "seed"):
        fields["seed"] = args.seed
    jobs = getattr(args, "jobs", None)
    fields["jobs"] = jobs
    fields["jobs_requested"] = getattr(args, "jobs_requested", jobs)
    fields["cache_dir"] = getattr(args, "cache_dir", None)
    fields["batch"] = getattr(args, "batch", "auto")
    if hasattr(args, "preset") and hasattr(args, "seed"):
        from repro.core.result_cache import scenario_fingerprint
        from repro.experiments.scenario import make_scenario

        scenario = make_scenario(args.preset, seed=args.seed)
        fields["scenario_fingerprint"] = scenario_fingerprint(scenario)
    obs.manifest(**fields)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _resolve_jobs(args)

    from repro.obs import runtime as obs_runtime

    obs = _open_instrumentation(args)
    _write_manifest(args, obs)
    try:
        with obs_runtime.activate(obs):
            try:
                code = _run_command(args, obs)
            except Exception as exc:
                from repro.core.journal import JournalError

                if not isinstance(exc, JournalError):
                    raise
                print(f"hi-explore: {exc}", file=sys.stderr)
                code = 2
        obs.event("run.exit", code=code)
        return code
    finally:
        if getattr(args, "metrics_out", None):
            import json

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(obs.metrics.to_dict(), fh, indent=1, sort_keys=True)
                fh.write("\n")
        obs.tracer.close()


def _open_journal(args, **manifest):
    """Open the run journal when --out/--resume was given (else None).

    The manifest pins every argument the trajectory depends on; resuming
    with different arguments is rejected up front rather than producing a
    silently diverging run.
    """
    out = getattr(args, "out", None)
    resume = getattr(args, "resume", None)
    if out is None and resume is None:
        return None
    from repro.core.journal import RunJournal

    if resume is not None:
        return RunJournal.resume(resume, **manifest)
    return RunJournal.create(out, **manifest)


def _finish_journal(journal, result) -> None:
    """Write the deterministic summary next to the journal and close it."""
    if journal is None:
        return
    from repro.core.journal import write_summary

    path = write_summary(journal.directory, result.to_dict())
    journal.close()
    print(f"run journal: {journal.path}")
    print(f"run summary: {path}")


def _build_campaign_spec(args):
    """The population from --spec (a JSON file) or the population flags."""
    from repro.campaign.spec import CampaignSpec, make_population

    if args.spec:
        return CampaignSpec.load(args.spec)
    bounds = args.pdr_min if args.pdr_min else [90.0]
    return make_population(
        args.wearers,
        preset=args.preset,
        base_seed=args.seed,
        pdr_bounds=bounds,
        mode=args.mode,
        name=args.name,
        quantile=args.quantile,
        ensemble_size=args.ensemble_size,
        hub_stress=args.hub_stress,
        outage_fraction=args.outage_fraction,
        correlated_links=args.correlated_links,
    )


def _run_campaign_command(args, obs) -> int:
    import pathlib

    from repro.campaign.aggregate import format_aggregate
    from repro.campaign.runner import run_campaign
    from repro.core.journal import CAMPAIGN_MANIFEST_FILENAME, JournalError

    directory = args.out or args.resume
    if directory is None:
        raise JournalError(
            "campaign needs a directory: --out DIR for a fresh campaign "
            "or --resume DIR to continue a killed one"
        )
    manifest_path = pathlib.Path(directory) / CAMPAIGN_MANIFEST_FILENAME
    if args.out is not None and manifest_path.exists():
        raise JournalError(
            f"{manifest_path} already exists; use --resume to continue "
            "that campaign (or point --out at a fresh directory)"
        )
    if args.resume is not None and not manifest_path.exists():
        raise JournalError(f"no campaign to resume at {manifest_path}")

    spec = _build_campaign_spec(args)
    report = run_campaign(
        spec,
        directory,
        shards=args.shards,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        batch_mode=args.batch,
    )
    print(format_aggregate(report.aggregate))
    telemetry = report.telemetry
    print(
        f"  throughput: {telemetry['wearers_per_minute'] or 0.0:.1f} wearers/min "
        f"over {telemetry['shards']} shard(s), jobs={telemetry['jobs']}, "
        f"{telemetry['resumed_wearers']} resumed"
    )
    print(f"campaign aggregate: {report.aggregate_path}")
    print(f"campaign atlas:     {report.atlas_path}")
    return 0


def _run_command(args, obs) -> int:
    if args.command == "table1":
        from repro.experiments.table1 import format_table1

        print(format_table1())
        return 0

    if args.command == "campaign":
        return _run_campaign_command(args, obs)

    if args.command == "serve":
        from repro.campaign.service import serve_forever

        return serve_forever(
            args.root,
            host=args.host,
            port=args.port,
            jobs=args.jobs or 1,
            shards=args.shards,
            cache_dir=args.cache_dir,
            batch_mode=args.batch,
            lease_ttl=args.lease_ttl,
            fabric_secret=args.fabric_secret,
            standby_of=args.standby_of,
            node_name=args.node_name,
            ping_interval=args.ping_interval,
            ping_misses=args.ping_misses,
            max_inflight=args.max_inflight,
            min_sync_interval=args.min_sync_interval,
            cache_max_bytes=args.cache_max_bytes,
            cache_max_entries=args.cache_max_entries,
        )

    if args.command == "worker":
        from repro.campaign.worker import run_worker

        return run_worker(
            args.coordinator,
            args.workdir,
            name=args.name,
            jobs=args.jobs or 1,
            cache_dir=args.cache_dir,
            batch_mode=args.batch,
            poll_interval=args.poll,
            exit_idle=args.exit_idle,
            fabric_secret=args.fabric_secret,
            rpc_timeout=args.rpc_timeout,
        )

    if args.command == "bench":
        from repro.bench import (
            run_fleet_benchmarks,
            run_hotpath_benchmarks,
            write_report,
        )

        out = args.out or f"BENCH_{args.suite}.json"
        if args.suite == "fleet":
            report = run_fleet_benchmarks(
                preset=args.preset,
                wearers=args.wearers,
                workers=args.workers,
            )
            write_report(report, out)
            print(f"wrote {out}")
            print(
                "warm cache: "
                f"{report['warm_cache']['speedup']:.2f}x  "
                "straggler stealing: "
                f"{report['straggler']['speedup']:.2f}x  "
                "requests/connection: "
                f"{report['rpc']['requests_per_connection']:.1f}"
            )
            return 0
        report = run_hotpath_benchmarks(
            preset=args.preset,
            repeats=args.repeats,
            des_events=args.des_events,
        )
        write_report(report, out)
        print(f"wrote {out}")
        print(
            f"single replicate: {report['speedup_single_replicate']:.2f}x  "
            f"MILP warm starts: {report['speedup_milp_warm']:.2f}x  "
            f"DES throughput: {report['speedup_des_events']:.2f}x"
        )
        return 0

    if args.command == "space":
        from repro.experiments.scenario import make_space

        space = make_space(args.preset)
        print(f"total grid points: {space.total_size}")
        print(f"constraint-satisfying configurations: {space.feasible_count()}")
        print(f"feasible placements by node count: {space.placements_by_size()}")
        return 0

    if args.command == "solve":
        from repro.core.explorer import HumanIntranetExplorer
        from repro.experiments.scenario import get_preset, make_problem

        pdr_min = args.pdr_min / 100.0 if args.pdr_min > 1 else args.pdr_min
        problem = make_problem(
            pdr_min, args.preset, seed=args.seed,
            n_jobs=args.jobs, cache_dir=args.cache_dir,
            batch_mode=args.batch,
        )
        preset = get_preset(args.preset)
        from repro.core.result_cache import scenario_fingerprint

        journal = _open_journal(
            args,
            command="solve",
            preset=args.preset,
            seed=args.seed,
            pdr_min=pdr_min,
            exhaustive=bool(args.exhaustive),
            scenario_fingerprint=scenario_fingerprint(problem.scenario),
        )
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        result = explorer.explore(exhaustive=args.exhaustive, journal=journal)
        print(result.summary())
        for record in result.iterations:
            print(
                f"  iteration {record.index}: analytic P={record.analytic_power_mw:.3f} mW, "
                f"{record.num_candidates} candidates, {len(record.feasible)} feasible"
            )
        print(explorer.oracle.format_stats())
        _finish_journal(journal, result)
        explorer.oracle.close()
        return 0 if result.found else 1

    if args.command == "robust":
        from repro.core.explorer import HumanIntranetExplorer
        from repro.experiments.robustness import resilience_line
        from repro.experiments.scenario import get_preset, make_problem
        from repro.faults.model import hub_stress_ensemble, sample_fault_ensemble
        from repro.faults.resilience import EnsembleOracle

        pdr_min = args.pdr_min / 100.0 if args.pdr_min > 1 else args.pdr_min
        problem = make_problem(
            pdr_min, args.preset, seed=args.seed,
            n_jobs=args.jobs, cache_dir=args.cache_dir,
            batch_mode=args.batch,
        )
        scenario = problem.scenario
        if args.hub_stress:
            ensemble = hub_stress_ensemble(
                scenario.tsim_s,
                coordinator=scenario.coordinator_location,
                outage_fraction=args.outage_fraction,
                size=args.ensemble_size,
            )
        else:
            fault_seed = (
                args.fault_seed if args.fault_seed is not None else args.seed
            )
            ensemble = sample_fault_ensemble(
                args.ensemble_size,
                fault_seed,
                scenario.tsim_s,
                coordinator=scenario.coordinator_location,
                correlated_links=args.correlated_links,
            )
        preset = get_preset(args.preset)
        from repro.core.result_cache import scenario_fingerprint

        journal = _open_journal(
            args,
            command="robust",
            preset=args.preset,
            seed=args.seed,
            pdr_min=pdr_min,
            quantile=args.quantile,
            scenario_fingerprint=scenario_fingerprint(scenario),
            ensemble=[fs.to_dict() for fs in ensemble],
        )
        oracle = EnsembleOracle(
            scenario, ensemble,
            n_jobs=args.jobs, cache_dir=args.cache_dir, obs=obs,
        )
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        result = explorer.explore_robust(
            oracle, quantile=args.quantile, journal=journal
        )
        print("fault ensemble:")
        for fs in ensemble:
            print("  " + fs.describe())
        print(result.summary())
        if result.best is not None:
            print("  " + resilience_line(result.best, args.quantile))
        print(oracle.healthy_oracle.format_stats())
        _finish_journal(journal, result)
        oracle.close()
        return 0 if result.found else 1

    if args.command == "robustness":
        from repro.experiments.robustness import (
            format_robustness,
            run_robustness_comparison,
        )

        pdr_min = args.pdr_min / 100.0 if args.pdr_min > 1 else args.pdr_min
        data = run_robustness_comparison(
            args.preset,
            seed=args.seed,
            pdr_min=pdr_min,
            quantile=args.quantile,
            outage_fraction=args.outage_fraction,
            ensemble_size=args.ensemble_size,
            n_jobs=args.jobs,
            cache_dir=args.cache_dir,
            batch_mode=args.batch,
            obs=obs,
        )
        print(format_robustness(data))
        return 0

    if args.command == "figure3":
        from repro.experiments.figure3 import format_figure3, run_figure3

        print(
            format_figure3(
                run_figure3(
                    args.preset, seed=args.seed,
                    n_jobs=args.jobs, cache_dir=args.cache_dir,
                )
            )
        )
        return 0

    if args.command == "reduction":
        from repro.experiments.reduction import format_reduction, run_reduction

        print(
            format_reduction(
                run_reduction(
                    args.preset, seed=args.seed,
                    n_jobs=args.jobs, cache_dir=args.cache_dir,
                )
            )
        )
        return 0

    if args.command == "dual":
        from repro.core.explorer import HumanIntranetExplorer
        from repro.experiments.scenario import get_preset, make_problem

        problem = make_problem(
            0.5, args.preset, seed=args.seed,
            n_jobs=args.jobs, cache_dir=args.cache_dir,
            batch_mode=args.batch,
        )
        preset = get_preset(args.preset)
        explorer = HumanIntranetExplorer(
            problem, candidate_cap=preset.candidate_cap, obs=obs
        )
        result = explorer.explore_max_reliability(args.min_lifetime_days)
        print(result.summary())
        print(explorer.oracle.format_stats())
        explorer.oracle.close()
        return 0 if result.found else 1

    if args.command == "extensions":
        from repro.experiments.extensions import (
            format_dual_staircase,
            format_posture_sensitivity,
            format_routing_comparison,
            run_dual_staircase,
            run_posture_sensitivity,
            run_routing_comparison,
        )

        print(format_routing_comparison(
            run_routing_comparison(args.preset, seed=args.seed)))
        print()
        print(format_posture_sensitivity(
            run_posture_sensitivity(args.preset, seed=args.seed)))
        print()
        print(format_dual_staircase(
            run_dual_staircase(
                args.preset, seed=args.seed,
                n_jobs=args.jobs, cache_dir=args.cache_dir,
            )))
        return 0

    if args.command == "annealing":
        from repro.experiments.annealing_cmp import (
            format_annealing_comparison,
            run_annealing_comparison,
        )

        print(
            format_annealing_comparison(
                run_annealing_comparison(
                    args.preset, seed=args.seed, sa_steps=args.sa_steps,
                    n_jobs=args.jobs, cache_dir=args.cache_dir,
                )
            )
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
