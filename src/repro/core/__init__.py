"""The paper's primary contribution: MILP + DES design-space exploration.

Modules:

* :mod:`repro.core.power_model` — the coarse analytical power/lifetime
  model (Eqs. 3, 4, 5, 9) and the α correction factor;
* :mod:`repro.core.design_space` — the configuration vector
  (ν, χ) and enumeration of the paper's 12,288-point space;
* :mod:`repro.core.problem` — the optimal mapping problem P (Eq. 8):
  scenario parameters, topological and configuration constraints, PDR
  bound;
* :mod:`repro.core.milp_builder` — the relaxed MILP P̃ used by RunMILP;
* :mod:`repro.core.evaluator` — the simulation oracle (RunSim) with
  caching and replicate averaging;
* :mod:`repro.core.explorer` — Algorithm 1 itself.
"""

from repro.core.design_space import Configuration, DesignSpace
from repro.core.power_model import CoarsePowerModel
from repro.core.problem import DesignProblem, ScenarioParameters
from repro.core.milp_builder import MilpFormulation
from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.explorer import (
    ExplorationResult,
    HumanIntranetExplorer,
    IterationRecord,
)
from repro.core.journal import JournalError, RunJournal

__all__ = [
    "JournalError",
    "RunJournal",
    "Configuration",
    "DesignSpace",
    "CoarsePowerModel",
    "DesignProblem",
    "ScenarioParameters",
    "MilpFormulation",
    "SimulationOracle",
    "EvaluationRecord",
    "HumanIntranetExplorer",
    "ExplorationResult",
    "IterationRecord",
]
