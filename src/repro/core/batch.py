"""Batched replicate kernel: many lanes of one topology in one pass.

The scalar simulator evaluates one (configuration, fault world,
replicate) per discrete-event run.  The design loop and the
chance-constrained robust explorer evaluate the *same* topology under
many fault worlds and TX-power variants, and those runs share almost
everything: the TDMA schedule and the traffic generation are
deterministic, and the channel draws are identical across lanes because
every lane's streams derive from the same ``(seed, replicate)`` pair
(see :mod:`repro.des.rng`).  This kernel exploits that sharing:

* the **event skeleton** (traffic generation instants, slot grid,
  transmission end times) is derived once and driven through a single
  merged heap for all lanes — lanes waiting on the same slot or
  transmission-end instant share one heap entry;
* the **raw channel draws** are materialized once per stream as
  structure-of-arrays blocks (:mod:`repro.channel.batch_draws`),
  generated in vectorized numpy chunks; each lane walks the shared
  blocks with a private integer cursor;
* **fault worlds** are compiled into per-lane masks — transition lists
  over the shared timeline, queried with amortized-O(1) advancing
  pointers (event times are monotone) — instead of simulator events.

A *lane* is one ``(configuration variant, fault world)`` pair.  All
configurations in a batch must share placement/MAC/routing (they may
differ in TX power, which only changes the precomputed fan-out plans);
worlds are arbitrary :class:`repro.faults.model.FaultScenario` members
(``None`` = healthy).

Bit-identity contract
---------------------
Each lane's :class:`repro.net.network.SimulationOutcome` equals the
scalar DES outcome for that (config, world, replicate) bit-for-bit.  The
hot arithmetic is a transcription of the scalar code paths — the same
``math.exp``/``math.sqrt`` calls in the same order on the same Python
floats — *not* a numerically-equivalent reformulation; numpy appears
only in bulk draw-block generation, whose bitstream equivalence with the
scalar draw calls is asserted by tests.  The ``exp`` memo tables are
keyed by the exact ``dt`` argument, so a memo hit returns the float the
scalar call would have produced.  The scalar DES remains the reference
implementation, exactly as :mod:`repro.bench.reference` frames it: the
``ensemble_batched`` benchmark asserts full-outcome equality before
reporting any speedup, and the test suite sweeps seeds, replicate
counts, fault ensembles, and TX variants.

Supported surface
-----------------
:func:`batch_unsupported_reason` gates entry; everything else falls back
to the scalar path.  The kernel handles TDMA + star routing with the
fixed replicate protocol and a packet airtime strictly inside the TDMA
slot.  Under exactly these conditions the schedule provably never
overlaps transmissions (slot starts are at least one slot apart and the
airtime is shorter), so the interference/capture machinery is statically
dead, carrier sensing is never consulted, and the per-transmission PHY
reduces to the fan-out power computation.  Two timing coincidences are
assumed away as measure-zero (documented in DESIGN.md §10): a traffic
generation instant (irrational offset from the slot grid almost surely)
never collides with a slot start or a transmission end at the exact same
float, so the kernel's GEN < SLOT < FIN tie order at equal timestamps is
never exercised against the engine's schedule-order tie-breaking.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.channel.batch_draws import NORMAL, UNIFORM, DrawBlocks
from repro.core.design_space import Configuration
from repro.core.problem import ScenarioParameters
from repro.des.rng import RngStreams
from repro.faults.model import FaultKind, FaultScenario
from repro.library.mac_options import MacKind, RoutingKind
from repro.net.network import Network, SimulationOutcome, average_outcomes
from repro.net.stats import NetworkStats
from repro.obs.runtime import get_active

__all__ = ["batch_unsupported_reason", "evaluate_batch"]

#: Heap event kinds; the numeric order is the tie order at equal
#: timestamps (a measure-zero event under the supported surface — see
#: the module docstring).
_GEN, _SLOT, _FIN = 0, 1, 2

#: Post-horizon drain, matching the default ``drain_s`` of
#: :meth:`repro.net.network.Network.run`.
_DRAIN_S = 0.5


def batch_unsupported_reason(
    scenario: ScenarioParameters, config: Configuration
) -> Optional[str]:
    """Why this (scenario, configuration) cannot take the batched path.

    Returns ``None`` when the batched kernel supports it, otherwise a
    short human-readable reason (surfaced in oracle stats and traces).
    """
    if config.mac is not MacKind.TDMA:
        return f"mac={config.mac.value} (only the static TDMA schedule batches)"
    if config.routing is not RoutingKind.STAR:
        return f"routing={config.routing.value} (only star relay is transcribed)"
    if scenario.adaptive_replicates:
        return "adaptive replicate protocol (replicate count is data-dependent)"
    airtime = scenario.radio.packet_airtime_s(scenario.app.packet_bytes)
    if not airtime < scenario.tdma_slot_s:
        return (
            "packet airtime does not fit strictly inside a TDMA slot "
            "(transmissions could overlap)"
        )
    return None


# -- fault-world compilation -----------------------------------------------------


class _WorldMask:
    """One fault world compiled to timeline predicates plus analytic
    counter contributions (events the scalar injector would execute).

    ``dark_*`` replays the per-node ``radio.failed`` flag as a sorted
    transition list (assignment semantics, so a death followed by an
    unrelated outage-recovery composes exactly like the scalar flag
    writes).  ``block_*`` replays the blackout refcount as prefix sums.
    Fault handlers run at :data:`repro.des.engine.FAULT_PRIORITY` —
    before any protocol event at the same timestamp — so a query at t
    sees every transition with time ≤ t.
    """

    __slots__ = (
        "dark_times",
        "dark_states",
        "block_times",
        "block_counts",
        "death_s",
        "drains",
        "fault_events",
        "fault_injected",
        "first_t",
    )

    def __init__(self) -> None:
        self.dark_times: Dict[int, List[float]] = {}
        self.dark_states: Dict[int, List[bool]] = {}
        self.block_times: Dict[Tuple[int, int], List[float]] = {}
        self.block_counts: Dict[Tuple[int, int], List[int]] = {}
        #: earliest NODE_DEATH per location (halts traffic generation).
        self.death_s: Dict[int, float] = {}
        #: location -> [(start, end, factor)] in injector install order.
        self.drains: Dict[int, List[Tuple[float, float, float]]] = {}
        #: simulator events the scalar injector's handlers would execute
        #: within the run horizon, and the faults.injected increments
        #: those executions (plus drain installs) would make.
        self.fault_events = 0
        self.fault_injected = 0
        #: earliest dark/block transition — the world behaves exactly
        #: like the healthy trunk before this instant (drains never
        #: affect behaviour, only the teardown power scale).  ``inf``
        #: for drain-only worlds.
        self.first_t = math.inf

    # Reference (bisect-based) queries; the kernel hot path uses
    # advancing pointers instead, but tests exercise these directly.

    def dark(self, loc: int, t: float) -> bool:
        times = self.dark_times.get(loc)
        if times is None:
            return False
        i = bisect_right(times, t) - 1
        return self.dark_states[loc][i] if i >= 0 else False

    def blocked(self, key: Tuple[int, int], t: float) -> bool:
        times = self.block_times.get(key)
        if times is None:
            return False
        i = bisect_right(times, t) - 1
        return i >= 0 and self.block_counts[key][i] > 0


def _compile_world(
    world: Optional[FaultScenario], placement: Sequence[int], until: float
) -> Optional[_WorldMask]:
    """Compile one fault world against a placement; ``None`` when the
    world is healthy or entirely inapplicable (the scalar path attaches
    no fault machinery in that case either — same cold path)."""
    if world is None:
        return None
    applicable = world.applicable(placement)
    if not applicable:
        return None
    mask = _WorldMask()
    # Raw transitions carry the injector's install order so same-time
    # flips replay in the engine's stable (time, priority, seq) order.
    dark_raw: Dict[int, List[Tuple[float, int, bool]]] = {}
    block_raw: Dict[Tuple[int, int], List[Tuple[float, int, int]]] = {}
    groups: Dict[str, List] = {}
    order = 0
    events = 0
    injected = 0
    for spec in applicable:
        if spec.kind is FaultKind.LINK_BLACKOUT and spec.group is not None:
            groups.setdefault(spec.group, []).append(spec)
            continue
        if spec.kind is FaultKind.NODE_DEATH:
            dark_raw.setdefault(spec.location, []).append(
                (spec.start_s, order, True)
            )
            order += 1
            prev = mask.death_s.get(spec.location)
            if prev is None or spec.start_s < prev:
                mask.death_s[spec.location] = spec.start_s
            if spec.start_s <= until:
                events += 1
                injected += 1
        elif spec.kind is FaultKind.HUB_OUTAGE:
            lst = dark_raw.setdefault(spec.location, [])
            lst.append((spec.start_s, order, True))
            lst.append((spec.end_s, order + 1, False))
            order += 2
            if spec.start_s <= until:
                events += 1
                injected += 1
            if spec.end_s <= until:
                events += 1
                injected += 1
        elif spec.kind is FaultKind.LINK_BLACKOUT:
            lst = block_raw.setdefault(spec.link, [])
            lst.append((spec.start_s, order, 1))
            lst.append((spec.end_s, order + 1, -1))
            order += 2
            if spec.start_s <= until:
                events += 1
                injected += 1
            if spec.end_s <= until:
                events += 1
                injected += 1
        elif spec.kind is FaultKind.BATTERY_DRAIN:
            end = spec.end_s if math.isfinite(spec.end_s) else math.inf
            mask.drains.setdefault(spec.location, []).append(
                (spec.start_s, end, spec.factor)
            )
            # The scalar injector notes the drain (and its counter
            # increment) at install time, unconditionally.
            injected += 1
    for name, members in sorted(groups.items()):
        windows = {(m.start_s, m.duration_s) for m in members}
        if len(windows) != 1:
            # Same contract (and message) as FaultInjector.install.
            raise ValueError(
                f"correlated blackout group {name!r} mixes windows "
                f"{sorted(windows)}; one group is one shadowing "
                "episode and must share start/duration"
            )
        lead = members[0]
        for spec in members:
            lst = block_raw.setdefault(spec.link, [])
            lst.append((lead.start_s, order, 1))
            lst.append((lead.end_s, order + 1, -1))
        order += 2
        if lead.start_s <= until:
            events += 1
            injected += len(members)
        if lead.end_s <= until:
            events += 1
            injected += len(members)
    for loc, raw in dark_raw.items():
        raw.sort()
        mask.dark_times[loc] = [t for t, _o, _v in raw]
        mask.dark_states[loc] = [v for _t, _o, v in raw]
    for key, raw in block_raw.items():
        raw.sort()
        times: List[float] = []
        counts: List[int] = []
        count = 0
        for t, _o, delta in raw:
            count += delta
            times.append(t)
            counts.append(count)
        mask.block_times[key] = times
        mask.block_counts[key] = counts
    mask.fault_events = events
    mask.fault_injected = injected
    first = math.inf
    for times in mask.dark_times.values():
        if times and times[0] < first:
            first = times[0]
    for times in mask.block_times.values():
        if times and times[0] < first:
            first = times[0]
    mask.first_t = first
    return mask


def _power_scale(
    windows: Optional[List[Tuple[float, float, float]]], horizon_s: float
) -> float:
    """Transcription of :meth:`repro.faults.injector.FaultState.
    power_scale` (same accumulation order, same float ops)."""
    if not windows:
        return 1.0
    scale = 1.0
    for start, end, factor in windows:
        overlap = max(0.0, min(end, horizon_s) - min(start, horizon_s))
        scale += (factor - 1.0) * (overlap / horizon_s)
    return scale


# -- per-variant geometry --------------------------------------------------------


class _Variant:
    """Everything tx-power-dependent, harvested from a template network.

    The template :class:`~repro.net.network.Network` is built exactly
    like a replicate job's (healthy, replicate 0) and mined for its
    fan-out plans — which encode receiver order, mean path losses, and
    the dead-pair skips (skips depend on the TX level) — then discarded.
    """

    __slots__ = ("tx_dbm", "tx_power_mw", "raw_entries", "airtime", "network")

    def __init__(self, scenario: ScenarioParameters, config: Configuration):
        tx_mode = scenario.tx_mode(config.tx_dbm)
        net = Network(
            placement=config.placement,
            radio_spec=scenario.radio,
            tx_mode=tx_mode,
            mac_options=scenario.mac_options(config.mac),
            routing_options=scenario.routing_options(config.routing),
            app_params=scenario.app,
            battery=scenario.battery,
            seed=scenario.seed,
            replicate=0,
            body=scenario.body,
            pathloss_params=scenario.pathloss,
            fading_params=scenario.fading,
        )
        self.tx_dbm = tx_mode.output_dbm
        self.tx_power_mw = tx_mode.power_mw
        self.airtime = scenario.radio.packet_airtime_s(
            scenario.app.packet_bytes
        )
        placement = net.placement
        index_of = {loc: i for i, loc in enumerate(placement)}
        #: per sender index: [(rx, rx_idx, mean_pl, skip, pair_key,
        #: sensitivity), ...] in plan (= delivery) order.
        self.raw_entries: List[List[tuple]] = []
        for loc in placement:
            plan = net.medium._plan_for(net.nodes[loc].radio)
            rows = []
            for (rx, mean_pl, skip), sens in zip(plan.entries, plan.sens_py):
                key = (loc, rx) if loc <= rx else (rx, loc)
                rows.append((rx, index_of[rx], mean_pl, skip, key, sens))
            self.raw_entries.append(rows)
        self.network = net  # kept briefly for channel-constant harvesting


# -- the kernel ------------------------------------------------------------------


class _BatchKernel:
    """One batch: shared skeleton + per-lane state, replicates run
    sequentially (each replicate has its own streams and phases)."""

    def __init__(
        self,
        scenario: ScenarioParameters,
        configs: Sequence[Configuration],
        worlds: Sequence[Optional[FaultScenario]],
    ) -> None:
        configs = list(configs)
        worlds = list(worlds)
        if not configs:
            raise ValueError("need at least one configuration to batch")
        if not worlds:
            raise ValueError("need at least one fault world to batch")
        if scenario.replicates < 1:
            raise ValueError("need at least one replicate")
        reason = batch_unsupported_reason(scenario, configs[0])
        if reason is not None:
            raise ValueError(f"configuration is not batchable: {reason}")
        shared = (configs[0].placement, configs[0].mac, configs[0].routing)
        for config in configs[1:]:
            if (config.placement, config.mac, config.routing) != shared:
                raise ValueError(
                    "all configurations of one batch must share "
                    "placement/mac/routing (only the TX level may vary)"
                )
        self.scenario = scenario
        self.configs = configs
        self.worlds = worlds
        self.variants = [_Variant(scenario, c) for c in configs]
        self.placement: Tuple[int, ...] = tuple(sorted(set(shared[0])))
        self.coordinator = scenario.coordinator_location
        self.coord_idx = self.placement.index(self.coordinator)
        self.until = scenario.tsim_s + _DRAIN_S
        self.masks = [
            _compile_world(w, self.placement, self.until) for w in worlds
        ]
        self.lanes = [
            (ci, wi)
            for ci in range(len(configs))
            for wi in range(len(worlds))
        ]
        # Channel constants, harvested from the first template channel so
        # derived floats (the shadowing relaxation rate in particular)
        # are the exact objects the scalar path computes.
        probe = self.variants[0].network
        fading = probe.channel.fading
        shadowing = probe.channel.shadowing
        self.sigma = fading._sigma
        self.tau = fading._tau
        self.clip = fading._clip_limit
        self.pi = shadowing._pi
        self.relax = shadowing._relax
        self.depth = shadowing.params.shadow_depth_db
        self.shadow_on = self.depth > 0 and shadowing.params.shadow_fraction > 0
        for variant in self.variants:
            variant.network = None  # templates served their purpose
        # Pair indexing: every unordered link among the placement gets a
        # dense integer id shared by fading state, draw blocks, and
        # blackout masks.
        n = len(self.placement)
        self.pair_index: Dict[Tuple[int, int], int] = {}
        self.pair_names: List[str] = []
        for rows in self.variants[0].raw_entries:
            for _rx, _ri, _pl, _sk, key, _se in rows:
                if key not in self.pair_index:
                    self.pair_index[key] = len(self.pair_names)
                    self.pair_names.append(f"fading/{key[0]}-{key[1]}")
        #: per variant, per sender index: rows of
        #: (rx, rx_idx, mean_pl, skip, pair_idx, sensitivity).
        self.entries: List[List[List[tuple]]] = []
        for variant in self.variants:
            per_sender = []
            for rows in variant.raw_entries:
                per_sender.append(
                    [
                        (rx, ri, pl, sk, self.pair_index[key], se)
                        for rx, ri, pl, sk, key, se in rows
                    ]
                )
            self.entries.append(per_sender)
        # Per-world mask templates in index space (times/states shared;
        # each lane gets fresh advancing pointers every replicate).
        self._wi_dark: List[Optional[tuple]] = []
        self._wi_blk: List[Optional[tuple]] = []
        self._wi_any: List[Optional[tuple]] = []
        for mask in self.masks:
            if mask is None or not mask.dark_times:
                self._wi_dark.append(None)
            else:
                self._wi_dark.append(
                    tuple(
                        (mask.dark_times[loc], mask.dark_states[loc])
                        if loc in mask.dark_times
                        else None
                        for loc in self.placement
                    )
                )
            if mask is None or not mask.block_times:
                self._wi_blk.append(None)
                self._wi_any.append(None)
            else:
                per: List[Optional[tuple]] = [None] * len(self.pair_names)
                for key, times in mask.block_times.items():
                    pidx = self.pair_index.get(key)
                    if pidx is not None:
                        per[pidx] = (times, mask.block_counts[key])
                applicable = [e for e in per if e is not None]
                if not applicable:
                    self._wi_blk.append(None)
                    self._wi_any.append(None)
                else:
                    self._wi_blk.append(tuple(per))
                    # Union timeline: total blocked-pair count over all
                    # applicable pairs.  While it reads zero, no row of
                    # any transmission is blocked, so the kernel can take
                    # the (much cheaper) no-blackout fast path even on
                    # lanes that carry blackout windows.
                    deltas: List[Tuple[float, int]] = []
                    for b_times, b_counts in applicable:
                        prev = 0
                        for tt, c in zip(b_times, b_counts):
                            deltas.append((tt, c - prev))
                            prev = c
                    deltas.sort()
                    u_times: List[float] = []
                    u_counts: List[int] = []
                    total = 0
                    for tt, d in deltas:
                        total += d
                        u_times.append(tt)
                        u_counts.append(total)
                    self._wi_any.append((u_times, u_counts))
        # TDMA geometry.
        slot_s = scenario.tdma_slot_s
        self.slot_offsets = [i * slot_s for i in range(n)]
        self.frame = n * slot_s
        self.airtime = self.variants[0].airtime
        self.buffer_size = scenario.mac_buffer_size
        self.peers = [
            [p for p in self.placement if p != loc] for loc in self.placement
        ]

    # -- public entry ------------------------------------------------------------

    def run(self) -> Dict[Tuple[int, int], SimulationOutcome]:
        per_lane: List[List[SimulationOutcome]] = [[] for _ in self.lanes]
        for rep in range(self.scenario.replicates):
            for idx, outcome in enumerate(self.run_replicate(rep)):
                per_lane[idx].append(outcome)
        battery = self.scenario.battery
        return {
            self.lanes[idx]: average_outcomes(outs, battery)
            for idx, outs in enumerate(per_lane)
        }

    # -- one replicate across all lanes ------------------------------------------

    def run_replicate(self, rep: int) -> List[SimulationOutcome]:
        scenario = self.scenario
        tsim = scenario.tsim_s
        until = self.until
        placement = self.placement
        n_nodes = len(placement)
        n_pairs = len(self.pair_names)
        period = scenario.app.period_s
        lanes = self.lanes
        n_lanes = len(lanes)
        masks = self.masks
        # Fork-on-divergence: a faulted lane behaves exactly like a
        # healthy run of the same TX variant until its world's first
        # dark/block transition (fault handlers run at FAULT_PRIORITY,
        # before any protocol event at the same instant, so the fork
        # point is "before the first event at t >= first transition").
        # One virtual trunk lane per variant carries that shared healthy
        # prefix; real lanes start dormant and fork off a state copy on
        # demand.  Healthy and drain-only lanes never diverge at all and
        # simply read the trunk's state at teardown.
        n_cis = len(self.variants)
        L = n_lanes + n_cis
        trunk_T = [n_lanes + ci for ci, _wi in lanes]
        # Fan-out rows specialized per consumer: the TX loop reads
        # (rx_idx, mean_pl, skip, pidx), the FIN loop (rx, rx_idx, sens).
        ent_tx = [
            [[(r[1], r[2], r[3], r[4]) for r in rows] for rows in self.entries[ci]]
            for ci in range(n_cis)
        ]
        ent_fin = [
            [[(r[0], r[1], r[5]) for r in rows] for rows in self.entries[ci]]
            for ci in range(n_cis)
        ]
        lane_tx_rows = [ent_tx[ci] for ci, _wi in lanes] + ent_tx
        lane_fin_rows = [ent_fin[ci] for ci, _wi in lanes] + ent_fin
        lane_tx = [self.variants[ci].tx_dbm for ci, _wi in lanes]
        for ci in range(n_cis):
            lane_tx.append(self.variants[ci].tx_dbm)
        peers_di = [
            [placement.index(p) for p in self.peers[ni]]
            for ni in range(n_nodes)
        ]
        # A trunk records windowed stats iff any of its followers is a
        # masked lane: forked lanes inherit the trunk's bins (the scalar
        # path enables windows from t=0), while extra bins on the trunk
        # itself are invisible to healthy followers (windowed_pdr is
        # only read for masked lanes).
        trunk_win = [False] * n_cis
        for ci, wi in lanes:
            if masks[wi] is not None:
                trunk_win[ci] = True
        airtime = self.airtime
        buffer_size = self.buffer_size
        coord = self.coordinator
        coord_idx = self.coord_idx
        offsets = self.slot_offsets
        frame = self.frame
        sigma = self.sigma
        tau = self.tau
        clip = self.clip
        pi = self.pi
        relax = self.relax
        depth = self.depth
        shadow_on = self.shadow_on
        neg_inf = -math.inf
        exp = math.exp
        sqrt = math.sqrt
        ceil = math.ceil
        push = heappush
        pop = heappop

        # Traffic skeleton: the generation instants of the application
        # chain (phase, phase+T, ...) up to and including the stopper —
        # the first instant ≥ tsim, whose event executes but generates
        # nothing.  Phases are drawn through the same RngStreams call
        # the Application constructor makes.
        phase_rng = RngStreams(seed=scenario.seed, replicate=rep)
        cands: List[List[float]] = []
        for loc in placement:
            phase = phase_rng.uniform(f"app_phase/{loc}", 0.0, period)
            chain = [phase]
            while chain[-1] < tsim:
                chain.append(chain[-1] + period)
            cands.append(chain)
        # Stop index per node per lane: the first candidate ≥
        # min(earliest death, tsim).  (A death handler at exactly a
        # generation instant preempts it: FAULT_PRIORITY.)
        stop_T: List[List[int]] = []
        for ni, loc in enumerate(placement):
            chain = cands[ni]
            by_wi = []
            for mask in masks:
                threshold = tsim
                if mask is not None:
                    death = mask.death_s.get(loc)
                    if death is not None and death < threshold:
                        threshold = death
                by_wi.append(bisect_left(chain, threshold))
            sk_h = bisect_left(chain, tsim)
            stop_T.append(
                [by_wi[wi] for _ci, wi in lanes] + [sk_h] * n_cis
            )

        # Shared raw-draw blocks; lanes advance private cursors.
        blocks = DrawBlocks(seed=scenario.seed, replicate=rep)
        pair_blocks = [blocks.block(nm, NORMAL) for nm in self.pair_names]
        pair_vals = [b.values for b in pair_blocks]
        node_blocks = [
            blocks.block(f"shadow/{loc}", UNIFORM) for loc in placement
        ]
        node_vals = [b.values for b in node_blocks]
        # exp() memos shared across lanes: rho/decay are pure functions
        # of dt, and the same dt values recur across the slot grid.
        # Keyed by the exact dt, so memo hits return the float the scalar
        # call chain would have produced: the OU pull/diffusion pair
        # (rho, sigma*sqrt(1-rho^2)) and the shadowing re-occlusion
        # probabilities (from-off, from-on) are pure functions of dt,
        # and the same dt values recur across the slot grid.
        ou_memo: Dict[float, tuple] = {}
        shm_memo: Dict[float, tuple] = {}

        # Per-lane channel state (flat, integer-indexed); trunk lanes
        # live at indices n_lanes..L-1.
        f_t = [[0.0] * n_pairs for _ in range(L)]
        f_v = [[0.0] * n_pairs for _ in range(L)]
        f_cur = [[0] * n_pairs for _ in range(L)]
        f_init = [[False] * n_pairs for _ in range(L)]
        s_t = [[0.0] * n_nodes for _ in range(L)]
        s_occ = [[False] * n_nodes for _ in range(L)]
        s_cur = [[0] * n_nodes for _ in range(L)]
        s_init = [[False] * n_nodes for _ in range(L)]

        # Per-lane mask runtime (shared times/states, private pointers).
        none_nodes = (None,) * n_nodes
        lane_dark: List[Sequence] = []
        lane_blk: List[Optional[list]] = []
        lane_any: List[Optional[list]] = []
        for _ci, wi in lanes:
            dark_tmpl = self._wi_dark[wi]
            if dark_tmpl is None:
                lane_dark.append(none_nodes)
            else:
                lane_dark.append(
                    [
                        None if e is None else [e[0], e[1], 0, len(e[0])]
                        for e in dark_tmpl
                    ]
                )
            blk_tmpl = self._wi_blk[wi]
            if blk_tmpl is None:
                lane_blk.append(None)
                lane_any.append(None)
            else:
                lane_blk.append(
                    [
                        None if e is None else [e[0], e[1], 0, len(e[0])]
                        for e in blk_tmpl
                    ]
                )
                any_tmpl = self._wi_any[wi]
                lane_any.append(
                    [any_tmpl[0], any_tmpl[1], 0, len(any_tmpl[0])]
                )
        for _ in range(n_cis):
            lane_dark.append(none_nodes)
            lane_blk.append(None)
            lane_any.append(None)

        # Per-lane protocol state.  ``pend_g`` remembers the slot
        # instant a pending SLOT entry was scheduled for, so a forking
        # lane can re-join its trunk's still-pending groups.
        queues = [[deque() for _ in range(n_nodes)] for _ in range(L)]
        in_flight: List[List[Optional[tuple]]] = [
            [None] * n_nodes for _ in range(L)
        ]
        slot_pending = [[False] * n_nodes for _ in range(L)]
        pend_g = [[0.0] * n_nodes for _ in range(L)]
        stats_list: List[NetworkStats] = []
        for _ci, wi in lanes:
            st = NetworkStats(list(placement))
            if masks[wi] is not None:
                st.enable_windows(Network.FAULT_WINDOW_S)
            stats_list.append(st)
        for ci in range(n_cis):
            st = NetworkStats(list(placement))
            if trunk_win[ci]:
                st.enable_windows(Network.FAULT_WINDOW_S)
            stats_list.append(st)
        stats_nodes = [
            [st.nodes[loc] for loc in placement] for st in stats_list
        ]
        # Hot counters flattened out of the NodeStats objects: the loop
        # accumulates into plain lists (same order, same float ops as the
        # scalar attribute updates) and the teardown writes them back
        # before any metric is read.  The sent/received/windowed dicts
        # become integer arrays (indexed by placement position / time
        # bin) and are rebuilt as dicts at teardown — every metric the
        # outcome reads is a sum or keyed lookup, so key order is
        # immaterial.  The dedup set stays live (it is behavioural).
        uids_s = [[ns.delivered_uids for ns in row] for row in stats_nodes]
        n_bins = int(until / Network.FAULT_WINDOW_S) + 2
        sent_c = [[[0] * n_nodes for _ in range(n_nodes)] for _ in range(L)]
        recv_c = [[[0] * n_nodes for _ in range(n_nodes)] for _ in range(L)]
        wsent_c = [[[0] * n_bins for _ in range(n_nodes)] for _ in range(L)]
        wrecv_c = [[[0] * n_bins for _ in range(n_nodes)] for _ in range(L)]
        lane_win = [masks[wi] is not None for _ci, wi in lanes] + trunk_win
        window_s = Network.FAULT_WINDOW_S
        a_txs = [[0.0] * n_nodes for _ in range(L)]
        a_rxs = [[0.0] * n_nodes for _ in range(L)]
        a_lat = [[0.0] * n_nodes for _ in range(L)]
        c_tx = [[0] * n_nodes for _ in range(L)]
        c_rx = [[0] * n_nodes for _ in range(L)]
        c_bsen = [[0] * n_nodes for _ in range(L)]
        c_bdrop = [[0] * n_nodes for _ in range(L)]
        c_ftx = [[0] * n_nodes for _ in range(L)]
        c_frx = [[0] * n_nodes for _ in range(L)]
        c_rel = [[0] * n_nodes for _ in range(L)]
        relayed: List[set] = [set() for _ in range(L)]
        executed = [0] * L
        # Whether every node of a lane shares the same shadow tick time
        # (true until the lane's first general-path transmission): the
        # fast path then resolves dt -> re-occlusion probabilities once
        # per transmission instead of per node.
        s_uni = [True] * L

        def tick_shadow(l: int, m: int, t: float) -> bool:
            """Lazy-path NodeShadowing tick (the fast path inlines it)."""
            sil = s_init[l]
            stl = s_t[l]
            sol = s_occ[l]
            scl = s_cur[l]
            if not sil[m]:
                i = scl[m]
                scl[m] = i + 1
                vals = node_vals[m]
                try:
                    z = vals[i]
                except IndexError:
                    z = node_blocks[m].get(i)
                occ = z < pi
                sil[m] = True
                stl[m] = t
                sol[m] = occ
                return occ
            if t > stl[m]:
                dt = t - stl[m]
                pp = shm_memo.get(dt)
                if pp is None:
                    decay = exp(-relax * dt)
                    pp = (pi * (1.0 - decay), pi + (1.0 - pi) * decay)
                    shm_memo[dt] = pp
                p_on = pp[1] if sol[m] else pp[0]
                i = scl[m]
                scl[m] = i + 1
                vals = node_vals[m]
                try:
                    z = vals[i]
                except IndexError:
                    z = node_blocks[m].get(i)
                occ = z < p_on
                stl[m] = t
                sol[m] = occ
                return occ
            return sol[m]

        # Event heap: shared GEN skeleton plus grouped SLOT/FIN entries —
        # lanes waiting on the same (instant, node) share one entry.
        heap: List[tuple] = []
        for ni in range(n_nodes):
            chain = cands[ni]
            for k in range(len(chain)):
                heap.append((chain[k], _GEN, ni, k))
        heapify(heap)
        slot_groups: Dict[Tuple[float, int], List[int]] = {}
        fin_groups: Dict[Tuple[float, int], List[int]] = {}

        # Only live lanes (trunks, plus lanes already forked) execute
        # events; the fork schedule is consumed front-to-back as event
        # time crosses each lane's first transition.
        live = list(range(n_lanes, L))
        forked = [False] * n_lanes
        forks: List[Tuple[float, int]] = sorted(
            (masks[wi].first_t, l)
            for l, (_ci, wi) in enumerate(lanes)
            if masks[wi] is not None and masks[wi].first_t <= until
        )
        fi = 0
        nf = len(forks)

        def fork_lane(l: int) -> None:
            """Split lane ``l`` off its trunk: copy the trunk's state,
            re-join its pending SLOT/FIN groups, and mark it live."""
            T = trunk_T[l]
            forked[l] = True
            f_t[l] = f_t[T][:]
            f_v[l] = f_v[T][:]
            f_cur[l] = f_cur[T][:]
            f_init[l] = f_init[T][:]
            s_t[l] = s_t[T][:]
            s_occ[l] = s_occ[T][:]
            s_cur[l] = s_cur[T][:]
            s_init[l] = s_init[T][:]
            s_uni[l] = s_uni[T]
            queues[l] = [deque(q) for q in queues[T]]
            in_flight[l] = in_flight[T][:]
            slot_pending[l] = slot_pending[T][:]
            pend_g[l] = pend_g[T][:]
            executed[l] = executed[T]
            relayed[l] = set(relayed[T])
            a_txs[l] = a_txs[T][:]
            a_rxs[l] = a_rxs[T][:]
            a_lat[l] = a_lat[T][:]
            c_tx[l] = c_tx[T][:]
            c_rx[l] = c_rx[T][:]
            c_bsen[l] = c_bsen[T][:]
            c_bdrop[l] = c_bdrop[T][:]
            c_ftx[l] = c_ftx[T][:]
            c_frx[l] = c_frx[T][:]
            c_rel[l] = c_rel[T][:]
            sent_c[l] = [r[:] for r in sent_c[T]]
            recv_c[l] = [r[:] for r in recv_c[T]]
            wsent_c[l] = [r[:] for r in wsent_c[T]]
            wrecv_c[l] = [r[:] for r in wrecv_c[T]]
            rowT = stats_nodes[T]
            rowL = stats_nodes[l]
            for m in range(n_nodes):
                # In-place update: the prefetched uids_s row aliases this
                # set, and it starts empty, so update == copy.
                rowL[m].delivered_uids.update(rowT[m].delivered_uids)
            spl = slot_pending[l]
            ifl = in_flight[l]
            pgl = pend_g[l]
            for m in range(n_nodes):
                if spl[m]:
                    slot_groups[(pgl[m], m)].append(l)
                pending = ifl[m]
                if pending is not None:
                    fin_groups[(pending[3], m)].append(l)
            live.append(l)

        while heap:
            t0 = heap[0][0]
            if t0 > until:
                break
            while fi < nf and forks[fi][0] <= t0:
                fork_lane(forks[fi][1])
                fi += 1
            entry = pop(heap)
            t = entry[0]
            kind = entry[1]
            ni = entry[2]

            if kind == _GEN:
                k = entry[3]
                peers = self.peers[ni]
                j = k % len(peers)
                dest = peers[j]
                di = peers_di[ni][j]
                loc = placement[ni]
                stop_row = stop_T[ni]
                pkt = (loc, k, dest, t, ni)
                win_idx = -1
                g = -1.0
                for l in live:
                    sk = stop_row[l]
                    if k > sk:
                        continue
                    executed[l] += 1
                    if k == sk:
                        continue
                    sent_c[l][ni][di] += 1
                    if lane_win[l]:
                        if win_idx < 0:
                            win_idx = int(t / window_s)
                        wsent_c[l][ni][win_idx] += 1
                    q = queues[l][ni]
                    if len(q) >= buffer_size:
                        c_bdrop[l][ni] += 1
                        continue
                    q.append(pkt)
                    if in_flight[l][ni] is None and not slot_pending[l][ni]:
                        if g < 0.0:
                            offset = offsets[ni]
                            kk = ceil((t - offset - 1e-12) / frame)
                            g = offset + (kk if kk > 0 else 0) * frame
                            if g < t - 1e-12:
                                g += frame
                        key = (g, ni)
                        grp = slot_groups.get(key)
                        if grp is None:
                            slot_groups[key] = [l]
                            push(heap, (g, _SLOT, ni))
                        else:
                            grp.append(l)
                        slot_pending[l][ni] = True
                        pend_g[l][ni] = g

            elif kind == _SLOT:
                group = slot_groups.pop((t, ni))
                te = t + airtime
                fkey = (te, ni)
                fgrp = None
                for l in group:
                    slot_pending[l][ni] = False
                    executed[l] += 1
                    q = queues[l][ni]
                    if not q or in_flight[l][ni] is not None:
                        continue
                    packet = q.popleft()
                    dk = lane_dark[l][ni]
                    dark = False
                    if dk is not None:
                        times = dk[0]
                        p = dk[2]
                        ntr = dk[3]
                        while p < ntr and times[p] <= t:
                            p += 1
                        dk[2] = p
                        if p:
                            dark = dk[1][p - 1]
                    if dark:
                        # Void transmission: the radio is down but the
                        # MAC's cycle completes after the nominal airtime.
                        c_ftx[l][ni] += 1
                        in_flight[l][ni] = (packet, None, t, te)
                    else:
                        rows = lane_tx_rows[l][ni]
                        lb = lane_blk[l]
                        if lb is not None:
                            ab = lane_any[l]
                            times = ab[0]
                            p = ab[2]
                            ntr = ab[3]
                            while p < ntr and times[p] <= t:
                                p += 1
                            ab[2] = p
                            if not (p and ab[1][p - 1] > 0):
                                # No blackout in force at t, so nothing
                                # would be blocked row by row: take the
                                # fast path.
                                lb = None
                        ftl = f_t[l]
                        fvl = f_v[l]
                        fcl = f_cur[l]
                        fil = f_init[l]
                        powers: List[float] = []
                        ap = powers.append
                        tx_dbm = lane_tx[l]
                        if shadow_on and lb is None:
                            # Fast path: no blackout rows, so every row
                            # ticks sender + receiver — tick every node
                            # exactly once up front.
                            stl = s_t[l]
                            sol = s_occ[l]
                            scl = s_cur[l]
                            if s_uni[l]:
                                # Every node last ticked at the same
                                # instant (or all cold): one dt lookup
                                # covers the whole loop.
                                if s_init[l][0]:
                                    tl = stl[0]
                                    if t > tl:
                                        dt = t - tl
                                        pp = shm_memo.get(dt)
                                        if pp is None:
                                            decay = exp(-relax * dt)
                                            pp = (
                                                pi * (1.0 - decay),
                                                pi + (1.0 - pi) * decay,
                                            )
                                            shm_memo[dt] = pp
                                        p_off = pp[0]
                                        p_onn = pp[1]
                                        for m in range(n_nodes):
                                            i = scl[m]
                                            scl[m] = i + 1
                                            vals = node_vals[m]
                                            try:
                                                z = vals[i]
                                            except IndexError:
                                                z = node_blocks[m].get(i)
                                            sol[m] = z < (
                                                p_onn if sol[m] else p_off
                                            )
                                            stl[m] = t
                                else:
                                    sil = s_init[l]
                                    for m in range(n_nodes):
                                        i = scl[m]
                                        scl[m] = i + 1
                                        vals = node_vals[m]
                                        try:
                                            z = vals[i]
                                        except IndexError:
                                            z = node_blocks[m].get(i)
                                        sol[m] = z < pi
                                        sil[m] = True
                                        stl[m] = t
                            else:
                                sil = s_init[l]
                                for m in range(n_nodes):
                                    if not sil[m]:
                                        i = scl[m]
                                        scl[m] = i + 1
                                        vals = node_vals[m]
                                        try:
                                            z = vals[i]
                                        except IndexError:
                                            z = node_blocks[m].get(i)
                                        sol[m] = z < pi
                                        sil[m] = True
                                        stl[m] = t
                                    elif t > stl[m]:
                                        dt = t - stl[m]
                                        pp = shm_memo.get(dt)
                                        if pp is None:
                                            decay = exp(-relax * dt)
                                            pp = (
                                                pi * (1.0 - decay),
                                                pi + (1.0 - pi) * decay,
                                            )
                                            shm_memo[dt] = pp
                                        p_on = pp[1] if sol[m] else pp[0]
                                        i = scl[m]
                                        scl[m] = i + 1
                                        vals = node_vals[m]
                                        try:
                                            z = vals[i]
                                        except IndexError:
                                            z = node_blocks[m].get(i)
                                        sol[m] = z < p_on
                                        stl[m] = t
                                # Every node is now warm with tick time
                                # t: uniformity is restored.
                                s_uni[l] = True
                            sender_extra = depth if sol[ni] else 0.0
                            for rx_idx, mean_pl, skip, pidx in rows:
                                if skip:
                                    ap(neg_inf)
                                    continue
                                if fil[pidx]:
                                    ftp = ftl[pidx]
                                    if t > ftp:
                                        if sigma == 0:
                                            value = 0.0
                                        else:
                                            dt = t - ftp
                                            rs = ou_memo.get(dt)
                                            if rs is None:
                                                rho = exp(-dt / tau)
                                                var = 1.0 - rho * rho
                                                rs = (
                                                    rho,
                                                    sigma
                                                    * sqrt(
                                                        var
                                                        if var > 0.0
                                                        else 0.0
                                                    ),
                                                )
                                                ou_memo[dt] = rs
                                            rho, std = rs
                                            mean = fvl[pidx] * rho
                                            i = fcl[pidx]
                                            fcl[pidx] = i + 1
                                            vals = pair_vals[pidx]
                                            try:
                                                z = vals[i]
                                            except IndexError:
                                                z = pair_blocks[pidx].get(i)
                                            value = mean + std * z
                                            if value > clip:
                                                value = clip
                                            elif value < -clip:
                                                value = -clip
                                        ftl[pidx] = t
                                        fvl[pidx] = value
                                    else:
                                        value = fvl[pidx]
                                else:
                                    if sigma > 0:
                                        i = fcl[pidx]
                                        fcl[pidx] = i + 1
                                        vals = pair_vals[pidx]
                                        try:
                                            z = vals[i]
                                        except IndexError:
                                            z = pair_blocks[pidx].get(i)
                                        value = 0.0 + sigma * z
                                        value = max(-clip, min(clip, value))
                                    else:
                                        value = 0.0
                                    fil[pidx] = True
                                    ftl[pidx] = t
                                    fvl[pidx] = value
                                loss = mean_pl + value
                                extra = sender_extra
                                if sol[rx_idx]:
                                    extra += depth
                                loss = loss + extra
                                ap(tx_dbm - loss)
                        else:
                            # General path: per-row blocked checks and
                            # lazy shadow ticks (also covers shadow-off).
                            # Partial ticks may desynchronize the nodes'
                            # tick times, so drop the uniform-dt fast
                            # shortcut for this lane.
                            s_uni[l] = False
                            sender_occ = -1
                            for rx_idx, mean_pl, skip, pidx in rows:
                                if lb is not None:
                                    bk = lb[pidx]
                                    if bk is not None:
                                        times = bk[0]
                                        p = bk[2]
                                        ntr = bk[3]
                                        while p < ntr and times[p] <= t:
                                            p += 1
                                        bk[2] = p
                                        if p and bk[1][p - 1] > 0:
                                            ap(neg_inf)
                                            continue
                                if skip:
                                    if shadow_on:
                                        if sender_occ < 0:
                                            sender_occ = (
                                                1
                                                if tick_shadow(l, ni, t)
                                                else 0
                                            )
                                        tick_shadow(l, rx_idx, t)
                                    ap(neg_inf)
                                    continue
                                if fil[pidx]:
                                    ftp = ftl[pidx]
                                    if t > ftp:
                                        if sigma == 0:
                                            value = 0.0
                                        else:
                                            dt = t - ftp
                                            rs = ou_memo.get(dt)
                                            if rs is None:
                                                rho = exp(-dt / tau)
                                                var = 1.0 - rho * rho
                                                rs = (
                                                    rho,
                                                    sigma
                                                    * sqrt(
                                                        var
                                                        if var > 0.0
                                                        else 0.0
                                                    ),
                                                )
                                                ou_memo[dt] = rs
                                            rho, std = rs
                                            mean = fvl[pidx] * rho
                                            i = fcl[pidx]
                                            fcl[pidx] = i + 1
                                            vals = pair_vals[pidx]
                                            try:
                                                z = vals[i]
                                            except IndexError:
                                                z = pair_blocks[pidx].get(i)
                                            value = mean + std * z
                                            if value > clip:
                                                value = clip
                                            elif value < -clip:
                                                value = -clip
                                        ftl[pidx] = t
                                        fvl[pidx] = value
                                    else:
                                        value = fvl[pidx]
                                else:
                                    if sigma > 0:
                                        i = fcl[pidx]
                                        fcl[pidx] = i + 1
                                        vals = pair_vals[pidx]
                                        try:
                                            z = vals[i]
                                        except IndexError:
                                            z = pair_blocks[pidx].get(i)
                                        value = 0.0 + sigma * z
                                        value = max(-clip, min(clip, value))
                                    else:
                                        value = 0.0
                                    fil[pidx] = True
                                    ftl[pidx] = t
                                    fvl[pidx] = value
                                loss = mean_pl + value
                                if shadow_on:
                                    if sender_occ < 0:
                                        sender_occ = (
                                            1
                                            if tick_shadow(l, ni, t)
                                            else 0
                                        )
                                    extra = depth if sender_occ else 0.0
                                    if tick_shadow(l, rx_idx, t):
                                        extra += depth
                                    loss = loss + extra
                                else:
                                    loss = loss + 0.0
                                ap(tx_dbm - loss)
                        c_tx[l][ni] += 1
                        a_txs[l][ni] += airtime
                        in_flight[l][ni] = (packet, powers, t, te)
                    if fgrp is None:
                        fgrp = fin_groups.get(fkey)
                        if fgrp is None:
                            fgrp = []
                            fin_groups[fkey] = fgrp
                            push(heap, (te, _FIN, ni))
                    fgrp.append(l)

            else:  # _FIN
                group = fin_groups.pop((t, ni))
                g_fin = -1.0
                g_coord = -1.0
                for l in group:
                    executed[l] += 1
                    ifl = in_flight[l]
                    packet, powers, start, _te = ifl[ni]
                    ifl[ni] = None
                    # Sender MAC first (on_tx_done -> _kick), then
                    # delivery — the scalar _finish_transmission order.
                    q = queues[l][ni]
                    if q and not slot_pending[l][ni]:
                        if g_fin < 0.0:
                            offset = offsets[ni]
                            kk = ceil((t - offset - 1e-12) / frame)
                            g_fin = offset + (kk if kk > 0 else 0) * frame
                            if g_fin < t - 1e-12:
                                g_fin += frame
                        key = (g_fin, ni)
                        grp = slot_groups.get(key)
                        if grp is None:
                            slot_groups[key] = [l]
                            push(heap, (g_fin, _SLOT, ni))
                        else:
                            grp.append(l)
                        slot_pending[l][ni] = True
                        pend_g[l][ni] = g_fin
                    if powers is None:
                        continue
                    duration = t - start
                    origin, seq, dest, created, oi = packet
                    ld = lane_dark[l]
                    rows = lane_fin_rows[l][ni]
                    lrxs = a_rxs[l]
                    lcrx = c_rx[l]
                    lbsen = c_bsen[l]
                    lfrx = c_frx[l]
                    wl = lane_win[l]
                    uid = (origin, seq)
                    cre_idx = -1
                    ri = 0
                    for rx, rx_idx, sens in rows:
                        power = powers[ri]
                        ri += 1
                        dk = ld[rx_idx]
                        if dk is not None:
                            times = dk[0]
                            p = dk[2]
                            ntr = dk[3]
                            while p < ntr and times[p] <= t:
                                p += 1
                            dk[2] = p
                            if p and dk[1][p - 1]:
                                lfrx[rx_idx] += 1
                                continue
                        if power < sens:
                            lbsen[rx_idx] += 1
                            continue
                        lrxs[rx_idx] += duration
                        lcrx[rx_idx] += 1
                        # StarRouting.on_receive: app delivery first,
                        # then the coordinator relay decision.
                        if dest == rx:
                            uids = uids_s[l][rx_idx]
                            if uid not in uids:
                                uids.add(uid)
                                recv_c[l][rx_idx][oi] += 1
                                a_lat[l][rx_idx] += t - created
                                if wl:
                                    if cre_idx < 0:
                                        cre_idx = int(created / window_s)
                                    wrecv_c[l][rx_idx][cre_idx] += 1
                        if (
                            rx_idx == coord_idx
                            and origin != coord
                            and dest != coord
                        ):
                            seen = relayed[l]
                            if uid not in seen:
                                seen.add(uid)
                                c_rel[l][coord_idx] += 1
                                cq = queues[l][coord_idx]
                                if len(cq) >= buffer_size:
                                    c_bdrop[l][coord_idx] += 1
                                else:
                                    cq.append(packet)
                                    if (
                                        ifl[coord_idx] is None
                                        and not slot_pending[l][coord_idx]
                                    ):
                                        if g_coord < 0.0:
                                            offset = offsets[coord_idx]
                                            kk = ceil(
                                                (t - offset - 1e-12) / frame
                                            )
                                            g_coord = (
                                                offset
                                                + (kk if kk > 0 else 0)
                                                * frame
                                            )
                                            if g_coord < t - 1e-12:
                                                g_coord += frame
                                        key = (g_coord, coord_idx)
                                        grp = slot_groups.get(key)
                                        if grp is None:
                                            slot_groups[key] = [l]
                                            push(
                                                heap,
                                                (g_coord, _SLOT, coord_idx),
                                            )
                                        else:
                                            grp.append(l)
                                        slot_pending[l][coord_idx] = True
                                        pend_g[l][coord_idx] = g_coord

        # Teardown: flush the flattened counters back into the NodeStats
        # objects (live lanes only — a never-forked lane reads its
        # trunk), then run Network.run's metric extraction per lane plus
        # the obs milestones the scalar engine/injector would have made.
        for l in live:
            row = stats_nodes[l]
            for m in range(n_nodes):
                ns = row[m]
                ns.tx_seconds = a_txs[l][m]
                ns.rx_seconds = a_rxs[l][m]
                ns.latency_sum = a_lat[l][m]
                ns.transmissions = c_tx[l][m]
                ns.receptions = c_rx[l][m]
                ns.below_sensitivity = c_bsen[l][m]
                ns.buffer_drops = c_bdrop[l][m]
                ns.fault_tx_suppressed = c_ftx[l][m]
                ns.fault_rx_suppressed = c_frx[l][m]
                ns.relays = c_rel[l][m]
                ns.sent = {
                    placement[j]: c
                    for j, c in enumerate(sent_c[l][m])
                    if c
                }
                ns.received = {
                    placement[j]: c
                    for j, c in enumerate(recv_c[l][m])
                    if c
                }
                ns.win_sent = {
                    j: c for j, c in enumerate(wsent_c[l][m]) if c
                }
                ns.win_delivered = {
                    j: c for j, c in enumerate(wrecv_c[l][m]) if c
                }
        outcomes: List[SimulationOutcome] = []
        obs = get_active()
        runs_counter = obs.counter("des.runs")
        events_counter = obs.counter("des.events")
        battery = scenario.battery
        rx_mw = scenario.radio.rx_power_mw
        baseline = scenario.app.baseline_mw
        for l, (ci, wi) in enumerate(lanes):
            eff = l if forked[l] else trunk_T[l]
            stats = stats_list[eff]
            mask = masks[wi]
            tx_mw = self.variants[ci].tx_power_mw
            node_pdrs = {loc: stats.node_pdr(loc) for loc in placement}
            node_powers = {
                loc: stats.node_power_mw(loc, tsim, tx_mw, rx_mw, baseline)
                for loc in placement
            }
            windowed: tuple = ()
            if mask is not None:
                node_powers = {
                    loc: power * _power_scale(mask.drains.get(loc), tsim)
                    for loc, power in node_powers.items()
                }
                windowed = stats.windowed_pdr(tsim)
            candidates = [loc for loc in placement if loc != coord]
            worst = max(node_powers[loc] for loc in candidates)
            nlt_days = battery.lifetime_days(worst)
            deliveries = sum(s.deliveries for s in stats.nodes.values())
            latency_total = sum(s.latency_sum for s in stats.nodes.values())
            events = executed[eff] + (
                mask.fault_events if mask is not None else 0
            )
            runs_counter.inc()
            events_counter.inc(events)
            if mask is not None and mask.fault_injected:
                obs.counter("faults.injected").inc(mask.fault_injected)
            outcomes.append(
                SimulationOutcome(
                    pdr=stats.network_pdr(),
                    node_pdrs=node_pdrs,
                    node_powers_mw=node_powers,
                    worst_power_mw=worst,
                    nlt_days=nlt_days,
                    horizon_s=tsim,
                    totals=stats.totals(),
                    events_executed=events,
                    mean_latency_s=(
                        latency_total / deliveries if deliveries else 0.0
                    ),
                    windowed_pdr=windowed,
                )
            )
        return outcomes


def evaluate_batch(
    scenario: ScenarioParameters,
    configs: Sequence[Configuration],
    worlds: Sequence[Optional[FaultScenario]],
) -> Dict[Tuple[int, int], SimulationOutcome]:
    """Evaluate every (configuration, world) lane of one topology batch.

    ``scenario.fault_scenario`` is ignored — fault worlds are passed
    explicitly per lane (``None`` = healthy), so one call covers a whole
    ensemble.  Returns ``{(config_index, world_index): outcome}`` where
    each outcome is the replicate average, bit-identical to the scalar
    path's :func:`repro.core.parallel.run_fixed_replicates` for the
    matching ``replace(scenario, fault_scenario=world)``.

    Raises ``ValueError`` when the batch is unsupported — callers gate
    with :func:`batch_unsupported_reason` first.
    """
    return _BatchKernel(scenario, configs, worlds).run()
