"""Configurations and the enumerable design space.

A :class:`Configuration` is one point of the paper's design space: a node
placement ν plus the discrete parameter choices the design example explores
(TX power level, MAC protocol, routing scheme).  A :class:`DesignSpace`
describes the whole grid — for the Sec. 4.1 scenario,
2^10 placements × 3 TX levels × 2 MACs × 2 routings = 12,288 points — and
knows which points satisfy the topological constraints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.library.locations import describe_placement
from repro.library.mac_options import MacKind, RoutingKind


@dataclass(frozen=True, order=True)
class Configuration:
    """One candidate network design (ν, selected χ components).

    ``placement`` is the sorted tuple of occupied location indices;
    ``tx_dbm`` selects the radio TX mode; ``mac`` and ``routing`` select the
    protocol options.  The remaining χ entries (buffer size, slot duration,
    coordinator, hop limit, application parameters) are scenario constants
    carried by :class:`repro.core.problem.ScenarioParameters`.
    """

    placement: Tuple[int, ...]
    tx_dbm: float
    mac: MacKind
    routing: RoutingKind

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.placement)))
        if ordered != self.placement:
            object.__setattr__(self, "placement", ordered)

    @property
    def num_nodes(self) -> int:
        return len(self.placement)

    def label(self) -> str:
        """Compact human-readable form, e.g.
        ``[chest,hipL,ankL,wriR] star/csma/-10dBm``."""
        return (
            f"{describe_placement(self.placement)} "
            f"{self.routing.value}/{self.mac.value}/{self.tx_dbm:+.0f}dBm"
        )

    def key(self) -> Tuple:
        """Hashable identity used for caches and no-good tracking."""
        return (self.placement, self.tx_dbm, self.mac.value, self.routing.value)


@dataclass(frozen=True)
class PlacementConstraints:
    """Topological constraints of the design example (Sec. 4.1).

    * ``required`` locations must be occupied (chest: respiration +
      coordination);
    * each group in ``at_least_one_of`` needs at least one occupied member
      (hip pair, ankle pair, wrist pair);
    * ``max_nodes`` caps N (the four required roles plus up to two free
      nodes in the paper).
    """

    num_locations: int = 10
    required: Tuple[int, ...] = (0,)
    at_least_one_of: Tuple[Tuple[int, ...], ...] = ((1, 2), (3, 4), (5, 6))
    max_nodes: int = 6
    min_nodes: int = 2

    @property
    def effective_min_nodes(self) -> int:
        """The tightest node-count lower bound implied by the constraints:
        the required locations plus a minimum hitting set of the groups not
        already covered by them.  Used to shrink the MILP's node-count
        indicators and skip unattainable enumeration sizes.

        The hitting set is computed exactly by brute force — group counts
        are tiny (three in the design example), so this is instantaneous
        and avoids the overcounting a per-group estimate would suffer when
        groups overlap.
        """
        required = set(self.required)
        open_groups = [
            set(group)
            for group in self.at_least_one_of
            if not required & set(group)
        ]
        if not open_groups:
            return max(self.min_nodes, len(required))
        universe = sorted(set().union(*open_groups))
        for size in range(1, len(open_groups) + 1):
            for combo in itertools.combinations(universe, size):
                chosen = set(combo)
                if all(chosen & group for group in open_groups):
                    return max(self.min_nodes, len(required) + size)
        # Unreachable: taking one member per group always hits everything.
        return max(self.min_nodes, len(required) + len(open_groups))

    def satisfied_by(self, placement: Sequence[int]) -> bool:
        occupied = set(placement)
        if not all(loc in occupied for loc in self.required):
            return False
        for group in self.at_least_one_of:
            if not any(loc in occupied for loc in group):
                return False
        return self.min_nodes <= len(occupied) <= self.max_nodes


@dataclass(frozen=True)
class DesignSpace:
    """The enumerable configuration grid of the design example."""

    constraints: PlacementConstraints = field(default_factory=PlacementConstraints)
    tx_levels_dbm: Tuple[float, ...] = (-20.0, -10.0, 0.0)
    mac_kinds: Tuple[MacKind, ...] = (MacKind.CSMA, MacKind.TDMA)
    routing_kinds: Tuple[RoutingKind, ...] = (RoutingKind.STAR, RoutingKind.MESH)

    @property
    def total_size(self) -> int:
        """All grid points, constrained or not — the paper's 12,288."""
        return (
            2 ** self.constraints.num_locations
            * len(self.tx_levels_dbm)
            * len(self.mac_kinds)
            * len(self.routing_kinds)
        )

    def placements(self) -> Iterator[Tuple[int, ...]]:
        """All placements satisfying the topological constraints, in
        deterministic (lexicographic-by-size) order."""
        locations = list(range(self.constraints.num_locations))
        for size in range(
            self.constraints.effective_min_nodes,
            self.constraints.max_nodes + 1,
        ):
            for combo in itertools.combinations(locations, size):
                if self.constraints.satisfied_by(combo):
                    yield combo

    def feasible_configurations(self) -> Iterator[Configuration]:
        """All constraint-satisfying configurations (the exhaustive-search
        workload of the paper's 87%-reduction comparison)."""
        for placement in self.placements():
            for tx in self.tx_levels_dbm:
                for mac in self.mac_kinds:
                    for routing in self.routing_kinds:
                        yield Configuration(placement, tx, mac, routing)

    def feasible_count(self) -> int:
        return sum(1 for _ in self.feasible_configurations())

    def contains(self, config: Configuration) -> bool:
        """Whether a configuration lies on the grid and satisfies the
        topological constraints."""
        return (
            config.tx_dbm in self.tx_levels_dbm
            and config.mac in self.mac_kinds
            and config.routing in self.routing_kinds
            and all(
                0 <= loc < self.constraints.num_locations
                for loc in config.placement
            )
            and self.constraints.satisfied_by(config.placement)
        )

    def placements_by_size(self) -> List[Tuple[int, int]]:
        """``(N, count)`` histogram of feasible placements (diagnostics)."""
        counts = {}
        for placement in self.placements():
            counts[len(placement)] = counts.get(len(placement), 0) + 1
        return sorted(counts.items())
