"""RunSim: the simulation oracle of Algorithm 1 (line 7).

Wraps :func:`repro.net.network.simulate_configuration` with:

* translation from a :class:`repro.core.design_space.Configuration` to the
  concrete component stack of the scenario;
* replicate averaging per the paper's protocol (3 × 600 s);
* memoization — Algorithm 1 and the baseline optimizers may revisit
  configurations (simulated annealing in particular re-proposes points);
  the paper's efficiency metric is *distinct* simulations, which the cache
  both enforces and counts;
* a complete evaluation journal for the experiment reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.design_space import Configuration
from repro.core.problem import ScenarioParameters
from repro.net.network import (
    SimulationOutcome,
    average_outcomes,
    simulate_configuration,
    simulate_replicate,
)


@dataclass(frozen=True)
class EvaluationRecord:
    """One simulated configuration and its measured metrics."""

    config: Configuration
    pdr: float
    power_mw: float
    nlt_days: float
    wall_seconds: float
    outcome: SimulationOutcome

    @property
    def pdr_percent(self) -> float:
        return 100.0 * self.pdr


class SimulationOracle:
    """Caching simulation evaluator bound to one scenario."""

    def __init__(self, scenario: ScenarioParameters) -> None:
        self.scenario = scenario
        self._cache: Dict[Tuple, EvaluationRecord] = {}
        self.simulations_run = 0
        self.cache_hits = 0
        self.total_wall_seconds = 0.0

    def evaluate(self, config: Configuration) -> EvaluationRecord:
        """Simulate a configuration (or return the cached record)."""
        key = config.key()
        record = self._cache.get(key)
        if record is not None:
            self.cache_hits += 1
            return record

        scenario = self.scenario
        start = time.perf_counter()
        if scenario.adaptive_replicates:
            outcome = self._evaluate_adaptive(config)
        else:
            outcome = simulate_configuration(
                placement=config.placement,
                radio_spec=scenario.radio,
                tx_mode=scenario.tx_mode(config.tx_dbm),
                mac_options=scenario.mac_options(config.mac),
                routing_options=scenario.routing_options(config.routing),
                app_params=scenario.app,
                tsim_s=scenario.tsim_s,
                replicates=scenario.replicates,
                seed=scenario.seed,
                battery=scenario.battery,
                body=scenario.body,
                pathloss_params=scenario.pathloss,
                fading_params=scenario.fading,
            )
        wall = time.perf_counter() - start
        record = EvaluationRecord(
            config=config,
            pdr=outcome.pdr,
            power_mw=outcome.worst_power_mw,
            nlt_days=outcome.nlt_days,
            wall_seconds=wall,
            outcome=outcome,
        )
        self._cache[key] = record
        self.simulations_run += 1
        self.total_wall_seconds += wall
        return record

    def _evaluate_adaptive(self, config: Configuration) -> SimulationOutcome:
        """The paper's epsilon-bounded protocol: replicate until the PDR
        confidence interval is narrower than the scenario tolerance."""
        from repro.analysis.convergence import estimate_pdr_with_tolerance

        scenario = self.scenario
        outcomes: List[SimulationOutcome] = []

        def one_replicate(index: int) -> float:
            outcome = simulate_replicate(
                placement=config.placement,
                radio_spec=scenario.radio,
                tx_mode=scenario.tx_mode(config.tx_dbm),
                mac_options=scenario.mac_options(config.mac),
                routing_options=scenario.routing_options(config.routing),
                app_params=scenario.app,
                tsim_s=scenario.tsim_s,
                replicate=index,
                seed=scenario.seed,
                battery=scenario.battery,
                body=scenario.body,
                pathloss_params=scenario.pathloss,
                fading_params=scenario.fading,
            )
            outcomes.append(outcome)
            return outcome.pdr

        estimate_pdr_with_tolerance(
            one_replicate,
            epsilon=scenario.pdr_epsilon,
            min_replicates=max(2, scenario.replicates),
            max_replicates=max(scenario.max_replicates, scenario.replicates),
        )
        return average_outcomes(outcomes, scenario.battery)

    def evaluate_many(self, configs: List[Configuration]) -> List[EvaluationRecord]:
        """RunSim over a candidate set, preserving order."""
        return [self.evaluate(c) for c in configs]

    @property
    def all_records(self) -> List[EvaluationRecord]:
        """Every distinct configuration evaluated so far (insertion order) —
        the scatter data behind the paper's Fig. 3."""
        return list(self._cache.values())

    def record_for(self, config: Configuration) -> Optional[EvaluationRecord]:
        return self._cache.get(config.key())

    def reset_counters(self) -> None:
        """Zero the run counters without discarding cached results."""
        self.simulations_run = 0
        self.cache_hits = 0
        self.total_wall_seconds = 0.0
