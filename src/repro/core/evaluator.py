"""RunSim: the simulation oracle of Algorithm 1 (line 7).

Wraps the simulation entry points of :mod:`repro.net.network` with:

* translation from a :class:`repro.core.design_space.Configuration` to the
  concrete component stack of the scenario;
* replicate averaging per the paper's protocol (3 × 600 s), both
  fixed-count and adaptive ε-bounded;
* parallel fan-out (:mod:`repro.core.parallel`) at two grain levels —
  whole configurations in :meth:`SimulationOracle.evaluate_many` and
  individual replicates inside one :meth:`SimulationOracle.evaluate` —
  bit-identical to serial execution by construction (disjoint RNG streams
  per replicate, index-order aggregation);
* two-tier memoization — an in-memory journal plus an optional persistent
  :class:`repro.core.result_cache.ResultCache` that survives process
  restarts and is shared across experiments.  Algorithm 1 and the baseline
  optimizers may revisit configurations (simulated annealing in particular
  re-proposes points); the paper's efficiency metric is *distinct*
  simulations, which the cache both enforces and counts;
* aggregate telemetry (:meth:`SimulationOracle.stats`) for experiment
  summaries, computed from ``oracle.*`` instruments in a
  :class:`repro.obs.MetricsRegistry`, plus per-evaluation trace
  milestones when a tracer is attached (``--trace-out``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.batch import batch_unsupported_reason, evaluate_batch
from repro.core.design_space import Configuration
from repro.core.parallel import (
    WorkerPool,
    evaluate_configuration_task,
    resolve_jobs,
    run_configuration_outcome,
)
from repro.core.problem import ScenarioParameters
from repro.core.result_cache import ResultCache, scenario_fingerprint
from repro.net.network import SimulationOutcome
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import Instrumentation, get_active


@dataclass(frozen=True)
class EvaluationRecord:
    """One simulated configuration and its measured metrics."""

    config: Configuration
    pdr: float
    power_mw: float
    nlt_days: float
    wall_seconds: float
    outcome: SimulationOutcome

    @property
    def pdr_percent(self) -> float:
        return 100.0 * self.pdr


class SimulationOracle:
    """Caching simulation evaluator bound to one scenario.

    Parameters
    ----------
    scenario:
        The fixed scenario (χ constants, measurement protocol, seed).
    n_jobs:
        Worker processes for parallel fan-out.  ``None`` defers to
        ``scenario.n_jobs``; ``1`` is the serial in-process path (no pool
        is ever created); ``0``/negative follow the joblib convention
        (all cores / all-but-k).  Results are bit-identical for every
        value — see DESIGN.md §5.
    cache_dir:
        Directory for the persistent result cache.  ``None`` defers to
        ``scenario.cache_dir``; when both are ``None`` the oracle is
        memory-only, preserving the historical behaviour.
    obs:
        Observability bundle (:class:`repro.obs.Instrumentation`).  All
        oracle statistics live in its metrics registry (``oracle.*``
        instruments) and evaluation milestones go to its tracer.  The
        default is a private registry plus whatever tracer is ambiently
        active (:func:`repro.obs.get_active`), so ``--trace-out`` reaches
        oracles created deep inside experiment harnesses while counters
        stay isolated per oracle.

    Insertion-order contract: :attr:`all_records` lists distinct
    evaluations in *first-request order* — the order in which this oracle
    instance was first asked to evaluate each configuration.  Cache hits
    (memory or disk) never reorder the journal, and a warm disk cache
    never injects configurations that were not requested, so the Fig. 3
    scatter is stable across cache temperatures and ``n_jobs`` settings.
    """

    def __init__(
        self,
        scenario: ScenarioParameters,
        n_jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        obs: Optional[Instrumentation] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.scenario = scenario
        requested = n_jobs if n_jobs is not None else getattr(scenario, "n_jobs", 1)
        self.n_jobs = resolve_jobs(requested)
        # `pool` lets an ensemble of oracles (one per fault scenario —
        # repro.faults.resilience) share one set of worker processes
        # instead of forking a pool each; a shared pool is never shut
        # down by close().
        self._owns_pool = pool is None
        self._pool = pool if pool is not None else WorkerPool(self.n_jobs)
        if pool is not None:
            self.n_jobs = pool.n_jobs
        #: first-request-ordered journal of distinct evaluations.
        self._cache: Dict[Tuple, EvaluationRecord] = {}
        directory = cache_dir if cache_dir is not None else getattr(
            scenario, "cache_dir", None
        )
        self._disk: Optional[ResultCache] = None
        if directory is not None:
            self._disk = ResultCache(directory, scenario_fingerprint(scenario))
        self.obs = obs if obs is not None else Instrumentation(
            MetricsRegistry(), get_active().tracer
        )
        # The oracle's run statistics live in the metrics registry — the
        # single source of truth behind simulations_run / stats() — with
        # direct instrument references so the hot path never touches the
        # registry dict.
        self._c_sims = self.obs.counter("oracle.simulations")
        self._c_hits = self.obs.counter("oracle.cache_hits")
        self._c_disk = self.obs.counter("oracle.disk_hits")
        #: Oracle-side elapsed time spent producing new results; with
        #: parallel fan-out this is smaller than the summed per-evaluation
        #: worker walls, and their ratio is the measured speedup vs.
        #: serial execution.
        self._c_elapsed = self.obs.counter("oracle.elapsed_seconds")
        self._h_wall = self.obs.histogram("oracle.wall_seconds")
        self._c_replayed = self.obs.counter("oracle.journal_replayed")
        #: Batched-lane dispatch (DESIGN.md §10): ``scenario.batch_mode``
        #: picks the policy; the counters record how much of the work
        #: took the batched kernel vs the scalar DES.
        self.batch_mode = getattr(scenario, "batch_mode", "auto")
        self._c_batch_calls = self.obs.counter("oracle.batch_calls")
        self._c_batched = self.obs.counter("oracle.batched_evaluations")
        self._c_batch_lanes = self.obs.counter("oracle.batched_lanes")
        self._c_scalar = self.obs.counter("oracle.scalar_evaluations")
        #: Records restored from a run journal, waiting to be adopted on
        #: first request (see :meth:`preload_journal`).
        self._journal_pending: Dict[Tuple, EvaluationRecord] = {}

    # -- cache plumbing ----------------------------------------------------------

    def _lookup(self, key: Tuple) -> Optional[EvaluationRecord]:
        """Memory-then-disk lookup; counts hits and promotes disk records
        into the journal (at first-request position)."""
        record = self._cache.get(key)
        if record is not None:
            self._c_hits.inc()
            return record
        if self._disk is not None:
            record = self._disk.get(key)
            if record is not None:
                self._c_hits.inc()
                self._c_disk.inc()
                self._cache[key] = record
                return record
        return None

    def _store(self, record: EvaluationRecord) -> None:
        self._cache[record.config.key()] = record
        self._c_sims.inc()
        self._h_wall.observe(record.wall_seconds)
        if self._disk is not None:
            self._disk.put(record)

    # -- journal replay (checkpoint/resume, DESIGN.md §9) ------------------------

    def preload_journal(self, records: Sequence[EvaluationRecord]) -> None:
        """Stage records restored from a run journal for adoption.

        A staged record is *adopted* the first time its configuration is
        requested: it enters the journal at that request's position and
        is accounted exactly as if the simulation had just run —
        ``simulations_run`` increments, the persisted wall time lands in
        the histogram, the trace milestone says ``cached=False`` — so a
        resumed run's counters, summary, and trace are bit-identical to
        the uninterrupted run it replays.  ``journal_replayed`` counts
        adoptions separately, which is how tests assert that a resume
        re-simulated nothing.
        """
        for record in records:
            key = record.config.key()
            if key not in self._cache:
                self._journal_pending[key] = record

    def _take_journaled(self, key: Tuple) -> Optional[EvaluationRecord]:
        """Adopt a staged journal record on its first request (or None)."""
        record = self._journal_pending.pop(key, None)
        if record is None:
            return None
        self._store(record)
        self._c_replayed.inc()
        self._trace_record(record, cached=False)
        return record

    # -- telemetry counters (registry-backed, read-only) -------------------------

    @property
    def simulations_run(self) -> int:
        return int(self._c_sims.value)

    @property
    def cache_hits(self) -> int:
        return int(self._c_hits.value)

    @property
    def disk_hits(self) -> int:
        return int(self._c_disk.value)

    @property
    def total_wall_seconds(self) -> float:
        return self._h_wall.total

    @property
    def journal_replayed(self) -> int:
        """Simulations answered by journal replay instead of execution."""
        return int(self._c_replayed.value)

    @property
    def elapsed_seconds(self) -> float:
        return float(self._c_elapsed.value)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, config: Configuration) -> EvaluationRecord:
        """Simulate a configuration (or return the cached record).

        With ``n_jobs > 1`` the replicates of this single evaluation are
        fanned out across the pool (waves for the adaptive protocol) and
        aggregated in replicate-index order.
        """
        record = self.lookup(config)
        if record is not None:
            return record
        if (
            self.batch_mode == "on"
            and batch_unsupported_reason(self.scenario, config) is None
        ):
            self._run_batched([config])
            return self._cache[config.key()]
        return self._evaluate_scalar(config)

    def _evaluate_scalar(self, config: Configuration) -> EvaluationRecord:
        """Run the scalar replicate protocol for one known-uncached
        configuration and store the record."""
        start = time.perf_counter()
        map_fn = self._pool.map_ordered if self._pool.parallel else None
        outcome = run_configuration_outcome(
            self.scenario, config, map_fn=map_fn, wave=self.n_jobs
        )
        wall = time.perf_counter() - start
        record = EvaluationRecord(
            config=config,
            pdr=outcome.pdr,
            power_mw=outcome.worst_power_mw,
            nlt_days=outcome.nlt_days,
            wall_seconds=wall,
            outcome=outcome,
        )
        self._c_elapsed.inc(wall)
        self._c_scalar.inc()
        self._store(record)
        self._trace_record(record, cached=False)
        return record

    def evaluate_many(
        self, configs: Sequence[Configuration]
    ) -> List[EvaluationRecord]:
        """RunSim over a candidate set, preserving order.

        With ``n_jobs > 1``, uncached configurations are evaluated
        concurrently at configuration grain (each worker runs its full
        replicate protocol in-process).  With batching enabled (the
        default ``batch_mode="auto"``), misses sharing a topology take
        the batched kernel instead (:mod:`repro.core.batch`) — one pass
        over all TX variants — and only the rest goes to the pool.  Hit
        accounting, journal insertion order, and results are identical
        to the serial loop in every mode.
        """
        configs = list(configs)
        min_lanes = {"off": None, "on": 1, "auto": 2}[self.batch_mode]
        batching = min_lanes is not None and len(configs) >= min_lanes
        if not batching and (not self._pool.parallel or len(configs) < 2):
            with self.obs.span("oracle.evaluate_many", n=len(configs)):
                return [self.evaluate(c) for c in configs]

        with self.obs.span("oracle.evaluate_many", n=len(configs)):
            pending: List[Configuration] = []
            pending_keys = set()
            for config in configs:
                key = config.key()
                if key in pending_keys:
                    # Duplicate of a miss in this batch: the serial loop
                    # would simulate the first occurrence and hit memory
                    # here.
                    self._c_hits.inc()
                    continue
                if self._take_journaled(key) is not None:
                    continue  # resumed run: adopted, not re-simulated
                if self._lookup(key) is None:
                    pending_keys.add(key)
                    pending.append(config)

            if batching and pending:
                pending = self._dispatch_batched(pending, min_lanes)
            if pending:
                self._dispatch_scalar(pending)
            return [self._cache[c.key()] for c in configs]

    # -- batched dispatch (repro.core.batch, DESIGN.md §10) ----------------------

    def _dispatch_batched(
        self, pending: List[Configuration], min_lanes: int
    ) -> List[Configuration]:
        """Route batchable topology groups through the batched kernel;
        return the configurations left for the scalar path (unsupported
        surface, or groups below the lane threshold)."""
        leftovers: List[Configuration] = []
        groups: Dict[Tuple, List[Configuration]] = {}
        for config in pending:
            if batch_unsupported_reason(self.scenario, config) is not None:
                leftovers.append(config)
                continue
            groups.setdefault(
                (config.placement, config.mac, config.routing), []
            ).append(config)
        for group in groups.values():
            if len(group) < min_lanes:
                leftovers.extend(group)
            else:
                self._run_batched(group)
        return leftovers

    def _run_batched(self, group: List[Configuration]) -> None:
        """Evaluate one topology group (TX variants of one placement)
        through the batched kernel and store a record per configuration.

        The lanes are inseparable inside the single pass, so the batch
        wall time is split evenly across the records; ``elapsed_seconds``
        still advances by the true batch wall exactly once.
        """
        start = time.perf_counter()
        outcomes = evaluate_batch(
            self.scenario, group, [self.scenario.fault_scenario]
        )
        wall = time.perf_counter() - start
        self._c_elapsed.inc(wall)
        self._c_batch_calls.inc()
        self._c_batched.inc(len(group))
        # Lanes = scalar DES runs the batch replaced (one per replicate).
        self._c_batch_lanes.inc(len(group) * self.scenario.replicates)
        share = wall / len(group)
        for ci, config in enumerate(group):
            outcome = outcomes[(ci, 0)]
            record = EvaluationRecord(
                config=config,
                pdr=outcome.pdr,
                power_mw=outcome.worst_power_mw,
                nlt_days=outcome.nlt_days,
                wall_seconds=share,
                outcome=outcome,
            )
            self._store(record)
            self._trace_record(record, cached=False)
        if self.obs.tracing:
            self.obs.event(
                "oracle.batch",
                configs=len(group),
                worlds=1,
                lanes=len(group),
                wall_s=round(wall, 6),
            )

    def _dispatch_scalar(self, pending: List[Configuration]) -> None:
        """Evaluate known-uncached configurations on the scalar path —
        pool fan-out at configuration grain when parallel, the plain
        serial protocol otherwise."""
        if not self._pool.parallel or len(pending) < 2:
            for config in pending:
                self._evaluate_scalar(config)
            return
        start = time.perf_counter()
        results = self._pool.map_ordered(
            evaluate_configuration_task,
            [(self.scenario, c) for c in pending],
        )
        self._c_elapsed.inc(time.perf_counter() - start)
        self._c_scalar.inc(len(pending))
        for config, (outcome, wall) in zip(pending, results):
            record = EvaluationRecord(
                config=config,
                pdr=outcome.pdr,
                power_mw=outcome.worst_power_mw,
                nlt_days=outcome.nlt_days,
                wall_seconds=wall,
                outcome=outcome,
            )
            self._store(record)
            self._trace_record(record, cached=False)

    def lookup(self, config: Configuration) -> Optional[EvaluationRecord]:
        """Public cache probe (memory, then disk) with full hit
        accounting; returns ``None`` on a miss without simulating.  Lets
        external dispatchers (the ensemble oracle) split lookup from
        execution while keeping counters and trace milestones identical
        to :meth:`evaluate`.

        A record staged by :meth:`preload_journal` is adopted here (and
        accounted as a fresh simulation, not a hit) so resumed runs see
        journaled results exactly where the original run simulated them.
        """
        record = self._take_journaled(config.key())
        if record is not None:
            return record
        record = self._lookup(config.key())
        if record is not None:
            self._trace_record(record, cached=True)
        return record

    def record_outcome(
        self, config: Configuration, outcome: SimulationOutcome, wall: float
    ) -> EvaluationRecord:
        """Store an outcome produced *outside* this oracle's own dispatch.

        The ensemble oracle fans evaluation tasks for several scenarios
        out over one shared pool and hands each result back to the oracle
        that owns the matching scenario; accounting (journal order, disk
        persistence, counters, trace milestones) is identical to
        :meth:`evaluate` producing the record itself.
        """
        record = EvaluationRecord(
            config=config,
            pdr=outcome.pdr,
            power_mw=outcome.worst_power_mw,
            nlt_days=outcome.nlt_days,
            wall_seconds=wall,
            outcome=outcome,
        )
        self._store(record)
        self._trace_record(record, cached=False)
        return record

    def _trace_record(self, record: EvaluationRecord, cached: bool) -> None:
        """Emit the per-evaluation trace milestone (no-op by default)."""
        if not self.obs.tracing:
            return
        self.obs.event(
            "oracle.evaluate",
            config=record.config.label(),
            cached=cached,
            pdr=record.pdr,
            power_mw=record.power_mw,
            replicates=record.outcome.replicates,
            wall_s=round(record.wall_seconds, 6),
        )

    # -- journal & telemetry -----------------------------------------------------

    @property
    def all_records(self) -> List[EvaluationRecord]:
        """Every distinct configuration evaluated so far, in first-request
        order (see the class docstring) — the scatter data behind the
        paper's Fig. 3."""
        return list(self._cache.values())

    def record_for(self, config: Configuration) -> Optional[EvaluationRecord]:
        return self._cache.get(config.key())

    def stats(self) -> Dict[str, float]:
        """Aggregate oracle telemetry for experiment summaries.

        Every value is derived from the ``oracle.*`` instruments in
        :attr:`obs` — there is no separate bookkeeping to drift out of
        sync with the metrics registry.
        """
        sims = self.simulations_run
        hits = self.cache_hits
        lookups = sims + hits
        total_wall = self._h_wall.total
        elapsed = self.elapsed_seconds
        return {
            "simulations_run": sims,
            "cache_hits": hits,
            "disk_hits": self.disk_hits,
            "journal_replayed": self.journal_replayed,
            "hit_rate": hits / lookups if lookups else 0.0,
            "total_wall_seconds": total_wall,
            "elapsed_seconds": elapsed,
            "p50_wall_seconds": self._h_wall.quantile(0.50),
            "p95_wall_seconds": self._h_wall.quantile(0.95),
            "speedup_vs_serial_estimate": (
                total_wall / elapsed if elapsed > 0 else 1.0
            ),
            "n_jobs": self.n_jobs,
            "batch_mode": self.batch_mode,
            "batch_calls": int(self._c_batch_calls.value),
            "batched_evaluations": int(self._c_batched.value),
            "batched_lanes": int(self._c_batch_lanes.value),
            "scalar_evaluations": int(self._c_scalar.value),
        }

    def format_stats(self) -> str:
        """One-line telemetry summary for experiment reports."""
        s = self.stats()
        return (
            f"oracle: {s['simulations_run']} simulations, "
            f"{s['cache_hits']} cache hits "
            f"({100.0 * s['hit_rate']:.1f}% hit rate, "
            f"{s['disk_hits']} from disk), "
            f"wall p50={s['p50_wall_seconds']:.3f}s "
            f"p95={s['p95_wall_seconds']:.3f}s, "
            f"n_jobs={s['n_jobs']}, "
            f"est. speedup {s['speedup_vs_serial_estimate']:.2f}x"
        )

    # -- persistent-cache hooks --------------------------------------------------

    @property
    def disk_cache(self) -> Optional[ResultCache]:
        return self._disk

    def attach_cache(self, cache_dir: str) -> None:
        """Attach (or switch) the persistent cache and persist any
        in-memory records the new store does not have yet."""
        self._disk = ResultCache(
            cache_dir, scenario_fingerprint(self.scenario)
        )
        self.save_cache()

    def save_cache(self) -> None:
        """Persist every in-memory record to the disk cache (no-op when
        memory-only; ``put`` deduplicates)."""
        if self._disk is None:
            return
        for record in self._cache.values():
            self._disk.put(record)

    def invalidate_cache(self) -> None:
        """Drop all cached results — memory journal and disk store."""
        self._cache.clear()
        if self._disk is not None:
            self._disk.invalidate()

    # -- lifecycle ---------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the run counters without discarding cached results."""
        self._c_sims.reset()
        self._c_hits.reset()
        self._c_disk.reset()
        self._c_elapsed.reset()
        self._c_replayed.reset()
        self._c_batch_calls.reset()
        self._c_batched.reset()
        self._c_batch_lanes.reset()
        self._c_scalar.reset()
        self._h_wall.reset()

    def close(self) -> None:
        """Shut down the worker pool (idempotent).  A pool injected at
        construction belongs to its creator and is left running."""
        if self._owns_pool:
            self._pool.shutdown()

    def __enter__(self) -> "SimulationOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
