"""Algorithm 1: Human Intranet Design Space Exploration.

The explorer coordinates the MILP solver (RunMILP — candidate generation by
ascending analytical power) with the discrete-event simulator (RunSim —
accurate PDR and power) exactly as in the paper:

1. Solve the relaxed MILP P̃; obtain the set S of all configurations
   attaining the analytical power optimum P̄*.
2. If S is empty and no feasible solution was ever found → infeasible.
3. Termination test (line 5): if P̄*/α(S*, PDR_min) — i.e. the least
   simulated power any remaining candidate could exhibit — exceeds the
   incumbent's simulated power P̄_min, no further simulation can improve
   the solution: return S*.
4. Simulate S; keep candidates meeting the PDR bound, sorted by simulated
   power; update the incumbent (S*, P̄_min) if improved.
5. Add the cut P̄ > P̄* to P̃ (pruning the just-explored power level) and
   iterate.

The algorithm is exact over the modeled design space: it stops only when
the MILP is exhausted or the α-corrected bound proves optimality.

An *exhaustive* mode disables the early-termination test and keeps
iterating until the MILP has no candidates left; this sweeps the entire
feasible space in ascending analytical-power order and is how the Fig. 3
scatter (all feasible configurations) is produced.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.design_space import Configuration
from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.milp_builder import MilpFormulation
from repro.core.problem import DesignProblem
from repro.milp.solution import SolveStatus
from repro.obs.runtime import Instrumentation


@dataclass
class IterationRecord:
    """Journal entry for one explorer iteration."""

    index: int
    analytic_power_mw: float
    candidates: List[Configuration]
    evaluations: List[EvaluationRecord]
    feasible: List[EvaluationRecord]
    incumbent_power_mw: float
    incumbent: Optional[Configuration]

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


@dataclass
class ExplorationResult:
    """Outcome of one Algorithm 1 run."""

    pdr_min: float
    status: str  # "optimal" | "infeasible"
    termination_reason: str
    best: Optional[EvaluationRecord]
    iterations: List[IterationRecord] = field(default_factory=list)
    simulations_run: int = 0
    milp_solves: int = 0
    wall_seconds: float = 0.0
    #: Aggregate oracle telemetry (cache hit rate, wall-time percentiles,
    #: parallel speedup estimate) captured when the run finished.
    oracle_stats: Optional[dict] = None

    @property
    def found(self) -> bool:
        return self.best is not None

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.best is None:
            return (
                f"PDRmin={100 * self.pdr_min:.0f}%: infeasible "
                f"({self.simulations_run} simulations)"
            )
        b = self.best
        return (
            f"PDRmin={100 * self.pdr_min:.0f}%: {b.config.label()}  "
            f"PDR={b.pdr_percent:.1f}%  NLT={b.nlt_days:.1f} days  "
            f"({self.simulations_run} simulations, "
            f"{len(self.iterations)} iterations)"
        )

    def to_dict(self) -> dict:
        """JSON-serializable journal of the run — for external tooling,
        archival of exploration sessions, and regression comparison."""

        def _record(e) -> dict:
            return {
                "placement": list(e.config.placement),
                "tx_dbm": e.config.tx_dbm,
                "mac": e.config.mac.value,
                "routing": e.config.routing.value,
                "pdr": e.pdr,
                "power_mw": e.power_mw,
                "nlt_days": e.nlt_days,
            }

        return {
            "pdr_min": self.pdr_min,
            "status": self.status,
            "termination_reason": self.termination_reason,
            "simulations_run": self.simulations_run,
            "milp_solves": self.milp_solves,
            "wall_seconds": self.wall_seconds,
            "oracle_stats": self.oracle_stats,
            "best": _record(self.best) if self.best else None,
            "iterations": [
                {
                    "index": it.index,
                    "analytic_power_mw": it.analytic_power_mw,
                    "num_candidates": it.num_candidates,
                    "num_feasible": len(it.feasible),
                    "incumbent_power_mw": (
                        it.incumbent_power_mw
                        if it.incumbent_power_mw != math.inf
                        else None
                    ),
                    "evaluations": [_record(e) for e in it.evaluations],
                }
                for it in self.iterations
            ],
        }


@dataclass
class RobustIterationRecord:
    """Journal entry for one chance-constrained explorer iteration."""

    index: int
    analytic_power_mw: float
    #: ResilienceRecord per simulated candidate (duck-typed: defined in
    #: :mod:`repro.faults.resilience`; this module never imports it).
    records: List = field(default_factory=list)
    feasible: List = field(default_factory=list)
    incumbent_power_mw: float = math.inf
    incumbent: Optional[Configuration] = None


@dataclass
class RobustExplorationResult:
    """Outcome of one chance-constrained (robust) Algorithm 1 run.

    The accept test is ``quantile_q(PDR over the fault ensemble) ≥
    PDR_min`` instead of the nominal ``PDR ≥ PDR_min``; the objective and
    the α-corrected termination bound are unchanged (healthy power), so
    the result is the minimum-power design that stays reliable in at
    least a (1−q) fraction of fault worlds.
    """

    pdr_min: float
    quantile: float
    status: str  # "optimal" | "infeasible"
    termination_reason: str
    #: ResilienceRecord of the winner (None when infeasible).
    best: Optional[object]
    iterations: List[RobustIterationRecord] = field(default_factory=list)
    simulations_run: int = 0
    milp_solves: int = 0
    wall_seconds: float = 0.0
    oracle_stats: Optional[dict] = None

    @property
    def found(self) -> bool:
        return self.best is not None

    def summary(self) -> str:
        if self.best is None:
            return (
                f"PDRmin={100 * self.pdr_min:.0f}% @q={self.quantile:.2f}: "
                f"infeasible ({self.simulations_run} simulations)"
            )
        b = self.best
        return (
            f"PDRmin={100 * self.pdr_min:.0f}% @q={self.quantile:.2f}: "
            f"{b.config.label()}  "
            f"healthy PDR={100 * b.healthy.pdr:.1f}%  "
            f"q-PDR={100 * b.pdr_quantile(self.quantile):.1f}%  "
            f"NLT={b.healthy.nlt_days:.1f} days  "
            f"({self.simulations_run} simulations, "
            f"{len(self.iterations)} iterations)"
        )

    def to_dict(self) -> dict:
        return {
            "pdr_min": self.pdr_min,
            "quantile": self.quantile,
            "status": self.status,
            "termination_reason": self.termination_reason,
            "simulations_run": self.simulations_run,
            "milp_solves": self.milp_solves,
            "wall_seconds": self.wall_seconds,
            "oracle_stats": self.oracle_stats,
            "best": self.best.to_dict() if self.best is not None else None,
            "iterations": [
                {
                    "index": it.index,
                    "analytic_power_mw": it.analytic_power_mw,
                    "num_candidates": len(it.records),
                    "num_feasible": len(it.feasible),
                    "incumbent_power_mw": (
                        it.incumbent_power_mw
                        if it.incumbent_power_mw != math.inf
                        else None
                    ),
                    "records": [r.to_dict() for r in it.records],
                }
                for it in self.iterations
            ],
        }


class HumanIntranetExplorer:
    """Algorithm 1.

    Parameters
    ----------
    problem:
        The mapping problem P (scenario + design space + PDR_min).
    oracle:
        Simulation oracle; pass a shared one to reuse cached evaluations
        across runs at different PDR_min values (the paper's Fig. 3 setup).
    max_iterations:
        Safety valve; the design example converges in a handful.
    candidate_cap:
        Optional cap S on the number of MILP optima simulated per
        iteration (ablation A3 in DESIGN.md).  ``None`` simulates the full
        optimum set.
    pdr_tolerance:
        Slack subtracted from PDR_min when testing feasibility, absorbing
        finite-horizon estimator noise (paper: ε-bounded estimates).
    obs:
        Observability bundle.  Defaults to the oracle's, so a traced
        oracle automatically yields a traced explorer; the explorer emits
        one ``explorer.*`` event per iteration milestone (candidate
        verdicts, incumbent updates, cuts, termination) — the sequence
        asserted by the golden-trace regression test.
    """

    def __init__(
        self,
        problem: DesignProblem,
        oracle: Optional[SimulationOracle] = None,
        max_iterations: int = 200,
        candidate_cap: Optional[int] = None,
        pdr_tolerance: float = 0.0,
        milp_max_solutions: int = 256,
        use_alpha: bool = True,
        alpha_slack: float = 1.0,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.problem = problem
        self.oracle = oracle or SimulationOracle(problem.scenario, obs=obs)
        self.obs = obs if obs is not None else self.oracle.obs
        self.max_iterations = max_iterations
        self.candidate_cap = candidate_cap
        self.pdr_tolerance = pdr_tolerance
        # Enumerating more optima than will be simulated is wasted MILP
        # work; align the pool with the cap when one is set.
        if candidate_cap is not None:
            milp_max_solutions = min(milp_max_solutions, candidate_cap)
        self.milp_max_solutions = milp_max_solutions
        #: When False, the termination test uses the raw P̄* instead of the
        #: α-corrected bound (ablation A2) and may terminate prematurely —
        #: kept as a switch precisely so the ablation can measure the
        #: damage.
        self.use_alpha = use_alpha
        #: Multiplier on the α bound's radio term (1.0 = the paper's α;
        #: ≤0.7 makes termination strictly conservative against our
        #: simulator's measured Eq. 5 bias — see CoarsePowerModel).
        self.alpha_slack = alpha_slack
        self.formulation = MilpFormulation(problem, obs=self.obs)

    def explore(
        self, exhaustive: bool = False, journal=None
    ) -> ExplorationResult:
        """Run Algorithm 1 (or the exhaustive sweep variant).

        ``journal`` is an optional :class:`repro.core.journal.RunJournal`
        (duck-typed).  When present, every candidate verdict and every
        cut is recorded as the loop advances — and, on a resumed journal,
        its recorded evaluations are preloaded into the oracle so the
        replayed prefix re-simulates nothing while reproducing the exact
        same trajectory, counters, and trace (DESIGN.md §9).
        """
        start = time.perf_counter()
        if journal is not None:
            journal.preload_into(self.oracle)
        power_model = self.problem.scenario.power_model()
        pdr_min = self.problem.pdr_min
        obs = self.obs
        obs.event(
            "explorer.start",
            pdr_min=pdr_min,
            exhaustive=exhaustive,
            candidate_cap=self.candidate_cap,
            use_alpha=self.use_alpha,
        )

        cuts: List[float] = []
        incumbent: Optional[EvaluationRecord] = None
        p_min = math.inf
        iterations: List[IterationRecord] = []
        milp_solves = 0
        sims_before = self.oracle.simulations_run
        termination = "max_iterations"

        for index in range(self.max_iterations):
            status, candidates, p_star = self.formulation.enumerate_candidates(
                cuts, max_solutions=self.milp_max_solutions
            )
            milp_solves += 1
            if status is SolveStatus.INFEASIBLE or not candidates:
                termination = (
                    "milp_exhausted" if incumbent is not None else "milp_infeasible"
                )
                break
            if status is not SolveStatus.OPTIMAL:
                raise RuntimeError(f"unexpected MILP status {status}")
            assert p_star is not None
            obs.event(
                "explorer.iteration",
                iteration=index,
                p_star_mw=p_star,
                num_candidates=len(candidates),
            )

            # Line 5: the α-corrected bound.  P̄*/α equals the least
            # simulated power any candidate at this or a higher analytical
            # level could exhibit while still meeting PDR_min.
            if not exhaustive and incumbent is not None:
                if self.use_alpha:
                    bound = power_model.power_lower_bound_mw(
                        p_star, pdr_min, self.alpha_slack
                    )
                else:
                    bound = p_star
                if bound > p_min:
                    termination = "alpha_bound"
                    obs.event(
                        "explorer.bound",
                        iteration=index,
                        bound_mw=bound,
                        incumbent_power_mw=p_min,
                    )
                    break

            if self.candidate_cap is not None:
                candidates = candidates[: self.candidate_cap]

            evaluations = self.oracle.evaluate_many(candidates)
            feasible = [
                e for e in evaluations if e.pdr >= pdr_min - self.pdr_tolerance
            ]
            if journal is not None:
                for e in evaluations:
                    journal.candidate(
                        e, e.pdr >= pdr_min - self.pdr_tolerance
                    )
            if obs.tracing:
                for e in evaluations:
                    accepted = e.pdr >= pdr_min - self.pdr_tolerance
                    obs.event(
                        "explorer.candidate",
                        iteration=index,
                        config=e.config.label(),
                        pdr=e.pdr,
                        power_mw=e.power_mw,
                        accepted=accepted,
                        reason="meets_pdr_min" if accepted else "pdr_below_min",
                    )
            feasible.sort(key=lambda e: (e.power_mw, e.config.key()))
            if feasible and feasible[0].power_mw <= p_min:
                incumbent = feasible[0]
                p_min = incumbent.power_mw
                obs.event(
                    "explorer.incumbent",
                    iteration=index,
                    config=incumbent.config.label(),
                    power_mw=p_min,
                    pdr=incumbent.pdr,
                )

            iterations.append(
                IterationRecord(
                    index=index,
                    analytic_power_mw=p_star,
                    candidates=list(candidates),
                    evaluations=evaluations,
                    feasible=feasible,
                    incumbent_power_mw=p_min,
                    incumbent=incumbent.config if incumbent else None,
                )
            )

            # In the paper the loop exits via line 5 at the *next* MILP
            # solve; with the default α model a feasible incumbent at the
            # current level always certifies optimality there, which is why
            # the paper observes termination "soon after the first feasible
            # configuration was found".
            cuts.append(p_star)
            if journal is not None:
                journal.cut(p_star)
            obs.event("explorer.cut", iteration=index, p_star_mw=p_star)

        wall = time.perf_counter() - start
        obs.counter("explorer.runs").inc()
        obs.counter("explorer.iterations").inc(len(iterations))
        obs.event(
            "explorer.done",
            status="optimal" if incumbent is not None else "infeasible",
            termination=termination,
            best=incumbent.config.label() if incumbent else None,
            best_power_mw=p_min if incumbent is not None else None,
            iterations=len(iterations),
            milp_solves=milp_solves,
            simulations=self.oracle.simulations_run - sims_before,
        )
        return ExplorationResult(
            pdr_min=pdr_min,
            status="optimal" if incumbent is not None else "infeasible",
            termination_reason=termination,
            best=incumbent,
            iterations=iterations,
            simulations_run=self.oracle.simulations_run - sims_before,
            milp_solves=milp_solves,
            wall_seconds=wall,
            oracle_stats=self.oracle.stats(),
        )

    # -- convenience ------------------------------------------------------------

    def sweep(self) -> ExplorationResult:
        """Exhaustive MILP-ordered sweep of the whole feasible space."""
        return self.explore(exhaustive=True)

    # -- chance-constrained (robust) exploration ---------------------------------

    def explore_robust(
        self,
        ensemble_oracle,
        quantile: float = 0.25,
        journal=None,
    ) -> RobustExplorationResult:
        """Algorithm 1 with a chance-constrained accept test.

        ``ensemble_oracle`` is duck-typed (an
        :class:`repro.faults.resilience.EnsembleOracle`): it must offer
        ``evaluate_many(configs) -> [ResilienceRecord]`` and ``stats()``.
        A candidate is feasible when the lower ``quantile`` of its PDR
        over the fault ensemble meets PDR_min — i.e. the reliability
        bound holds in at least a (1 − quantile) fraction of fault
        worlds.  The objective and the α-corrected termination bound stay
        on *healthy* power: faults do not reduce any candidate's healthy
        power, so the bound argument of line 5 carries over unchanged,
        and the cut sequence is the same ascending analytical-power walk.

        ``journal`` works as in :meth:`explore`, with per-fault-world
        records journaled per candidate and preloaded into the ensemble
        oracle's sub-oracles on resume.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        start = time.perf_counter()
        if journal is not None:
            journal.preload_robust_into(ensemble_oracle)
        power_model = self.problem.scenario.power_model()
        pdr_min = self.problem.pdr_min
        obs = self.obs
        obs.event(
            "explorer.robust_start",
            pdr_min=pdr_min,
            quantile=quantile,
            candidate_cap=self.candidate_cap,
            use_alpha=self.use_alpha,
        )

        cuts: List[float] = []
        incumbent = None  # ResilienceRecord
        p_min = math.inf
        iterations: List[RobustIterationRecord] = []
        milp_solves = 0
        sims_before = int(ensemble_oracle.stats()["simulations_run"])
        termination = "max_iterations"

        for index in range(self.max_iterations):
            status, candidates, p_star = self.formulation.enumerate_candidates(
                cuts, max_solutions=self.milp_max_solutions
            )
            milp_solves += 1
            if status is SolveStatus.INFEASIBLE or not candidates:
                termination = (
                    "milp_exhausted" if incumbent is not None else "milp_infeasible"
                )
                break
            if status is not SolveStatus.OPTIMAL:
                raise RuntimeError(f"unexpected MILP status {status}")
            assert p_star is not None
            obs.event(
                "explorer.robust_iteration",
                iteration=index,
                p_star_mw=p_star,
                num_candidates=len(candidates),
            )

            if incumbent is not None:
                if self.use_alpha:
                    bound = power_model.power_lower_bound_mw(
                        p_star, pdr_min, self.alpha_slack
                    )
                else:
                    bound = p_star
                if bound > p_min:
                    termination = "alpha_bound"
                    obs.event(
                        "explorer.robust_bound",
                        iteration=index,
                        bound_mw=bound,
                        incumbent_power_mw=p_min,
                    )
                    break

            if self.candidate_cap is not None:
                candidates = candidates[: self.candidate_cap]

            records = ensemble_oracle.evaluate_many(candidates)
            feasible = [
                r
                for r in records
                if r.pdr_quantile(quantile) >= pdr_min - self.pdr_tolerance
            ]
            if journal is not None:
                for r in records:
                    journal.robust_candidate(
                        r,
                        r.pdr_quantile(quantile)
                        >= pdr_min - self.pdr_tolerance,
                    )
            if obs.tracing:
                for r in records:
                    q_pdr = r.pdr_quantile(quantile)
                    accepted = q_pdr >= pdr_min - self.pdr_tolerance
                    obs.event(
                        "explorer.robust_candidate",
                        iteration=index,
                        config=r.config.label(),
                        healthy_pdr=r.healthy.pdr,
                        q_pdr=q_pdr,
                        pdr_min_fault=r.pdr_min_fault,
                        power_mw=r.healthy.power_mw,
                        accepted=accepted,
                        reason=(
                            "meets_quantile_pdr" if accepted else "quantile_pdr_below_min"
                        ),
                    )
            feasible.sort(key=lambda r: (r.healthy.power_mw, r.config.key()))
            if feasible and feasible[0].healthy.power_mw <= p_min:
                incumbent = feasible[0]
                p_min = incumbent.healthy.power_mw
                obs.event(
                    "explorer.robust_incumbent",
                    iteration=index,
                    config=incumbent.config.label(),
                    power_mw=p_min,
                    q_pdr=incumbent.pdr_quantile(quantile),
                )

            iterations.append(
                RobustIterationRecord(
                    index=index,
                    analytic_power_mw=p_star,
                    records=list(records),
                    feasible=feasible,
                    incumbent_power_mw=p_min,
                    incumbent=incumbent.config if incumbent else None,
                )
            )
            cuts.append(p_star)
            if journal is not None:
                journal.cut(p_star)
            obs.event("explorer.robust_cut", iteration=index, p_star_mw=p_star)

        wall = time.perf_counter() - start
        stats = ensemble_oracle.stats()
        obs.counter("explorer.robust_runs").inc()
        obs.event(
            "explorer.robust_done",
            status="optimal" if incumbent is not None else "infeasible",
            termination=termination,
            best=incumbent.config.label() if incumbent else None,
            best_power_mw=p_min if incumbent is not None else None,
            iterations=len(iterations),
            milp_solves=milp_solves,
            simulations=int(stats["simulations_run"]) - sims_before,
        )
        return RobustExplorationResult(
            pdr_min=pdr_min,
            quantile=quantile,
            status="optimal" if incumbent is not None else "infeasible",
            termination_reason=termination,
            best=incumbent,
            iterations=iterations,
            simulations_run=int(stats["simulations_run"]) - sims_before,
            milp_solves=milp_solves,
            wall_seconds=wall,
            oracle_stats=stats,
        )

    # -- the dual problem -----------------------------------------------------------

    def explore_max_reliability(
        self,
        min_lifetime_days: float,
        power_slack: float = 0.7,
    ) -> "DualExplorationResult":
        """The dual of Problem (8): maximize PDR subject to NLT ≥ bound.

        The paper motivates both directions ("for an everyday ... monitoring
        application, achieving the longest possible battery lifetime is
        preferred"; "when a safety-critical node ... is part of the
        network, reliability becomes of utmost importance") but evaluates
        only the lifetime-primal form.  The dual reuses the same machinery
        mirrored: the lifetime bound maps to a power budget
        P_max = E_bat / NLT_min; the MILP enumerates power levels
        ascending, and every level that could possibly simulate within the
        budget — i.e. with P_bl + slack·(P̄ − P_bl) ≤ P_max, using the
        measured model-bias slack — contributes its candidate pool.  The
        answer is the highest-PDR candidate whose *simulated* power meets
        the budget (ties broken toward lower power).
        """
        if min_lifetime_days <= 0:
            raise ValueError("lifetime bound must be positive")
        start = time.perf_counter()
        battery = self.problem.scenario.battery
        baseline = self.problem.scenario.app.baseline_mw
        max_power_mw = battery.energy_mwh / (min_lifetime_days * 24.0)
        sims_before = self.oracle.simulations_run

        self.obs.event(
            "explorer.dual_start",
            min_lifetime_days=min_lifetime_days,
            max_power_mw=max_power_mw,
        )
        cuts: List[float] = []
        evaluations: List[EvaluationRecord] = []
        milp_solves = 0
        while True:
            status, candidates, p_star = self.formulation.enumerate_candidates(
                cuts, max_solutions=self.milp_max_solutions
            )
            milp_solves += 1
            if status is SolveStatus.INFEASIBLE or not candidates:
                break
            assert p_star is not None
            optimistic = baseline + power_slack * (p_star - baseline)
            if optimistic > max_power_mw:
                break  # no deeper level can simulate within the budget
            if self.candidate_cap is not None:
                candidates = candidates[: self.candidate_cap]
            self.obs.event(
                "explorer.dual_level",
                p_star_mw=p_star,
                num_candidates=len(candidates),
            )
            evaluations.extend(self.oracle.evaluate_many(candidates))
            cuts.append(p_star)

        within_budget = [
            e for e in evaluations if e.power_mw <= max_power_mw + 1e-12
        ]
        best = (
            max(within_budget, key=lambda e: (e.pdr, -e.power_mw))
            if within_budget
            else None
        )
        self.obs.event(
            "explorer.dual_done",
            best=best.config.label() if best else None,
            best_pdr=best.pdr if best else None,
            evaluated=len(evaluations),
            within_budget=len(within_budget),
        )
        return DualExplorationResult(
            min_lifetime_days=min_lifetime_days,
            max_power_mw=max_power_mw,
            best=best,
            evaluations=evaluations,
            simulations_run=self.oracle.simulations_run - sims_before,
            milp_solves=milp_solves,
            wall_seconds=time.perf_counter() - start,
        )


@dataclass
class DualExplorationResult:
    """Outcome of the reliability-maximizing dual exploration."""

    min_lifetime_days: float
    max_power_mw: float
    best: Optional[EvaluationRecord]
    evaluations: List[EvaluationRecord] = field(default_factory=list)
    simulations_run: int = 0
    milp_solves: int = 0
    wall_seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.best is not None

    def summary(self) -> str:
        if self.best is None:
            return (
                f"NLTmin={self.min_lifetime_days:.1f} d: infeasible "
                f"({self.simulations_run} simulations)"
            )
        b = self.best
        return (
            f"NLTmin={self.min_lifetime_days:.1f} d: {b.config.label()}  "
            f"PDR={b.pdr_percent:.1f}%  NLT={b.nlt_days:.1f} days  "
            f"({self.simulations_run} simulations)"
        )
