"""Crash-safe run journal: checkpoint/resume for Algorithm 1 campaigns.

A :class:`RunJournal` is an append-only, fsynced JSONL file recording the
*logical trajectory* of one exploration run — every evaluated candidate
(with its full simulation record and accept/reject verdict) and every
MILP cut, in the exact order Algorithm 1 produced them — plus a manifest
line that fingerprints everything the trajectory depends on (scenario
fingerprint, PDR bound, chance-constraint quantile, fault ensemble,
explorer switches).  Because each line is flushed and ``fsync``'d before
the run advances, a SIGKILL at any point loses at most the line being
written, and that torn tail is detected (per-line CRC32) and dropped on
resume.

Resume protocol (``hi-explore solve/robust --resume <dir>``):

1. The journal is replayed: the manifest must match the resumed run's
   arguments field-for-field, and every journaled candidate's
   :class:`~repro.core.evaluator.EvaluationRecord` is *preloaded* into the
   simulation oracle (:meth:`SimulationOracle.preload_journal`), where its
   first touch counts as a simulation — not a cache hit — so counters,
   summaries, and traces of the resumed run are identical to an
   uninterrupted one.
2. Algorithm 1 then runs from iteration 0.  MILP levels are re-solved
   (cheap — warm-started, and orders of magnitude below simulation cost)
   while every journaled candidate evaluation is answered from the replay
   set with zero new simulations; the cut sequence regenerates itself and
   is *verified* against the journaled cuts as the loop advances
   (:meth:`RunJournal.cut`), so solver state is restored by validated
   replay rather than trusted blindly.
3. Past the journaled prefix the run continues live, appending new
   entries to the same file — a run can be killed and resumed any number
   of times and still produce the bit-identical final result, summary,
   and golden trace of a never-interrupted run.

Any divergence between the replaying run and the journal (different
candidate, different verdict, different cut) raises :class:`JournalError`
instead of silently producing a franken-trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from typing import Dict, Iterable, List, Optional

#: Bumped when the journal line schema changes incompatibly.
JOURNAL_VERSION = 1

#: File name of the journal inside its run directory.
JOURNAL_FILENAME = "journal.jsonl"

#: File name of the deterministic run summary written next to the journal.
SUMMARY_FILENAME = "summary.json"

#: Campaign-directory layout (see DESIGN.md §11): the campaign manifest
#: pins the spec + fingerprint, each shard directory carries its own
#: manifest linking back to the campaign fingerprint, and every wearer
#: run inside a shard is an ordinary journaled run directory.
CAMPAIGN_MANIFEST_FILENAME = "campaign.json"
SHARD_MANIFEST_FILENAME = "shard.json"
SHARDS_DIRNAME = "shards"

#: Lease/commit record log of a distributed (fleet-executed) campaign —
#: the durable state of the coordinator's shard queue (DESIGN.md §12).
QUEUE_LOG_FILENAME = "queue.jsonl"

#: ``oracle_stats`` keys that are deterministic across interrupted/resumed
#: and uninterrupted runs of the same campaign (wall-clock-derived keys are
#: not, and are stripped from the summary projection).
DETERMINISTIC_STAT_KEYS = (
    "simulations_run",
    "cache_hits",
    "ensemble_size",
    "ensemble_evaluations",
)


class JournalError(RuntimeError):
    """A journal could not be created, replayed, or matched to its run."""


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _crc(payload: dict) -> str:
    return format(zlib.crc32(_canonical(payload).encode("utf-8")), "08x")


def payload_crc(payload: dict) -> str:
    """CRC32 of a payload's canonical JSON form — the integrity token the
    campaign fabric uses to key idempotent shard commits (a worker and
    the coordinator computing this over the same dict always agree,
    because canonicalization sorts keys and fixes separators)."""
    return _crc(payload)


def _load_entries(path: pathlib.Path):
    """Replay a journal file, verifying per-line CRCs.

    A torn *final* line (the crash-mid-append case) is dropped silently;
    a bad line anywhere else means the fsynced prefix itself is damaged,
    which is not survivable — that raises :class:`JournalError`.

    Returns ``(entries, valid_bytes)`` where ``valid_bytes`` is the byte
    length of the intact prefix: everything past it is the torn tail,
    which :meth:`RunJournal.resume` physically truncates away so the
    append handle never writes after a fragment.
    """
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.readlines()
    lines = [
        (i, line.strip()) for i, line in enumerate(raw) if line.strip()
    ]
    entries: List[dict] = []
    last_index = lines[-1][0] if lines else -1
    valid_bytes = 0
    offset = 0
    offsets = []
    for line in raw:
        offset += len(line.encode("utf-8"))
        offsets.append(offset)
    for i, line in lines:
        entry: Optional[dict] = None
        try:
            wrapper = json.loads(line)
            if (
                isinstance(wrapper, dict)
                and isinstance(wrapper.get("entry"), dict)
                and wrapper.get("crc") == _crc(wrapper["entry"])
            ):
                entry = wrapper["entry"]
        except ValueError:
            entry = None
        if entry is None:
            if i == last_index:
                break  # torn tail from a kill mid-append: drop it
            raise JournalError(
                f"corrupt journal line {i + 1} in {path} (not a torn "
                "tail); the journal cannot be trusted"
            )
        entries.append(entry)
        valid_bytes = offsets[i]
    return entries, valid_bytes


def summary_projection(payload: dict) -> dict:
    """The deterministic projection of an ``ExplorationResult.to_dict()``.

    Strips wall-clock fields and reduces ``oracle_stats`` to the keys in
    :data:`DETERMINISTIC_STAT_KEYS`; what remains is bit-identical between
    an uninterrupted run and any kill/resume sequence of the same
    campaign — the artifact the chaos-smoke CI job diffs.
    """
    out = dict(payload)
    out.pop("wall_seconds", None)
    stats = out.get("oracle_stats") or {}
    out["oracle_stats"] = {
        k: stats[k] for k in DETERMINISTIC_STAT_KEYS if k in stats
    }
    return out


def write_summary(directory, payload: dict) -> pathlib.Path:
    """Atomically write the deterministic run summary into ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / SUMMARY_FILENAME
    tmp = directory / (SUMMARY_FILENAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(summary_projection(payload), fh, indent=1, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


# -- multi-shard campaign manifests ----------------------------------------------
#
# A campaign directory holds many journaled runs (one per wearer) spread
# over shard subdirectories.  The linkage is CRC-checked JSON manifests:
# ``campaign.json`` at the root pins the campaign spec and fingerprint,
# and each ``shards/shard-NN/shard.json`` pins the same fingerprint plus
# its wearer list.  ``load_campaign_shards`` re-validates the whole chain
# on resume, so a campaign directory can never silently mix trajectories
# from two different specs (the per-run analogue is the RunJournal
# manifest check above).


def _write_checked_json(path: pathlib.Path, payload: dict) -> pathlib.Path:
    """Atomically write ``{"crc": ..., "manifest": payload}``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(
            {"crc": _crc(payload), "manifest": payload},
            fh,
            indent=1,
            sort_keys=True,
        )
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def _load_checked_json(path: pathlib.Path, what: str) -> dict:
    path = pathlib.Path(path)
    if not path.exists():
        raise JournalError(f"no {what} at {path}")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            wrapper = json.load(fh)
    except ValueError as exc:
        raise JournalError(f"unreadable {what} at {path}: {exc}") from None
    manifest = wrapper.get("manifest") if isinstance(wrapper, dict) else None
    if not isinstance(manifest, dict) or wrapper.get("crc") != _crc(manifest):
        raise JournalError(f"corrupt {what} at {path} (CRC mismatch)")
    return manifest


def shard_directory(campaign_dir, index: int) -> pathlib.Path:
    return pathlib.Path(campaign_dir) / SHARDS_DIRNAME / f"shard-{index:02d}"


def write_campaign_manifest(
    campaign_dir, spec_dict: dict, fingerprint: str, shards: int
) -> pathlib.Path:
    payload = {
        "kind": "campaign_manifest",
        "version": JOURNAL_VERSION,
        "fingerprint": fingerprint,
        "shards": int(shards),
        "spec": spec_dict,
    }
    return _write_checked_json(
        pathlib.Path(campaign_dir) / CAMPAIGN_MANIFEST_FILENAME, payload
    )


def load_campaign_manifest(campaign_dir) -> dict:
    manifest = _load_checked_json(
        pathlib.Path(campaign_dir) / CAMPAIGN_MANIFEST_FILENAME,
        "campaign manifest",
    )
    if manifest.get("kind") != "campaign_manifest":
        raise JournalError(
            f"{campaign_dir}: campaign.json is not a campaign manifest"
        )
    if manifest.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"campaign manifest version {manifest.get('version')} in "
            f"{campaign_dir} is not version {JOURNAL_VERSION}"
        )
    return manifest


def write_shard_manifest(
    campaign_dir, index: int, fingerprint: str, wearer_ids: List[str]
) -> pathlib.Path:
    payload = {
        "kind": "shard_manifest",
        "version": JOURNAL_VERSION,
        "fingerprint": fingerprint,
        "index": int(index),
        "wearers": list(wearer_ids),
    }
    return _write_checked_json(
        shard_directory(campaign_dir, index) / SHARD_MANIFEST_FILENAME, payload
    )


def load_campaign_shards(campaign_dir) -> List[dict]:
    """Load and cross-validate every shard manifest of a campaign.

    Each shard must carry the campaign manifest's fingerprint and its
    directory's own index; any mismatch means the directory holds pieces
    of different campaigns and raises :class:`JournalError` instead of
    letting an aggregate silently fuse them.  Returns the shard manifests
    sorted by index.
    """
    campaign_dir = pathlib.Path(campaign_dir)
    campaign = load_campaign_manifest(campaign_dir)
    fingerprint = campaign.get("fingerprint")
    shards_root = campaign_dir / SHARDS_DIRNAME
    manifests: List[dict] = []
    if shards_root.exists():
        for entry in sorted(shards_root.iterdir()):
            if not entry.is_dir():
                continue
            manifest = _load_checked_json(
                entry / SHARD_MANIFEST_FILENAME, "shard manifest"
            )
            if manifest.get("fingerprint") != fingerprint:
                raise JournalError(
                    f"shard manifest {entry / SHARD_MANIFEST_FILENAME} "
                    f"belongs to campaign {manifest.get('fingerprint')!r}, "
                    f"not {fingerprint!r} — refusing to mix campaigns"
                )
            expected = f"shard-{manifest.get('index'):02d}"
            if entry.name != expected:
                raise JournalError(
                    f"shard directory {entry} holds manifest index "
                    f"{manifest.get('index')!r}"
                )
            manifests.append(manifest)
    manifests.sort(key=lambda m: m["index"])
    seen: set = set()
    for manifest in manifests:
        for wearer in manifest.get("wearers", ()):
            if wearer in seen:
                raise JournalError(
                    f"wearer {wearer!r} appears in two shard manifests "
                    f"under {campaign_dir}"
                )
            seen.add(wearer)
    return manifests


class EventLog:
    """Append-only, fsynced, CRC-framed JSONL log of plain dict events.

    The generic sibling of :class:`RunJournal`: same wire format (one
    ``{"crc", "entry"}`` wrapper per line), same torn-tail semantics (a
    kill mid-append loses at most the line being written; the fragment is
    detected on open and physically truncated), but no replay cursor or
    trajectory verification — it is a durable record, not a checkpoint.
    The campaign fabric stores its lease/commit records in one of these
    (``queue.jsonl``), which is what lets a restarted coordinator recover
    every in-flight lease instead of forgetting who holds what.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self._entries: List[dict] = []
        if self.path.exists():
            entries, valid_bytes = _load_entries(self.path)
            if valid_bytes < self.path.stat().st_size:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._entries = entries
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    @property
    def entries(self) -> List[dict]:
        return list(self._entries)

    def append(self, entry: dict) -> dict:
        """Durably append one event (flushed + fsynced before returning)."""
        if self._fh is None:
            raise JournalError(f"event log {self.path} is closed")
        line = json.dumps({"crc": _crc(entry), "entry": entry})
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._entries.append(entry)
        return entry

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @staticmethod
    def follow(path) -> "EventLogFollower":
        """Open a read-only incremental reader over a (possibly live)
        event log — see :class:`EventLogFollower`.  Unlike constructing
        an :class:`EventLog`, following never opens the file for append
        and never truncates a torn tail, so a standby can tail the
        primary's log without interfering with the writer."""
        return EventLogFollower(path)

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EventLog({str(self.path)!r}, entries={len(self._entries)})"


class EventLogFollower:
    """Incremental, read-only reader over a live :class:`EventLog` file.

    ``poll()`` returns every *whole, CRC-valid* record appended since the
    previous poll.  The writer appends each record as one
    ``json + "\\n"`` write, so a concurrent reader can observe three
    states of the tail: nothing yet, a torn prefix of the line (no
    terminating newline — withheld until complete), or the full line
    (CRC-checked, then surfaced).  A *newline-terminated* line that fails
    its CRC is never possible from a torn write (fragments lack the
    terminator), so it is held back and retried — if the writer
    truncated a torn tail on restart the bytes simply disappear under
    us, which ``poll`` detects as file shrinkage and handles by
    re-reading from the last consumed offset.

    The follower holds no file handle between polls and never writes, so
    any number of them can tail one log without coordination.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        #: Byte length of the consumed, CRC-valid prefix.
        self._offset = 0

    def poll(self) -> List[dict]:
        """Every whole CRC-valid record appended since the last poll."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size < self._offset:
                    # The file shrank (writer restart truncated a torn
                    # tail past our consumed prefix, or the log was
                    # replaced): drop back to the start of the file so
                    # the next read realigns on a line boundary.
                    self._offset = 0
                fh.seek(self._offset)
                blob = fh.read()
        except FileNotFoundError:
            self._offset = 0
            return []
        out: List[dict] = []
        consumed = 0
        while True:
            newline = blob.find(b"\n", consumed)
            if newline < 0:
                break  # torn tail (no terminator yet): withhold
            line = blob[consumed : newline + 1]
            text = line.strip()
            if not text:
                consumed = newline + 1
                continue
            entry: Optional[dict] = None
            try:
                wrapper = json.loads(text.decode("utf-8"))
                if (
                    isinstance(wrapper, dict)
                    and isinstance(wrapper.get("entry"), dict)
                    and wrapper.get("crc") == _crc(wrapper["entry"])
                ):
                    entry = wrapper["entry"]
            except (ValueError, UnicodeDecodeError):
                entry = None
            if entry is None:
                # A complete line that fails its CRC: not a torn write
                # (those lack the newline), so either mid-truncation
                # churn or corruption.  Hold position; a later poll
                # re-reads once the writer has settled.
                break
            out.append(entry)
            consumed = newline + 1
        self._offset += consumed
        return out

    def __repr__(self) -> str:
        return (
            f"EventLogFollower({str(self.path)!r}, offset={self._offset})"
        )


class RunJournal:
    """One run's append-only checkpoint log (see the module docstring).

    Use the :meth:`create` / :meth:`resume` constructors; the journal then
    rides along inside
    :meth:`~repro.core.explorer.HumanIntranetExplorer.explore` or
    :meth:`~repro.core.explorer.HumanIntranetExplorer.explore_robust`,
    which call :meth:`candidate` / :meth:`robust_candidate` / :meth:`cut`
    as the trajectory advances.  While the replay cursor is inside the
    journaled prefix those calls *verify* instead of write; past it they
    append.
    """

    def __init__(
        self,
        directory: pathlib.Path,
        manifest: dict,
        entries: List[dict],
        fh,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        self.manifest = manifest
        self._entries = entries
        self._cursor = 0
        self._fh = fh

    # -- constructors ------------------------------------------------------------

    @classmethod
    def create(cls, directory, **manifest) -> "RunJournal":
        """Start a fresh journal in ``directory`` (must not hold one)."""
        directory = pathlib.Path(directory)
        path = directory / JOURNAL_FILENAME
        if path.exists():
            raise JournalError(
                f"{path} already exists; use --resume to continue that "
                "run (or point --out at a fresh directory)"
            )
        directory.mkdir(parents=True, exist_ok=True)
        fh = open(path, "a", encoding="utf-8")
        manifest_entry = {
            "kind": "manifest",
            "version": JOURNAL_VERSION,
            **manifest,
        }
        journal = cls(directory, manifest_entry, [], fh)
        journal._append(manifest_entry)
        return journal

    @classmethod
    def resume(cls, directory, **expected_manifest) -> "RunJournal":
        """Reopen a journal, verifying its manifest against the resumed
        run's arguments.  Returns a journal whose replay cursor covers the
        recorded prefix."""
        directory = pathlib.Path(directory)
        path = directory / JOURNAL_FILENAME
        if not path.exists():
            raise JournalError(f"no journal to resume at {path}")
        entries, valid_bytes = _load_entries(path)
        if valid_bytes < path.stat().st_size:
            # physically drop the torn tail: the append handle must
            # start at a clean line boundary, or the fragment would
            # fuse with the next entry and corrupt the journal
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        if not entries or entries[0].get("kind") != "manifest":
            raise JournalError(f"{path} has no readable manifest line")
        manifest = entries[0]
        if manifest.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal version {manifest.get('version')} in {path} is "
                f"not version {JOURNAL_VERSION}"
            )
        for key, value in expected_manifest.items():
            if manifest.get(key) != value:
                raise JournalError(
                    f"journal manifest mismatch on {key!r}: journal has "
                    f"{manifest.get(key)!r}, the resumed run supplies "
                    f"{value!r} — refusing to mix trajectories"
                )
        fh = open(path, "a", encoding="utf-8")
        return cls(directory, manifest, entries[1:], fh)

    # -- low-level append --------------------------------------------------------

    def _append(self, entry: dict) -> None:
        if self._fh is None:
            raise JournalError("journal is closed")
        line = json.dumps({"crc": _crc(entry), "entry": entry})
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _record(self, entry: dict, what: str) -> bool:
        """Advance the replay cursor (verifying) or append ``entry``.

        Returns ``True`` when the entry was newly appended, ``False`` when
        it matched the journaled prefix.
        """
        if self._cursor < len(self._entries):
            expected = self._entries[self._cursor]
            if expected != entry:
                raise JournalError(
                    f"resumed trajectory diverged from the journal at "
                    f"entry {self._cursor + 1} ({what}): journal has "
                    f"{_canonical(expected)[:200]}, the run produced "
                    f"{_canonical(entry)[:200]}"
                )
            self._cursor += 1
            return False
        self._append(entry)
        self._entries.append(entry)
        self._cursor += 1
        return True

    # -- trajectory recording ----------------------------------------------------

    def candidate(self, record, accepted: bool) -> bool:
        """Record one nominal candidate evaluation and its verdict."""
        from repro.core.result_cache import record_to_dict

        entry = {
            "kind": "candidate",
            "record": record_to_dict(record),
            "accepted": bool(accepted),
        }
        return self._record(entry, "candidate")

    def robust_candidate(self, resilience_record, accepted: bool) -> bool:
        """Record one chance-constrained candidate: the healthy record
        plus every per-fault-world record, keyed by scenario name."""
        from repro.core.result_cache import record_to_dict

        entry = {
            "kind": "robust_candidate",
            "healthy": record_to_dict(resilience_record.healthy),
            "faulted": [
                [scenario.name, record_to_dict(rec)]
                for scenario, rec in resilience_record.faulted
            ],
            "accepted": bool(accepted),
        }
        return self._record(entry, "robust candidate")

    def cut(self, p_star_mw: float) -> bool:
        """Record one MILP cut (floats round-trip JSON exactly, so replay
        verification is bit-exact)."""
        entry = {"kind": "cut", "p_star_mw": float(p_star_mw)}
        return self._record(entry, "cut")

    # -- replay access -----------------------------------------------------------

    @property
    def entries(self) -> List[dict]:
        return list(self._entries)

    def replay_cuts(self) -> List[float]:
        return [
            e["p_star_mw"] for e in self._entries if e.get("kind") == "cut"
        ]

    def replay_records(self) -> List[object]:
        """Every journaled nominal :class:`EvaluationRecord`, in order."""
        from repro.core.result_cache import record_from_dict

        return [
            record_from_dict(e["record"])
            for e in self._entries
            if e.get("kind") == "candidate"
        ]

    def replay_robust_payloads(self) -> List[dict]:
        """Journaled robust candidates as raw payload dicts (the ensemble
        oracle deserializes them into its per-fault-world sub-oracles)."""
        return [
            e for e in self._entries if e.get("kind") == "robust_candidate"
        ]

    def preload_into(self, oracle) -> int:
        """Feed the journaled nominal records into a simulation oracle's
        replay set; returns the number of preloaded records."""
        records = self.replay_records()
        oracle.preload_journal(records)
        return len(records)

    def preload_robust_into(self, ensemble_oracle) -> int:
        """Feed the journaled robust records into an ensemble oracle's
        per-fault-world sub-oracles; returns the number of candidates."""
        payloads = self.replay_robust_payloads()
        ensemble_oracle.preload_journal(payloads)
        return len(payloads)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RunJournal({str(self.path)!r}, entries={len(self._entries)}, "
            f"cursor={self._cursor})"
        )
