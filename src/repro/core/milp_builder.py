"""The relaxed MILP P̃ (Sec. 3): coarse-power-optimal candidate generation.

P̃ contains the topological and configuration constraints of Problem (8)
and minimizes the analytical node power P̄ of Eq. 9, dropping only the
simulation-defined PDR constraint (8d).  Eq. 9 is nonlinear in the raw
decision variables (products of the routing selector, the TX-mode selector,
and polynomial terms in N), so the formulation linearizes it with one
indicator per (routing, TX level, node count) combination:

    z_{r,k,n} = 1  ⇔  routing = r ∧ TX level = k ∧ N = n
    P̄ = P_bl + Σ z_{r,k,n} · cost(r, k, n)

with ``cost`` precomputed from Eq. 9.  The combination count is tiny
(a few routing schemes × 3 TX levels × a handful of node counts), standard
big-M-free linking constraints tie the indicators to the selectors, and the
MILP stays exact.

The MAC selector appears in no cost term (Eq. 9 is MAC-agnostic), so every
optimum comes in CSMA and TDMA flavours; the optimum-set enumerator
(``RunMILP`` returning a *set* S) surfaces both for simulation — exactly
the behaviour the paper's Fig. 3 arrows show, where the same placement and
power appear with both MACs at different PDRs.

Power cuts from Algorithm 1's line 11 (``P̄ > P̄*``) are applied as linear
constraints on the z combination; the builder is stateless and rebuilds the
model per iteration, which is cheap at this size and keeps every RunMILP
call independent and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.design_space import Configuration
from repro.core.problem import DesignProblem
from repro.library.mac_options import MacKind, RoutingKind
from repro.milp import Model, SolveStatus, enumerate_optimal_solutions
from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.expr import LinExpr, Var
from repro.obs.runtime import Instrumentation, get_active

#: Fallback strictness epsilon for power cuts when the cost table is
#: degenerate (single level); normally the epsilon is derived from the
#: actual gap structure, see :meth:`MilpFormulation.cut_epsilon_mw`.
FALLBACK_CUT_EPSILON_MW = 1e-6


@dataclass
class _Vars:
    """Handles to the decision variables of one built model."""

    placement: List[Var]
    tx_levels: List[Var]
    mac_tdma: Var
    routing: Dict[str, Var]
    node_counts: Dict[int, Var]
    combos: Dict[Tuple[str, int, int], Var]


class MilpFormulation:
    """Builds and solves P̃ for a given design problem.

    ``obs`` receives one ``milp.solve`` span/event per
    :meth:`enumerate_candidates` call (solver status, B&B nodes, LP
    pivots, incumbent updates) plus aggregate ``milp.*`` counters; it
    defaults to the ambient instrumentation at call time.
    """

    def __init__(
        self, problem: DesignProblem, obs: Optional[Instrumentation] = None
    ) -> None:
        self.problem = problem
        self.space = problem.space
        self.scenario = problem.scenario
        self.obs = obs
        self._cost_table = self._build_cost_table()
        self._cut_epsilon_mw = self._derive_cut_epsilon()
        # Persistent B&B solver: Algorithm 1 re-solves the same model with
        # only the cut rhs tightened, so the previous root basis warm
        # starts the next root relaxation (iteration 0 has no cut row and
        # its basis is shape-incompatible with iteration 1 — the simplex
        # signature check falls back cold automatically).
        self._solver = BranchAndBoundSolver()
        self._root_basis = None

    # -- cost table ---------------------------------------------------------------

    def _build_cost_table(self) -> Dict[Tuple[str, int, int], float]:
        """Radio power (mW) per (routing, tx level index, node count)."""
        model = self.scenario.power_model()
        table: Dict[Tuple[str, int, int], float] = {}
        cons = self.space.constraints
        n_lo = cons.effective_min_nodes
        for routing in self.space.routing_kinds:
            opts = self.scenario.routing_options(routing)
            for k, tx_dbm in enumerate(self.space.tx_levels_dbm):
                mode = self.scenario.tx_mode(tx_dbm)
                for n in range(n_lo, cons.max_nodes + 1):
                    table[(routing.value, k, n)] = model.radio_power_mw(
                        opts, n, mode
                    )
        return table

    def distinct_power_levels_mw(self) -> List[float]:
        """Sorted distinct P̄ values over the whole space (diagnostics and
        cut-epsilon validation)."""
        baseline = self.scenario.app.baseline_mw
        return sorted({baseline + c for c in self._cost_table.values()})

    def _derive_cut_epsilon(self) -> float:
        """Strictness margin for the P̄ > P̄* cuts: a quarter of the
        smallest gap between distinct analytical power levels, so a cut can
        never accidentally exclude the next level nor be swallowed by
        solver tolerances."""
        levels = self.distinct_power_levels_mw()
        gaps = [b - a for a, b in zip(levels, levels[1:]) if b - a > 1e-12]
        if not gaps:
            return FALLBACK_CUT_EPSILON_MW
        return max(FALLBACK_CUT_EPSILON_MW, 0.25 * min(gaps))

    @property
    def cut_epsilon_mw(self) -> float:
        return self._cut_epsilon_mw

    # -- model construction ----------------------------------------------------------

    def build(self, power_cuts_mw: Sequence[float] = ()) -> Tuple[Model, _Vars]:
        """Construct P̃ with the accumulated power cuts applied."""
        cons = self.space.constraints
        m = Model("human_intranet_relaxed", sense="min")

        placement = [m.add_binary(f"n{i}") for i in range(cons.num_locations)]
        tx_levels = [
            m.add_binary(f"p{k + 1}") for k in range(len(self.space.tx_levels_dbm))
        ]
        mac_tdma = m.add_binary("mac_tdma")
        # One selector per routing scheme in the space (the paper's binary
        # P_rt generalizes to a one-hot choice once the library offers more
        # than two schemes, e.g. the point-to-point forwarding extension).
        routing_vars = {
            kind.value: m.add_binary(f"routing_{kind.value}")
            for kind in self.space.routing_kinds
        }
        m.add_constraint(
            LinExpr.sum_of(routing_vars.values()) == 1, name="one_routing"
        )
        n_lo = cons.effective_min_nodes
        node_counts = {
            n: m.add_binary(f"N_is_{n}")
            for n in range(n_lo, cons.max_nodes + 1)
        }

        # Topological constraints (Sec. 4.1).
        for loc in cons.required:
            m.add_constraint(placement[loc] == 1, name=f"required_{loc}")
        for g_index, group in enumerate(cons.at_least_one_of):
            m.add_constraint(
                LinExpr.sum_of(placement[loc] for loc in group) >= 1,
                name=f"group_{g_index}",
            )
        total_nodes = LinExpr.sum_of(placement)
        m.add_constraint(total_nodes <= cons.max_nodes, name="max_nodes")
        m.add_constraint(total_nodes >= n_lo, name="min_nodes")

        # Node-count indicators: exactly one, consistent with the placement.
        m.add_constraint(
            LinExpr.sum_of(node_counts.values()) == 1, name="one_node_count"
        )
        m.add_constraint(
            total_nodes
            == LinExpr.sum_of(n * var for n, var in node_counts.items()),
            name="node_count_link",
        )

        # Exactly one TX power level (the paper's p1 + p2 + p3 = 1).
        m.add_constraint(LinExpr.sum_of(tx_levels) == 1, name="one_tx_level")

        # Combination indicators and their linking constraints.
        combos: Dict[Tuple[str, int, int], Var] = {}
        for (routing_value, k, n), _cost in self._cost_table.items():
            z = m.add_binary(f"z_{routing_value}_{k}_{n}")
            combos[(routing_value, k, n)] = z
            m.add_constraint(z <= tx_levels[k], name=f"z_le_p_{routing_value}_{k}_{n}")
            m.add_constraint(
                z <= node_counts[n], name=f"z_le_y_{routing_value}_{k}_{n}"
            )
            routing_term = routing_vars[routing_value].to_expr()
            m.add_constraint(z <= routing_term, name=f"z_le_r_{routing_value}_{k}_{n}")
            m.add_constraint(
                z >= tx_levels[k] + node_counts[n] + routing_term - 2,
                name=f"z_ge_{routing_value}_{k}_{n}",
            )
        m.add_constraint(LinExpr.sum_of(combos.values()) == 1, name="one_combo")

        # Objective: Eq. 9.
        radio_power = LinExpr.sum_of(
            self._cost_table[key] * var for key, var in combos.items()
        )
        p_bar = radio_power + self.scenario.app.baseline_mw
        m.set_objective(p_bar)

        # Algorithm 1 cuts: P̄ > cut, realized as P̄ ≥ cut + ε.
        for c_index, cut in enumerate(power_cuts_mw):
            m.add_constraint(
                p_bar >= cut + self._cut_epsilon_mw, name=f"power_cut_{c_index}"
            )

        return m, _Vars(placement, tx_levels, mac_tdma, routing_vars, node_counts, combos)

    # -- RunMILP (line 3 of Algorithm 1) ------------------------------------------------

    def enumerate_candidates(
        self,
        power_cuts_mw: Sequence[float] = (),
        max_solutions: int = 256,
        method: str = "combo",
    ) -> Tuple[SolveStatus, List[Configuration], Optional[float]]:
        """Solve P̃ and enumerate the configurations attaining its optimum.

        Returns ``(status, candidates, P̄*)``; on infeasibility the
        candidate list is empty and P̄* is None.

        Two enumeration methods are provided:

        * ``"combo"`` (default): one MILP solve establishes the optimal
          power level P̄*; the tied solution set is then expanded exactly
          from the (routing, TX level, N) cost table and the placement
          generator.  This exploits the structure of Eq. 9 — the objective
          depends on the placement only through N — and plays the role of
          CPLEX's solution pool in the paper's setup at a fraction of the
          cost.
        * ``"nogood"``: fully generic optimum enumeration with no-good
          cuts inside the MILP solver
          (:func:`repro.milp.enumerate_optimal_solutions`).  Exact for
          arbitrary user extensions of the model, but far slower; used by
          the test suite to validate the combo path.

        Accumulated power cuts are monotone, so only the largest is
        binding; the model is built with just that one.
        """
        cuts = [max(power_cuts_mw)] if power_cuts_mw else []
        model, handles = self.build(cuts)
        obs = self.obs if self.obs is not None else get_active()

        if method == "nogood":
            distinguish = (
                handles.placement
                + handles.tx_levels
                + [handles.mac_tdma]
                + list(handles.routing.values())
            )
            with obs.span("milp.solve", method="nogood"):
                status, solutions, optimum = enumerate_optimal_solutions(
                    model, distinguish_vars=distinguish,
                    max_solutions=max_solutions,
                )
            obs.counter("milp.solves").inc()
            obs.event(
                "milp.solve",
                method="nogood",
                status=status.value,
                p_star_mw=optimum,
                solutions=len(solutions),
            )
            if status is not SolveStatus.OPTIMAL:
                return status, [], None
            configs = [self._to_configuration(model, sol) for sol in solutions]
            configs.sort(key=lambda c: c.key())
            return status, configs, optimum
        if method != "combo":
            raise ValueError(f"unknown enumeration method {method!r}")

        with obs.span("milp.solve", method="combo"):
            result = self._solver.solve(model, root_warm_start=self._root_basis)
        self._root_basis = result.root_basis
        obs.counter("milp.solves").inc()
        obs.counter("milp.nodes").inc(result.nodes_explored)
        obs.counter("milp.lp_iterations").inc(result.lp_iterations)
        obs.counter("milp.warm_lp_solves").inc(result.warm_lp_solves)
        obs.event(
            "milp.solve",
            method="combo",
            status=result.status.value,
            p_star_mw=result.objective,
            nodes=result.nodes_explored,
            lp_iterations=result.lp_iterations,
            incumbent_updates=result.incumbent_updates,
            warm_lp_solves=result.warm_lp_solves,
        )
        if not result.is_optimal:
            return result.status, [], None
        assert result.objective is not None
        p_star = result.objective
        configs = self._expand_tied_combos(p_star)
        if not configs:
            raise RuntimeError(
                "MILP optimum has no matching grid configuration — the "
                "model and the design space disagree"
            )
        return SolveStatus.OPTIMAL, configs[:max_solutions], p_star

    def _expand_tied_combos(self, p_star_mw: float) -> List[Configuration]:
        """All grid configurations whose Eq. 9 power equals P̄*."""
        baseline = self.scenario.app.baseline_mw
        radio_target = p_star_mw - baseline
        tied = [
            key
            for key, cost in self._cost_table.items()
            if abs(cost - radio_target) <= 1e-9
        ]
        placements_by_size: Dict[int, List[Tuple[int, ...]]] = {}
        for placement in self.space.placements():
            placements_by_size.setdefault(len(placement), []).append(placement)
        configs: List[Configuration] = []
        for routing_value, k, n in tied:
            routing = RoutingKind(routing_value)
            tx_dbm = self.space.tx_levels_dbm[k]
            for placement in placements_by_size.get(n, []):
                for mac in self.space.mac_kinds:
                    configs.append(Configuration(placement, tx_dbm, mac, routing))
        configs.sort(key=lambda c: c.key())
        return configs

    def _to_configuration(self, model: Model, solution) -> Configuration:
        cons = self.space.constraints
        placement = tuple(
            i
            for i in range(cons.num_locations)
            if round(solution.values[model.var_by_name(f"n{i}").index]) == 1
        )
        tx_dbm = None
        for k, level in enumerate(self.space.tx_levels_dbm):
            if round(solution.values[model.var_by_name(f"p{k + 1}").index]) == 1:
                tx_dbm = level
                break
        if tx_dbm is None:
            raise RuntimeError("MILP solution selected no TX level")
        mac = (
            MacKind.TDMA
            if round(solution.values[model.var_by_name("mac_tdma").index]) == 1
            else MacKind.CSMA
        )
        routing = None
        for kind in self.space.routing_kinds:
            var = model.var_by_name(f"routing_{kind.value}")
            if round(solution.values[var.index]) == 1:
                routing = kind
                break
        if routing is None:
            raise RuntimeError("MILP solution selected no routing scheme")
        return Configuration(placement, tx_dbm, mac, routing)
