"""Worker-pool execution layer for the simulation oracle.

The oracle fans out at two grain levels:

* **whole configurations** — ``SimulationOracle.evaluate_many`` ships one
  :func:`evaluate_configuration_task` per uncached candidate to the pool
  (Algorithm 1 evaluates candidate *sets* per iteration, and the
  exhaustive/random baselines batch naturally);
* **replicates within one configuration** — both the fixed-count protocol
  (:func:`run_fixed_replicates`) and the adaptive ε-bounded protocol
  (:func:`run_adaptive_replicates`) dispatch
  :class:`repro.net.network.ReplicateJob` units and aggregate in
  replicate-index order.

Determinism argument (see DESIGN.md §5): every replicate draws from
RNG streams keyed by ``(seed, replicate, stream-name)`` — disjoint by
construction — so a replicate's outcome is a pure function of its job
description, independent of which process runs it or when.  Aggregation
always happens in replicate-index order over an index prefix, therefore
any fan-out schedule produces results bit-for-bit identical to the serial
path.  For the adaptive protocol the serial stopping rule ("stop at the
first n ≥ min_replicates whose CI half-width ≤ ε") is re-evaluated on
sample *prefixes*, so wave dispatch may run a few speculative replicates
beyond the stopping index but averages exactly the same prefix the serial
loop would.

``n_jobs=1`` never creates a pool: every code path below degrades to the
plain in-process loop with zero behavioural change.

Fault tolerance (DESIGN.md §9): the parallel path survives crashed
workers (``BrokenProcessPool``), hung workers (per-task deadline), and
poison tasks.  Failed tasks are retried with exponential backoff + jitter
drawn from a *dedicated* ``random.Random`` instance — never from the
simulation RNG streams, which are keyed purely by ``(seed, replicate,
stream-name)``, so recovery cannot perturb simulated results.  A task
that keeps failing is quarantined to in-process execution; a pool that
keeps breaking degrades (stickily, loudly) to serial.  Because every
task is a pure function of its description, a retried/quarantined/serial
execution returns bit-identical results — resilience is invisible in the
output and visible only in the ``pool.*`` metrics and trace events.
"""

from __future__ import annotations

import os
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.design_space import Configuration
from repro.core.problem import ScenarioParameters
from repro.net.network import (
    ReplicateJob,
    SimulationOutcome,
    average_outcomes,
    run_replicate_job,
)

#: Confidence level of the adaptive protocol's stopping interval; matches
#: the default of ``estimate_pdr_with_tolerance``.
ADAPTIVE_CONFIDENCE = 0.95


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``1`` → serial; ``0`` → all cores; negative values follow
    the joblib convention (``-1`` = all cores, ``-2`` = all but one, …).
    """
    cores = os.cpu_count() or 1
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        return max(1, cores)
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def auto_jobs(limit: Optional[int] = None) -> int:
    """Worker count when the caller expressed no preference: every core,
    clamped to ``limit`` (typically the number of configurations to
    evaluate — more workers than work items would only pay fork cost).
    """
    cores = os.cpu_count() or 1
    if limit is not None:
        cores = min(cores, max(1, int(limit)))
    return max(1, cores)


#: Environment variable enabling the chaos hook inside pool workers, in
#: the form ``<flag_file_path>:<nth>``: the first worker whose per-process
#: task counter reaches ``nth`` while the flag file still exists consumes
#: the file (atomic ``unlink`` — exactly one worker wins) and dies with
#: ``os._exit``, i.e. a real, unannounced worker crash.  Used by the test
#: suite and the chaos-smoke CI job to exercise the recovery path; inert
#: unless the variable is set AND the flag file exists.
CHAOS_CRASH_ENV = "REPRO_POOL_CHAOS_CRASH"

#: Exit status of a chaos-crashed worker (distinctive in core dumps/CI logs).
CHAOS_EXIT_STATUS = 17

_chaos_tasks_seen = 0


def _maybe_chaos_crash() -> None:
    """Kill this worker process if the chaos hook says it is our turn."""
    global _chaos_tasks_seen
    spec = os.environ.get(CHAOS_CRASH_ENV)
    if not spec:
        return
    _chaos_tasks_seen += 1
    flag, _, nth_text = spec.rpartition(":")
    try:
        nth = int(nth_text)
    except ValueError:
        flag, nth = spec, 1
    if not flag or _chaos_tasks_seen < nth:
        return
    try:
        os.unlink(flag)  # claim the crash token; losers keep working
    except OSError:
        return
    os._exit(CHAOS_EXIT_STATUS)


def pool_task(fn: Callable, task):
    """The wrapper actually submitted to worker processes.

    Exists so the chaos-crash hook runs *only* inside pool workers —
    serial, quarantine, and degraded paths call ``fn`` directly in the
    parent and are never chaos targets.
    """
    _maybe_chaos_crash()
    return fn(task)


def _observe(kind: str, counter: Optional[str] = None, **fields) -> None:
    """Emit a pool resilience event + counter on the ambient obs."""
    from repro.obs import runtime

    obs = runtime.get_active()
    if counter:
        obs.counter(counter).inc()
    obs.event(kind, **fields)


class WorkerPool:
    """A lazily created, reusable, fault-tolerant process-pool wrapper.

    With ``n_jobs=1`` (the default everywhere) no processes are ever
    forked and :meth:`map_ordered` is a plain list comprehension.  The
    executor is created on first parallel use and reused across calls so
    repeated ``evaluate_many`` batches amortize worker startup.

    The parallel path tolerates worker faults (see the module docstring):

    * a crashed worker (``BrokenProcessPool``) or hung worker (no result
      within ``task_timeout_s``) triggers a pool respawn and a retry of
      the unfinished tasks, after an exponential-backoff sleep whose
      jitter comes from a dedicated RNG (``_backoff_rng``) that shares no
      state with simulation streams;
    * a task blamed for ``quarantine_after`` failures is quarantined:
      executed in-process in the parent, where a pure function returns
      the identical result without risking the pool again.  (Blame is
      necessarily approximate — a broken pool cannot say which task
      killed it — so every task unfinished at the break is charged one
      strike; innocents get re-charged only if the pool keeps dying.)
    * more than ``max_respawns`` respawns within one :meth:`map_ordered`
      call flips the pool into sticky serial degradation with a loud
      stderr diagnostic — forward progress beats parallelism.

    Counters ``pool.retries`` / ``pool.respawns`` / ``pool.quarantined``
    and events ``pool.retry`` / ``pool.respawn`` / ``pool.quarantine`` /
    ``pool.degraded`` are emitted on the ambient instrumentation.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        task_timeout_s: Optional[float] = None,
        quarantine_after: int = 3,
        max_respawns: int = 3,
        backoff_base_s: float = 0.05,
    ) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self.task_timeout_s = task_timeout_s
        self.quarantine_after = max(1, int(quarantine_after))
        self.max_respawns = max(0, int(max_respawns))
        self.backoff_base_s = max(0.0, float(backoff_base_s))
        self._executor: Optional[ProcessPoolExecutor] = None
        self._degraded = False
        # Dedicated jitter source: fixed seed, one stream per pool, no
        # relation to the simulation RNG keying (seed, replicate, name).
        self._backoff_rng = random.Random(0x5EEDBAC0)
        #: Lifetime resilience tallies (mirrored into ambient metrics).
        self.retries = 0
        self.respawns = 0
        self.quarantined = 0

    @property
    def parallel(self) -> bool:
        return self.n_jobs > 1 and not self._degraded

    @property
    def degraded(self) -> bool:
        return self._degraded

    def map_ordered(
        self,
        fn: Callable,
        tasks: Sequence,
        on_result: Optional[Callable] = None,
    ) -> List:
        """Apply ``fn`` to each task, returning results in task order.

        Results are bit-identical to ``[fn(t) for t in tasks]`` no matter
        how many workers crash, hang, or get quarantined along the way.

        ``on_result(index, result)``, when given, is invoked in the
        *parent* as each task completes (completion order, not task
        order) — a progress hook for long campaigns.  It only observes:
        results are collected and returned identically with or without
        it, and a callback that raises propagates rather than being
        swallowed (a broken progress consumer should be loud).
        """
        tasks = list(tasks)
        if not self.parallel or len(tasks) <= 1:
            results = []
            for index, task in enumerate(tasks):
                result = fn(task)
                results.append(result)
                if on_result is not None:
                    on_result(index, result)
            return results
        return self._map_resilient(fn, tasks, on_result)

    # -- resilient parallel execution --------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_jobs)
        return self._executor

    def _kill_executor(self) -> None:
        """Tear the executor down even if its workers are unresponsive."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _backoff(self, round_index: int) -> None:
        if self.backoff_base_s <= 0:
            return
        delay = self.backoff_base_s * (2**round_index)
        delay *= 0.5 + self._backoff_rng.random()  # jitter in [0.5, 1.5)
        time.sleep(min(delay, 5.0))

    def _degrade(self, reason: str) -> None:
        self._degraded = True
        print(
            f"repro.core.parallel: WORKER POOL DEGRADED TO SERIAL — "
            f"{reason}; continuing in-process (correctness unaffected, "
            f"parallel speedup lost)",
            file=sys.stderr,
            flush=True,
        )
        _observe("pool.degraded", reason=reason, n_jobs=self.n_jobs)

    def _map_resilient(
        self,
        fn: Callable,
        tasks: List,
        on_result: Optional[Callable] = None,
    ) -> List:
        results: List = [None] * len(tasks)
        pending = set(range(len(tasks)))
        strikes = [0] * len(tasks)
        respawns_this_call = 0
        round_index = 0

        def _done(i: int) -> None:
            pending.discard(i)
            if on_result is not None:
                on_result(i, results[i])

        while pending:
            # Quarantine poison suspects: run them here in the parent,
            # where they cannot take the pool down (pure function ⇒ same
            # result as a healthy worker would have produced).
            for i in sorted(pending):
                if strikes[i] >= self.quarantine_after:
                    self.quarantined += 1
                    _observe(
                        "pool.quarantine",
                        counter="pool.quarantined",
                        task_index=i,
                        strikes=strikes[i],
                    )
                    results[i] = fn(tasks[i])
                    _done(i)
            if not pending:
                break
            if self._degraded:
                for i in sorted(pending):
                    results[i] = fn(tasks[i])
                    _done(i)
                return results

            executor = self._ensure_executor()
            order = sorted(pending)
            try:
                futures = {
                    i: executor.submit(pool_task, fn, tasks[i])
                    for i in order
                }
            except BrokenProcessPool:
                futures = {}
            failed: List[int] = []
            hung: Optional[int] = None
            if not futures:
                failed = list(order)
            for i in order:
                if i not in futures or hung is not None:
                    continue
                try:
                    results[i] = futures[i].result(
                        timeout=self.task_timeout_s
                    )
                    _done(i)
                except FutureTimeout:
                    hung = i
                    failed.append(i)
                except BrokenProcessPool:
                    failed.append(i)
            if hung is not None:
                # A deadline expired: the worker is presumed wedged, and
                # the futures behind it are useless once we kill the pool.
                # Harvest whatever already finished, blame only the hung
                # task, and requeue the rest without a strike.
                for j in order:
                    if j in pending and j != hung and j in futures:
                        fut = futures[j]
                        if fut.done():
                            try:
                                results[j] = fut.result(timeout=0)
                                _done(j)
                            except Exception:
                                failed.append(j)

            if not failed and pending:
                # Shouldn't happen (every pending index either succeeded
                # or failed above), but never spin silently.
                failed = sorted(pending)
            if not pending:
                break

            # Recovery: count strikes, respawn the pool, back off, retry.
            for i in failed:
                if i in pending:
                    strikes[i] += 1
            retrying = [i for i in failed if i in pending]
            self.retries += len(retrying)
            _observe(
                "pool.retry",
                tasks=len(retrying),
                hung_task=hung,
                round=round_index,
            )
            from repro.obs import runtime

            runtime.get_active().counter("pool.retries").inc(len(retrying))

            self._kill_executor()
            respawns_this_call += 1
            self.respawns += 1
            _observe(
                "pool.respawn",
                counter="pool.respawns",
                round=round_index,
                reason="hung worker" if hung is not None else "broken pool",
            )
            if respawns_this_call > self.max_respawns:
                self._degrade(
                    f"{respawns_this_call} pool respawns in one batch "
                    f"(limit {self.max_respawns})"
                )
                continue
            self._backoff(round_index)
            round_index += 1

        return results

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def replicate_job(
    scenario: ScenarioParameters, config: Configuration, index: int
) -> ReplicateJob:
    """Translate (scenario, configuration, replicate index) into the
    picklable work unit the pool executes."""
    return ReplicateJob(
        placement=config.placement,
        radio_spec=scenario.radio,
        tx_mode=scenario.tx_mode(config.tx_dbm),
        mac_options=scenario.mac_options(config.mac),
        routing_options=scenario.routing_options(config.routing),
        app_params=scenario.app,
        tsim_s=scenario.tsim_s,
        replicate=index,
        seed=scenario.seed,
        battery=scenario.battery,
        body=scenario.body,
        pathloss_params=scenario.pathloss,
        fading_params=scenario.fading,
        fault_scenario=scenario.fault_scenario,
    )


def _serial_map(fn: Callable, tasks: Sequence) -> List:
    return [fn(task) for task in tasks]


def adaptive_stop_count(
    pdrs: Sequence[float],
    epsilon: float,
    min_replicates: int,
    confidence: float = ADAPTIVE_CONFIDENCE,
) -> Optional[int]:
    """The replicate count the *serial* sequential procedure would stop at.

    Returns the smallest prefix length ``n`` in
    ``[min_replicates, len(pdrs)]`` whose confidence-interval half-width is
    within ``epsilon``, or ``None`` if no prefix converges yet.  Evaluating
    the rule on prefixes (rather than on whatever set of samples happens to
    be available) is what keeps parallel wave dispatch bit-identical to
    serial replication.
    """
    # Imported lazily: repro.analysis.__init__ pulls in modules that
    # depend on repro.core.evaluator, which imports this module.
    from repro.analysis.convergence import interval_half_width

    samples = [float(p) for p in pdrs]
    for n in range(min_replicates, len(samples) + 1):
        if interval_half_width(samples[:n], confidence) <= epsilon:
            return n
    return None


def run_fixed_replicates(
    scenario: ScenarioParameters,
    config: Configuration,
    map_fn: Optional[Callable] = None,
) -> SimulationOutcome:
    """The paper's fixed-count protocol (Tsim × ``scenario.replicates``),
    with the replicate loop expressed as an order-preserving map."""
    if scenario.replicates < 1:
        raise ValueError("need at least one replicate")
    map_fn = map_fn or _serial_map
    jobs = [
        replicate_job(scenario, config, index)
        for index in range(scenario.replicates)
    ]
    outcomes = map_fn(run_replicate_job, jobs)
    return average_outcomes(outcomes, scenario.battery)


def run_adaptive_replicates(
    scenario: ScenarioParameters,
    config: Configuration,
    map_fn: Optional[Callable] = None,
    wave: int = 1,
) -> SimulationOutcome:
    """The ε-bounded protocol (Sec. 2.2) with wave dispatch.

    Replicates are dispatched in waves of ``wave`` (1 reproduces the
    serial one-at-a-time schedule exactly), collected in replicate-index
    order, and the serial stopping rule is applied to sample prefixes via
    :func:`adaptive_stop_count`.  The averaged outcome is always the
    prefix ``outcomes[:n]`` for the serial stopping count ``n`` — never
    "whatever finished" — so the result is independent of the fan-out
    schedule.  Outcomes are returned explicitly by each job (no shared
    mutable state), which also fixes the call-order dependence the old
    closure-based accumulator had.
    """
    map_fn = map_fn or _serial_map
    min_replicates = max(2, scenario.replicates)
    max_replicates = max(scenario.max_replicates, scenario.replicates)
    wave = max(1, wave)

    outcomes: List[SimulationOutcome] = []
    next_index = 0
    while next_index < max_replicates:
        # The first wave always reaches min_replicates (the rule cannot
        # stop earlier); afterwards dispatch `wave` replicates at a time.
        end = min(max_replicates, max(min_replicates, next_index + wave))
        jobs = [
            replicate_job(scenario, config, index)
            for index in range(next_index, end)
        ]
        outcomes.extend(map_fn(run_replicate_job, jobs))
        next_index = end
        stop = adaptive_stop_count(
            [o.pdr for o in outcomes], scenario.pdr_epsilon, min_replicates
        )
        if stop is not None:
            return average_outcomes(outcomes[:stop], scenario.battery)
    return average_outcomes(outcomes, scenario.battery)


def run_configuration_outcome(
    scenario: ScenarioParameters,
    config: Configuration,
    map_fn: Optional[Callable] = None,
    wave: int = 1,
) -> SimulationOutcome:
    """Complete one-configuration evaluation under the scenario protocol
    (fixed or adaptive), optionally replicate-parallel via ``map_fn``."""
    if scenario.adaptive_replicates:
        return run_adaptive_replicates(scenario, config, map_fn, wave)
    return run_fixed_replicates(scenario, config, map_fn)


def evaluate_configuration_task(
    task: Tuple[ScenarioParameters, Configuration],
) -> Tuple[SimulationOutcome, float]:
    """Configuration-grain pool task: run the full replicate protocol for
    one configuration serially *inside* the worker and report the outcome
    plus the worker-side wall time."""
    scenario, config = task
    start = time.perf_counter()
    outcome = run_configuration_outcome(scenario, config)
    return outcome, time.perf_counter() - start
