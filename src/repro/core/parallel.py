"""Worker-pool execution layer for the simulation oracle.

The oracle fans out at two grain levels:

* **whole configurations** — ``SimulationOracle.evaluate_many`` ships one
  :func:`evaluate_configuration_task` per uncached candidate to the pool
  (Algorithm 1 evaluates candidate *sets* per iteration, and the
  exhaustive/random baselines batch naturally);
* **replicates within one configuration** — both the fixed-count protocol
  (:func:`run_fixed_replicates`) and the adaptive ε-bounded protocol
  (:func:`run_adaptive_replicates`) dispatch
  :class:`repro.net.network.ReplicateJob` units and aggregate in
  replicate-index order.

Determinism argument (see DESIGN.md §5): every replicate draws from
RNG streams keyed by ``(seed, replicate, stream-name)`` — disjoint by
construction — so a replicate's outcome is a pure function of its job
description, independent of which process runs it or when.  Aggregation
always happens in replicate-index order over an index prefix, therefore
any fan-out schedule produces results bit-for-bit identical to the serial
path.  For the adaptive protocol the serial stopping rule ("stop at the
first n ≥ min_replicates whose CI half-width ≤ ε") is re-evaluated on
sample *prefixes*, so wave dispatch may run a few speculative replicates
beyond the stopping index but averages exactly the same prefix the serial
loop would.

``n_jobs=1`` never creates a pool: every code path below degrades to the
plain in-process loop with zero behavioural change.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.design_space import Configuration
from repro.core.problem import ScenarioParameters
from repro.net.network import (
    ReplicateJob,
    SimulationOutcome,
    average_outcomes,
    run_replicate_job,
)

#: Confidence level of the adaptive protocol's stopping interval; matches
#: the default of ``estimate_pdr_with_tolerance``.
ADAPTIVE_CONFIDENCE = 0.95


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` or ``1`` → serial; ``0`` → all cores; negative values follow
    the joblib convention (``-1`` = all cores, ``-2`` = all but one, …).
    """
    cores = os.cpu_count() or 1
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        return max(1, cores)
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def auto_jobs(limit: Optional[int] = None) -> int:
    """Worker count when the caller expressed no preference: every core,
    clamped to ``limit`` (typically the number of configurations to
    evaluate — more workers than work items would only pay fork cost).
    """
    cores = os.cpu_count() or 1
    if limit is not None:
        cores = min(cores, max(1, int(limit)))
    return max(1, cores)


class WorkerPool:
    """A lazily created, reusable ``ProcessPoolExecutor`` wrapper.

    With ``n_jobs=1`` (the default everywhere) no processes are ever
    forked and :meth:`map_ordered` is a plain list comprehension.  The
    executor is created on first parallel use and reused across calls so
    repeated ``evaluate_many`` batches amortize worker startup.
    """

    def __init__(self, n_jobs: int = 1) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def parallel(self) -> bool:
        return self.n_jobs > 1

    def map_ordered(self, fn: Callable, tasks: Sequence) -> List:
        """Apply ``fn`` to each task, returning results in task order."""
        tasks = list(tasks)
        if not self.parallel or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_jobs)
        return list(self._executor.map(fn, tasks))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def replicate_job(
    scenario: ScenarioParameters, config: Configuration, index: int
) -> ReplicateJob:
    """Translate (scenario, configuration, replicate index) into the
    picklable work unit the pool executes."""
    return ReplicateJob(
        placement=config.placement,
        radio_spec=scenario.radio,
        tx_mode=scenario.tx_mode(config.tx_dbm),
        mac_options=scenario.mac_options(config.mac),
        routing_options=scenario.routing_options(config.routing),
        app_params=scenario.app,
        tsim_s=scenario.tsim_s,
        replicate=index,
        seed=scenario.seed,
        battery=scenario.battery,
        body=scenario.body,
        pathloss_params=scenario.pathloss,
        fading_params=scenario.fading,
        fault_scenario=scenario.fault_scenario,
    )


def _serial_map(fn: Callable, tasks: Sequence) -> List:
    return [fn(task) for task in tasks]


def adaptive_stop_count(
    pdrs: Sequence[float],
    epsilon: float,
    min_replicates: int,
    confidence: float = ADAPTIVE_CONFIDENCE,
) -> Optional[int]:
    """The replicate count the *serial* sequential procedure would stop at.

    Returns the smallest prefix length ``n`` in
    ``[min_replicates, len(pdrs)]`` whose confidence-interval half-width is
    within ``epsilon``, or ``None`` if no prefix converges yet.  Evaluating
    the rule on prefixes (rather than on whatever set of samples happens to
    be available) is what keeps parallel wave dispatch bit-identical to
    serial replication.
    """
    # Imported lazily: repro.analysis.__init__ pulls in modules that
    # depend on repro.core.evaluator, which imports this module.
    from repro.analysis.convergence import interval_half_width

    samples = [float(p) for p in pdrs]
    for n in range(min_replicates, len(samples) + 1):
        if interval_half_width(samples[:n], confidence) <= epsilon:
            return n
    return None


def run_fixed_replicates(
    scenario: ScenarioParameters,
    config: Configuration,
    map_fn: Optional[Callable] = None,
) -> SimulationOutcome:
    """The paper's fixed-count protocol (Tsim × ``scenario.replicates``),
    with the replicate loop expressed as an order-preserving map."""
    if scenario.replicates < 1:
        raise ValueError("need at least one replicate")
    map_fn = map_fn or _serial_map
    jobs = [
        replicate_job(scenario, config, index)
        for index in range(scenario.replicates)
    ]
    outcomes = map_fn(run_replicate_job, jobs)
    return average_outcomes(outcomes, scenario.battery)


def run_adaptive_replicates(
    scenario: ScenarioParameters,
    config: Configuration,
    map_fn: Optional[Callable] = None,
    wave: int = 1,
) -> SimulationOutcome:
    """The ε-bounded protocol (Sec. 2.2) with wave dispatch.

    Replicates are dispatched in waves of ``wave`` (1 reproduces the
    serial one-at-a-time schedule exactly), collected in replicate-index
    order, and the serial stopping rule is applied to sample prefixes via
    :func:`adaptive_stop_count`.  The averaged outcome is always the
    prefix ``outcomes[:n]`` for the serial stopping count ``n`` — never
    "whatever finished" — so the result is independent of the fan-out
    schedule.  Outcomes are returned explicitly by each job (no shared
    mutable state), which also fixes the call-order dependence the old
    closure-based accumulator had.
    """
    map_fn = map_fn or _serial_map
    min_replicates = max(2, scenario.replicates)
    max_replicates = max(scenario.max_replicates, scenario.replicates)
    wave = max(1, wave)

    outcomes: List[SimulationOutcome] = []
    next_index = 0
    while next_index < max_replicates:
        # The first wave always reaches min_replicates (the rule cannot
        # stop earlier); afterwards dispatch `wave` replicates at a time.
        end = min(max_replicates, max(min_replicates, next_index + wave))
        jobs = [
            replicate_job(scenario, config, index)
            for index in range(next_index, end)
        ]
        outcomes.extend(map_fn(run_replicate_job, jobs))
        next_index = end
        stop = adaptive_stop_count(
            [o.pdr for o in outcomes], scenario.pdr_epsilon, min_replicates
        )
        if stop is not None:
            return average_outcomes(outcomes[:stop], scenario.battery)
    return average_outcomes(outcomes, scenario.battery)


def run_configuration_outcome(
    scenario: ScenarioParameters,
    config: Configuration,
    map_fn: Optional[Callable] = None,
    wave: int = 1,
) -> SimulationOutcome:
    """Complete one-configuration evaluation under the scenario protocol
    (fixed or adaptive), optionally replicate-parallel via ``map_fn``."""
    if scenario.adaptive_replicates:
        return run_adaptive_replicates(scenario, config, map_fn, wave)
    return run_fixed_replicates(scenario, config, map_fn)


def evaluate_configuration_task(
    task: Tuple[ScenarioParameters, Configuration],
) -> Tuple[SimulationOutcome, float]:
    """Configuration-grain pool task: run the full replicate protocol for
    one configuration serially *inside* the worker and report the outcome
    plus the worker-side wall time."""
    scenario, config = task
    start = time.perf_counter()
    outcome = run_configuration_outcome(scenario, config)
    return outcome, time.perf_counter() - start
