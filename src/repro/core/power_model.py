"""The coarse analytical power and lifetime model (Eqs. 3, 4, 5, 9).

This is the model the MILP optimizes.  It assumes every transmission
succeeds and every node hears every packet — optimistic on reliability,
which is exactly why Algorithm 1 cross-checks candidates in the simulator
and why the α factor is needed for a sound termination criterion.

Key expressions (Sec. 2.1.2 and 2.3):

* Tpkt = 8·L/BR — packet airtime;
* Eq. 5 — radio power of a non-coordinator node:
  star:  P_rd = φ·Tpkt·(Tx_mW + 2(N−1)·Rx_mW)
  mesh:  P_rd = φ·Tpkt·N_reTx·(Tx_mW + (N−1)·Rx_mW)
* Eq. 9 — P̄ = P_bl + P_rd, the MILP's objective;
* Eq. 4 — NLT = E_bat / P̄ for the worst battery-limited node;
* α — the ratio P̄ / P̄_lb where P̄_lb is the least power consistent with
  the PDR bound: a node that delivers only a PDR fraction of traffic spends
  proportionally less on the radio, so
  P̄_lb = P_bl + PDR_min · (P̄ − P_bl).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.batteries import BatterySpec
from repro.library.mac_options import RoutingKind, RoutingOptions
from repro.library.radios import RadioSpec, TxMode
from repro.net.app import AppParameters


@dataclass(frozen=True)
class CoarsePowerModel:
    """Analytical per-node power model for one scenario.

    Parameters are the scenario-wide constants; configuration-dependent
    quantities (routing, node count, TX mode) are method arguments so one
    model instance serves the whole design space.
    """

    radio: RadioSpec
    app: AppParameters
    battery: BatterySpec

    @property
    def packet_airtime_s(self) -> float:
        """Tpkt = 8L/BR."""
        return self.radio.packet_airtime_s(self.app.packet_bytes)

    def radio_power_mw(
        self, routing: RoutingOptions, num_nodes: int, tx_mode: TxMode
    ) -> float:
        """Eq. 5: average radio power of a non-coordinator node."""
        if num_nodes < 2:
            raise ValueError("the model needs at least two nodes")
        phi = self.app.throughput_pps
        tpkt = self.packet_airtime_s
        rx = self.radio.rx_power_mw
        if routing.kind is RoutingKind.STAR:
            return phi * tpkt * (tx_mode.power_mw + 2 * (num_nodes - 1) * rx)
        nretx = routing.retx_count(num_nodes)
        return phi * tpkt * nretx * (tx_mode.power_mw + (num_nodes - 1) * rx)

    def node_power_mw(
        self, routing: RoutingOptions, num_nodes: int, tx_mode: TxMode
    ) -> float:
        """Eq. 9: P̄ = P_bl + P_rd."""
        return self.app.baseline_mw + self.radio_power_mw(routing, num_nodes, tx_mode)

    def lifetime_days(
        self, routing: RoutingOptions, num_nodes: int, tx_mode: TxMode
    ) -> float:
        """Eq. 4 under the equal-power assumption of Sec. 3."""
        return self.battery.lifetime_days(
            self.node_power_mw(routing, num_nodes, tx_mode)
        )

    # -- α correction (Sec. 3, termination criterion) -----------------------------

    def power_lower_bound_mw(
        self, p_bar_mw: float, pdr_min: float, model_slack: float = 1.0
    ) -> float:
        """P̄_lb: least simulated power consistent with delivering a PDR_min
        fraction of the traffic the analytical model assumes.

        ``model_slack`` multiplies the radio term to absorb Eq. 5's known
        systematic overcounts (e.g. the star branch assumes each node hears
        2(N−1) packets per round, while the protocol actually delivers at
        most 2N−3: the coordinator's own traffic is never relayed and
        packets addressed to the coordinator need no relay).  The paper's α
        ignores this bias (slack = 1, the default); measurements against
        our simulator put the worst-case bias near 0.78, so slack ≤ 0.7
        makes the termination bound strictly conservative — at the price of
        extra simulated levels.  See EXPERIMENTS.md.
        """
        if not 0.0 <= pdr_min <= 1.0:
            raise ValueError("PDR bound must lie in [0, 1]")
        if not 0.0 < model_slack <= 1.0:
            raise ValueError("model slack must lie in (0, 1]")
        radio_part = max(0.0, p_bar_mw - self.app.baseline_mw)
        return self.app.baseline_mw + pdr_min * model_slack * radio_part

    def alpha(
        self, p_bar_mw: float, pdr_min: float, model_slack: float = 1.0
    ) -> float:
        """α = P̄ / P̄_lb ≥ 1 (Sec. 3)."""
        lb = self.power_lower_bound_mw(p_bar_mw, pdr_min, model_slack)
        if lb <= 0:
            raise ValueError("power lower bound must be positive")
        return p_bar_mw / lb
