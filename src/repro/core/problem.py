"""The optimal mapping problem P (Eq. 8).

:class:`ScenarioParameters` bundles everything about the scenario that is
*not* explored: the radio chip, application traffic, batteries, channel
model, simulation protocol, and the fixed χ entries (slot duration, buffer
size, coordinator location, hop limit).  :class:`DesignProblem` adds the
explored :class:`repro.core.design_space.DesignSpace` and the reliability
bound PDR_min, forming the paper's

    max NLT(ν, χ)   s.t.   topological constraints,
                           configuration constraints,
                           PDR(ν, χ) ≥ PDR_min.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.channel.body import BodyModel, STANDARD_BODY
from repro.channel.fading import FadingParameters
from repro.channel.pathloss import PathLossParameters
from repro.core.design_space import Configuration, DesignSpace
from repro.core.power_model import CoarsePowerModel
from repro.faults.model import FaultScenario
from repro.library.batteries import CR2032, BatterySpec
from repro.library.mac_options import (
    CsmaAccessMode,
    MacKind,
    MacOptions,
    RoutingKind,
    RoutingOptions,
)
from repro.library.radios import CC2650, RadioSpec, TxMode
from repro.net.app import AppParameters


@dataclass(frozen=True)
class ScenarioParameters:
    """Scenario constants of the design example (Sec. 4.1 defaults)."""

    radio: RadioSpec = CC2650
    app: AppParameters = field(default_factory=AppParameters)
    battery: BatterySpec = CR2032
    coordinator_location: int = 0
    max_hops: int = 2
    tdma_slot_s: float = 1e-3
    mac_buffer_size: int = 32
    csma_access_mode: CsmaAccessMode = CsmaAccessMode.NON_PERSISTENT
    #: Simulation protocol: the paper uses Tsim = 600 s averaged over 3
    #: runs; the CI preset shrinks both (see repro.experiments.scenario).
    tsim_s: float = 600.0
    replicates: int = 3
    seed: int = 0
    #: Adaptive replication (the paper's epsilon-bounded estimation,
    #: Sec. 2.2): when enabled, the oracle keeps adding replicates beyond
    #: ``replicates`` until the PDR confidence interval's half-width drops
    #: below ``pdr_epsilon`` or ``max_replicates`` is reached.
    adaptive_replicates: bool = False
    pdr_epsilon: float = 0.005
    max_replicates: int = 10
    body: BodyModel = STANDARD_BODY
    pathloss: Optional[PathLossParameters] = None
    fading: Optional[FadingParameters] = None
    #: Optional fault scenario injected into every replicate (``None`` =
    #: healthy network).  Unlike the execution knobs below this *is* part
    #: of the cache fingerprint: faults change simulation results, so a
    #: faulted campaign must never share cached outcomes with the healthy
    #: scenario (or with a different fault scenario).
    fault_scenario: Optional[FaultScenario] = None
    #: Execution knobs, not physics: worker processes for the simulation
    #: oracle's parallel fan-out (1 = serial, 0 = all cores) and the
    #: directory of the persistent result cache (None = memory-only).
    #: Both are excluded from the cache fingerprint
    #: (:func:`repro.core.result_cache.scenario_fingerprint`) because they
    #: cannot influence simulation results.
    n_jobs: int = 1
    cache_dir: Optional[str] = None
    #: Batched-lane dispatch policy for the simulation oracle (also an
    #: execution knob: the batched kernel is bit-identical to the scalar
    #: path).  ``"auto"`` batches whenever the kernel supports the
    #: configuration and at least two lanes share a topology; ``"on"``
    #: batches every supported evaluation; ``"off"`` never batches.
    batch_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.batch_mode not in ("auto", "on", "off"):
            raise ValueError(
                f"batch_mode must be 'auto', 'on' or 'off', "
                f"got {self.batch_mode!r}"
            )

    def tx_mode(self, tx_dbm: float) -> TxMode:
        """Resolve a design-space TX level to the radio's operating point."""
        return self.radio.tx_mode_by_dbm(tx_dbm)

    def mac_options(self, kind: MacKind) -> MacOptions:
        return MacOptions(
            kind=kind,
            buffer_size=self.mac_buffer_size,
            access_mode=self.csma_access_mode,
            slot_s=self.tdma_slot_s,
        )

    def routing_options(self, kind: RoutingKind) -> RoutingOptions:
        return RoutingOptions(
            kind=kind,
            coordinator=self.coordinator_location,
            max_hops=self.max_hops,
        )

    def power_model(self) -> CoarsePowerModel:
        return CoarsePowerModel(self.radio, self.app, self.battery)


@dataclass(frozen=True)
class DesignProblem:
    """P: the full optimization problem handed to the explorer."""

    pdr_min: float
    scenario: ScenarioParameters = field(default_factory=ScenarioParameters)
    space: DesignSpace = field(default_factory=DesignSpace)

    def __post_init__(self) -> None:
        if not 0.0 <= self.pdr_min <= 1.0:
            raise ValueError(
                f"PDR_min is a probability in [0, 1], got {self.pdr_min}"
            )
        if self.scenario.coordinator_location not in _required(self.space):
            raise ValueError(
                "the coordinator location must be a required location so "
                "that every star candidate contains it"
            )
        for tx in self.space.tx_levels_dbm:
            self.scenario.tx_mode(tx)  # raises if the radio lacks the level

    def with_pdr_min(self, pdr_min: float) -> "DesignProblem":
        """The same problem with a different reliability bound."""
        return replace(self, pdr_min=pdr_min)

    def analytic_power_mw(self, config: Configuration) -> float:
        """Eq. 9 for one configuration (the MILP's view of its cost)."""
        model = self.scenario.power_model()
        return model.node_power_mw(
            self.scenario.routing_options(config.routing),
            config.num_nodes,
            self.scenario.tx_mode(config.tx_dbm),
        )

    def analytic_lifetime_days(self, config: Configuration) -> float:
        return self.scenario.battery.lifetime_days(self.analytic_power_mw(config))


def _required(space: DesignSpace):
    return space.constraints.required
