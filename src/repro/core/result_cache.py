"""Persistent on-disk simulation-result cache.

The oracle's in-memory memo dies with the process, so every rerun of an
experiment pays the full simulation bill again.  This module stores each
:class:`repro.core.evaluator.EvaluationRecord` as one JSON line in
``<cache_dir>/<fingerprint>.jsonl``, where the *fingerprint* hashes every
scenario field that can influence a simulation result (radio, traffic,
channel, protocol, seed, horizon, replication policy, …) and deliberately
excludes pure execution knobs (``n_jobs``, ``cache_dir``).  Consequences:

* results are shared across experiments and across process restarts — a
  warm cache answers repeat evaluations with zero new simulations;
* two scenarios that differ in any physics/protocol field land in
  different files and can never cross-contaminate;
* the file format is append-only JSON lines: concurrent writers at worst
  duplicate a line (last one wins on load), corrupt/partial trailing lines
  are skipped, and the cache is human-greppable.

Floats survive the JSON round trip exactly (``json`` emits ``repr``-style
shortest representations, which parse back to the identical double), so a
record loaded from disk is bit-identical to the one that was stored.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import pathlib
from typing import Dict, Iterator, Optional, Tuple

from repro.net.network import SimulationOutcome

#: ScenarioParameters fields that cannot influence simulation results:
#: they configure *how* the oracle executes, not *what* it simulates.
EXECUTION_ONLY_FIELDS = frozenset({"n_jobs", "cache_dir"})


def canonicalize(value):
    """Reduce an arbitrary scenario component to JSON-stable primitives.

    Handles the types that appear in :class:`ScenarioParameters`: frozen
    dataclasses (field by field), enums (by value), containers, and plain
    objects like :class:`repro.channel.body.BodyModel` (public attributes,
    tagged with the class name so two different models never collide).
    """
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    public = {
        k: canonicalize(v)
        for k, v in sorted(vars(value).items())
        if not k.startswith("_")
    }
    return {"__class__": type(value).__name__, **public}


def scenario_fingerprint(scenario) -> str:
    """Stable hex digest of every result-relevant scenario field."""
    payload = {
        f.name: canonicalize(getattr(scenario, f.name))
        for f in dataclasses.fields(scenario)
        if f.name not in EXECUTION_ONLY_FIELDS
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def record_to_dict(record) -> dict:
    """Serialize an ``EvaluationRecord`` (losslessly) to JSON primitives."""
    o = record.outcome
    return {
        "config": {
            "placement": list(record.config.placement),
            "tx_dbm": record.config.tx_dbm,
            "mac": record.config.mac.value,
            "routing": record.config.routing.value,
        },
        "pdr": record.pdr,
        "power_mw": record.power_mw,
        "nlt_days": record.nlt_days,
        "wall_seconds": record.wall_seconds,
        "outcome": {
            "pdr": o.pdr,
            "node_pdrs": {str(k): v for k, v in o.node_pdrs.items()},
            "node_powers_mw": {
                str(k): v for k, v in o.node_powers_mw.items()
            },
            "worst_power_mw": o.worst_power_mw,
            "nlt_days": o.nlt_days,
            "horizon_s": o.horizon_s,
            "totals": dict(o.totals),
            "events_executed": o.events_executed,
            "replicates": o.replicates,
            "mean_latency_s": o.mean_latency_s,
            "windowed_pdr": [list(bin_) for bin_ in o.windowed_pdr],
        },
    }


def record_from_dict(payload: dict):
    """Inverse of :func:`record_to_dict`."""
    # Imported lazily: evaluator imports this module at load time.
    from repro.core.design_space import Configuration
    from repro.core.evaluator import EvaluationRecord
    from repro.library.mac_options import MacKind, RoutingKind

    c = payload["config"]
    config = Configuration(
        placement=tuple(c["placement"]),
        tx_dbm=c["tx_dbm"],
        mac=MacKind(c["mac"]),
        routing=RoutingKind(c["routing"]),
    )
    o = payload["outcome"]
    outcome = SimulationOutcome(
        pdr=o["pdr"],
        node_pdrs={int(k): v for k, v in o["node_pdrs"].items()},
        node_powers_mw={int(k): v for k, v in o["node_powers_mw"].items()},
        worst_power_mw=o["worst_power_mw"],
        nlt_days=o["nlt_days"],
        horizon_s=o["horizon_s"],
        totals=dict(o["totals"]),
        events_executed=o["events_executed"],
        replicates=o["replicates"],
        mean_latency_s=o["mean_latency_s"],
        # Tolerant get: lines written before fault campaigns existed have
        # no windowed series, and a healthy run's series is empty anyway.
        windowed_pdr=tuple(
            (bin_[0], bin_[1]) for bin_ in o.get("windowed_pdr", ())
        ),
    )
    return EvaluationRecord(
        config=config,
        pdr=payload["pdr"],
        power_mw=payload["power_mw"],
        nlt_days=payload["nlt_days"],
        wall_seconds=payload["wall_seconds"],
        outcome=outcome,
    )


class ResultCache:
    """One scenario's persistent result store (JSON lines, append-only).

    Records are loaded lazily on first access and indexed by
    ``Configuration.key()``.  ``put`` appends immediately, so results
    survive even if the process dies mid-experiment.
    """

    def __init__(self, directory, fingerprint: str) -> None:
        self.directory = pathlib.Path(directory)
        self.fingerprint = fingerprint
        self.path = self.directory / f"{fingerprint}.jsonl"
        self._records: Dict[Tuple, object] = {}
        self._loaded = False

    def load(self) -> None:
        """Read the backing file (idempotent; skips corrupt lines)."""
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = record_from_dict(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    continue  # partial write or foreign content
                self._records[record.config.key()] = record

    def get(self, key: Tuple):
        self.load()
        return self._records.get(key)

    def put(self, record) -> None:
        """Insert (and immediately persist) a record; no-op on repeats."""
        self.load()
        key = record.config.key()
        if key in self._records:
            return
        self._records[key] = record
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record_to_dict(record)) + "\n")

    def invalidate(self) -> None:
        """Drop every stored result (memory and disk)."""
        self._records.clear()
        self._loaded = True
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        self.load()
        return len(self._records)

    def __iter__(self) -> Iterator:
        self.load()
        return iter(self._records.values())

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.path)!r}, "
            f"records={len(self._records) if self._loaded else '?'})"
        )
