"""Persistent on-disk simulation-result cache.

The oracle's in-memory memo dies with the process, so every rerun of an
experiment pays the full simulation bill again.  This module stores each
:class:`repro.core.evaluator.EvaluationRecord` as one JSON line in
``<cache_dir>/<fingerprint>.jsonl``, where the *fingerprint* hashes every
scenario field that can influence a simulation result (radio, traffic,
channel, protocol, seed, horizon, replication policy, …) and deliberately
excludes pure execution knobs (``n_jobs``, ``cache_dir``).  Consequences:

* results are shared across experiments and across process restarts — a
  warm cache answers repeat evaluations with zero new simulations;
* two scenarios that differ in any physics/protocol field land in
  different files and can never cross-contaminate;
* the file format is append-only JSON lines: concurrent writers at worst
  duplicate a line (last one wins on load), corrupt/partial trailing lines
  are skipped, and the cache is human-greppable.

Floats survive the JSON round trip exactly (``json`` emits ``repr``-style
shortest representations, which parse back to the identical double), so a
record loaded from disk is bit-identical to the one that was stored.

The cache is *self-healing*.  Each line is a versioned envelope
(``{"v": 2, "crc": ..., "record": {...}}``) whose CRC32 covers the
canonical-JSON record body; on load, any line that fails to parse, fails
its CRC, or fails record deserialization — a half-written tail after
``kill -9``, a flipped bit, foreign content — is moved to a
``<cache>.quarantine`` sidecar (with the failure reason) instead of being
silently dropped or raising.  Legacy v1 lines (bare record dicts from
before the envelope existed) still load.  After a load that encountered
corruption or legacy lines, the file is compacted: the surviving records
are atomically rewritten (temp file + ``os.replace``) in the current
format, so damage never accumulates and old files converge to v2.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.network import SimulationOutcome

#: Version stamp written into each cache-line envelope; bump when the
#: record schema changes incompatibly.
CACHE_SCHEMA_VERSION = 2

#: ScenarioParameters fields that cannot influence simulation results:
#: they configure *how* the oracle executes, not *what* it simulates.
EXECUTION_ONLY_FIELDS = frozenset({"n_jobs", "cache_dir", "batch_mode"})


def canonicalize(value):
    """Reduce an arbitrary scenario component to JSON-stable primitives.

    Handles the types that appear in :class:`ScenarioParameters`: frozen
    dataclasses (field by field), enums (by value), containers, and plain
    objects like :class:`repro.channel.body.BodyModel` (public attributes,
    tagged with the class name so two different models never collide).
    """
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    public = {
        k: canonicalize(v)
        for k, v in sorted(vars(value).items())
        if not k.startswith("_")
    }
    return {"__class__": type(value).__name__, **public}


def scenario_fingerprint(scenario) -> str:
    """Stable hex digest of every result-relevant scenario field."""
    payload = {
        f.name: canonicalize(getattr(scenario, f.name))
        for f in dataclasses.fields(scenario)
        if f.name not in EXECUTION_ONLY_FIELDS
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def record_to_dict(record) -> dict:
    """Serialize an ``EvaluationRecord`` (losslessly) to JSON primitives."""
    o = record.outcome
    return {
        "config": {
            "placement": list(record.config.placement),
            "tx_dbm": record.config.tx_dbm,
            "mac": record.config.mac.value,
            "routing": record.config.routing.value,
        },
        "pdr": record.pdr,
        "power_mw": record.power_mw,
        "nlt_days": record.nlt_days,
        "wall_seconds": record.wall_seconds,
        "outcome": {
            "pdr": o.pdr,
            "node_pdrs": {str(k): v for k, v in o.node_pdrs.items()},
            "node_powers_mw": {
                str(k): v for k, v in o.node_powers_mw.items()
            },
            "worst_power_mw": o.worst_power_mw,
            "nlt_days": o.nlt_days,
            "horizon_s": o.horizon_s,
            "totals": dict(o.totals),
            "events_executed": o.events_executed,
            "replicates": o.replicates,
            "mean_latency_s": o.mean_latency_s,
            "windowed_pdr": [list(bin_) for bin_ in o.windowed_pdr],
        },
    }


def record_from_dict(payload: dict):
    """Inverse of :func:`record_to_dict`."""
    # Imported lazily: evaluator imports this module at load time.
    from repro.core.design_space import Configuration
    from repro.core.evaluator import EvaluationRecord
    from repro.library.mac_options import MacKind, RoutingKind

    c = payload["config"]
    config = Configuration(
        placement=tuple(c["placement"]),
        tx_dbm=c["tx_dbm"],
        mac=MacKind(c["mac"]),
        routing=RoutingKind(c["routing"]),
    )
    o = payload["outcome"]
    outcome = SimulationOutcome(
        pdr=o["pdr"],
        node_pdrs={int(k): v for k, v in o["node_pdrs"].items()},
        node_powers_mw={int(k): v for k, v in o["node_powers_mw"].items()},
        worst_power_mw=o["worst_power_mw"],
        nlt_days=o["nlt_days"],
        horizon_s=o["horizon_s"],
        totals=dict(o["totals"]),
        events_executed=o["events_executed"],
        replicates=o["replicates"],
        mean_latency_s=o["mean_latency_s"],
        # Tolerant get: lines written before fault campaigns existed have
        # no windowed series, and a healthy run's series is empty anyway.
        windowed_pdr=tuple(
            (bin_[0], bin_[1]) for bin_ in o.get("windowed_pdr", ())
        ),
    )
    return EvaluationRecord(
        config=config,
        pdr=payload["pdr"],
        power_mw=payload["power_mw"],
        nlt_days=payload["nlt_days"],
        wall_seconds=payload["wall_seconds"],
        outcome=outcome,
    )


def envelope_crc(body: dict) -> str:
    """CRC32 (hex) over a JSON body's canonical serialization."""
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(blob.encode("utf-8")), "08x")


def seal_envelope(body: dict, version: int, key: str = "record") -> str:
    """One CRC32-sealed, version-stamped JSON envelope.

    The generic form of this cache's self-healing line format, reused by
    every store that wants the same corruption story (the wearer-result
    cache keeps one sealed summary per file): a ``{"v", "crc", <key>}``
    wrapper whose CRC covers the canonical JSON of the body alone.
    """
    return json.dumps({"v": version, "crc": envelope_crc(body), key: body})


def open_envelope(text: str, version: int, key: str = "record") -> dict:
    """Inverse of :func:`seal_envelope`; raises ``ValueError`` on any
    damage (wrong version, missing body, CRC mismatch) so callers can
    quarantine rather than trust a corrupt payload."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("envelope is not a JSON object")
    if payload.get("v") != version:
        raise ValueError(
            f"unsupported envelope version {payload.get('v')!r}"
        )
    body = payload.get(key)
    if not isinstance(body, dict):
        raise ValueError(f"envelope has no {key!r} body")
    if payload.get("crc") != envelope_crc(body):
        raise ValueError("envelope failed CRC32 check")
    return body


def _record_crc(record_dict: dict) -> str:
    return envelope_crc(record_dict)


def encode_cache_line(record) -> str:
    """One v2 cache line: a CRC32-sealed, version-stamped envelope."""
    return seal_envelope(
        record_to_dict(record), CACHE_SCHEMA_VERSION, key="record"
    )


def decode_cache_line(line: str):
    """Decode one cache line, returning ``(record, is_legacy)``.

    Accepts the current envelope format (CRC-verified) and legacy v1
    lines (a bare record dict, recognized by its ``config`` field).
    Raises ``ValueError``/``KeyError``/``TypeError`` on anything else —
    the caller quarantines those.
    """
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("cache line is not a JSON object")
    if "v" in payload or "crc" in payload or "record" in payload:
        record_dict = open_envelope(line, CACHE_SCHEMA_VERSION, key="record")
        return record_from_dict(record_dict), False
    # Legacy v1: the record dict itself was the line.
    return record_from_dict(payload), True


def _count(name: str, amount: int = 1) -> None:
    """Best-effort ambient metric (no-op when obs isn't active)."""
    from repro.obs import runtime

    obs = runtime.get_active()
    if obs is not None:
        obs.counter(name).inc(amount)


class ResultCache:
    """One scenario's persistent result store (JSON lines, append-only).

    Records are loaded lazily on first access and indexed by
    ``Configuration.key()``.  ``put`` appends immediately, so results
    survive even if the process dies mid-experiment.  Corrupt lines are
    quarantined rather than fatal, and files carrying damage or legacy
    formatting are compacted in place — see the module docstring.
    """

    def __init__(self, directory, fingerprint: str) -> None:
        self.directory = pathlib.Path(directory)
        self.fingerprint = fingerprint
        self.path = self.directory / f"{fingerprint}.jsonl"
        self.quarantine_path = self.directory / f"{fingerprint}.jsonl.quarantine"
        self._records: Dict[Tuple, object] = {}
        self._loaded = False
        #: Lines moved to the quarantine sidecar by the last load().
        self.quarantined_lines = 0
        #: Whether the last load() triggered an atomic compaction.
        self.compacted = False

    def load(self) -> None:
        """Read the backing file (idempotent; heals corruption).

        Damaged lines — truncated tails from a crash mid-append, bit
        rot, foreign content — are appended to the ``.quarantine``
        sidecar with a reason, never raised.  If any line was damaged or
        written in the legacy v1 format, the surviving records are
        compacted back to disk atomically in the current format.
        """
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        quarantined: List[dict] = []
        legacy_lines = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record, is_legacy = decode_cache_line(line)
                except Exception as exc:  # any damage: quarantine, not fatal
                    quarantined.append(
                        {
                            "line_number": lineno,
                            "reason": f"{type(exc).__name__}: {exc}",
                            "line": line,
                        }
                    )
                    continue
                if is_legacy:
                    legacy_lines += 1
                self._records[record.config.key()] = record
        self.quarantined_lines = len(quarantined)
        if quarantined:
            self._write_quarantine(quarantined)
            _count("cache.quarantined_lines", len(quarantined))
        if quarantined or legacy_lines:
            self._compact()

    def _write_quarantine(self, quarantined: List[dict]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.quarantine_path, "a", encoding="utf-8") as fh:
            for item in quarantined:
                fh.write(json.dumps(item) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _compact(self) -> None:
        """Atomically rewrite the file as the loaded records, v2 format."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in self._records.values():
                fh.write(encode_cache_line(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.compacted = True
        _count("cache.compactions")

    def get(self, key: Tuple):
        self.load()
        return self._records.get(key)

    def put(self, record) -> None:
        """Insert (and immediately persist) a record; no-op on repeats."""
        self.load()
        key = record.config.key()
        if key in self._records:
            return
        self._records[key] = record
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(encode_cache_line(record) + "\n")

    def invalidate(self) -> None:
        """Drop every stored result (memory and disk)."""
        self._records.clear()
        self._loaded = True
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        self.load()
        return len(self._records)

    def __iter__(self) -> Iterator:
        self.load()
        return iter(self._records.values())

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.path)!r}, "
            f"records={len(self._records) if self._loaded else '?'})"
        )
