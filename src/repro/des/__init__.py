"""A deterministic discrete-event simulation (DES) kernel.

This package is the reproduction's substitute for the Castalia/OMNeT++
simulator used in the paper.  It provides:

* :class:`repro.des.engine.Simulator` — an event-scheduling kernel with a
  binary-heap future event list, stable simultaneous-event ordering, and
  cancellable events;
* :mod:`repro.des.process` — generator-based processes (SimPy-style) for
  components whose behaviour reads naturally as sequential code;
* :mod:`repro.des.rng` — named, independently seeded random streams so
  that every stochastic component is reproducible and runs can be averaged
  over disjoint randomness;
* :mod:`repro.des.monitor` — counters, time-weighted statistics, and trace
  recording used by the network stack's bookkeeping.
"""

from repro.des.engine import Event, Simulator
from repro.des.process import Process, Timeout, Waiter
from repro.des.rng import RngStreams
from repro.des.monitor import Counter, TimeWeightedValue, TraceLog

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "Waiter",
    "RngStreams",
    "Counter",
    "TimeWeightedValue",
    "TraceLog",
]
