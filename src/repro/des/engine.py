"""The event-scheduling simulation kernel.

The kernel is a classic future-event-list design: callbacks are scheduled at
absolute simulation times and executed in non-decreasing time order.  Two
properties matter for reproducibility and are guaranteed here:

* **Stable ordering.**  Events at the same timestamp run in the order they
  were scheduled (FIFO), with an optional integer ``priority`` that runs
  lower values first.  Network protocols are full of simultaneous events
  (e.g. a TDMA slot boundary and a packet arrival), and unstable ordering
  would make runs irreproducible.
* **Cheap cancellation.**  Cancelled events stay in the heap but are marked
  dead and skipped on pop, so timers (MAC backoffs, retransmission guards)
  can be cancelled in O(1).

Performance notes (profile-guided, see DESIGN.md §8): the kernel keeps a
live-event counter so :attr:`Simulator.pending_count` is O(1) instead of a
heap walk; the run loop binds the heap and ``heappop`` to locals and pops
events directly rather than peeking then re-scanning; and when cancelled
events come to dominate the heap (timer-heavy MACs cancel most of what
they schedule) the heap is lazily compacted — a filter + ``heapify`` that
preserves the (time, priority, seq) total order exactly, so execution
order is bit-identical with or without compaction.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.runtime import get_active

#: Priority lane for environment interventions (fault injection).  An
#: intervention scheduled at time t must take effect before any protocol
#: event at the same timestamp — a node dying at exactly a slot boundary
#: must not transmit in that slot — and the engine's stable (priority,
#: seq) ordering makes that deterministic rather than insertion-order
#: dependent.  Protocol code uses the default priority 0; anything more
#: urgent than a fault would break the "faults preempt protocol" contract.
FAULT_PRIORITY = -100


class Event:
    """A scheduled callback.

    Users get instances back from :meth:`Simulator.schedule` and may call
    :meth:`cancel` while the event is pending.  Executed or cancelled events
    are inert.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "done", "sim",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.done = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if not self.cancelled and not self.done:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancel()

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.done

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("done" if self.done else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """Event-scheduling simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)

    The simulator is deliberately free of domain knowledge; the WBAN stack
    in :mod:`repro.net` builds on it through callbacks and processes.
    """

    #: Compaction policy: rebuild the heap when cancelled entries both
    #: exceed this count and outnumber the live ones.  The threshold keeps
    #: tiny heaps (where a rebuild costs more than it saves) untouched.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._events_executed = 0
        # Live/dead bookkeeping: _live counts pending events in the heap
        # (O(1) pending_count); _dead counts cancelled entries not yet
        # popped, driving the lazy compaction.
        self._live = 0
        self._dead = 0

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live events still in the queue (O(1): maintained on
        schedule/cancel/pop instead of walking the heap)."""
        return self._live

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for a previously pending event."""
        self._live -= 1
        self._dead += 1
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  Entries are totally
        ordered by their unique (time, priority, seq) key, so rebuilding
        the heap cannot change pop order — only the constant factor."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- scheduling ---------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: this is the hottest scheduling entry point
        # (timers, MAC backoffs, app traffic all come through here) and a
        # non-negative delay from a finite `now` already implies the
        # time-ordering checks.
        time = self._now + delay
        if not math.isfinite(time):
            raise ValueError("event time must be finite")
        event = Event(time, priority, next(self._counter), callback, args, self)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        if not math.isfinite(time):
            raise ValueError("event time must be finite")
        event = Event(time, priority, next(self._counter), callback, args, self)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        self._live += 1
        return event

    # -- execution ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _priority, _seq, event = pop(heap)
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = time
            event.done = True
            self._live -= 1
            self._events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), mirroring the
        behaviour of mainstream DES kernels so that time-averaged statistics
        cover the full horizon.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        executed = 0
        # Hot loop: everything the per-event path touches is a local.
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    pop(heap)
                    self._dead -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(heap)
                self._now = event.time
                event.done = True
                self._live -= 1
                self._events_executed += 1
                event.callback(*event.args)
                executed += 1
                if heap is not self._heap:
                    # A callback cancelled enough timers to trigger heap
                    # compaction (or scheduled into a rebuilt heap); pick
                    # up the replacement list.
                    heap = self._heap
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            # Milestone instrumentation: once per run() call, never per
            # event — the event loop above stays untouched.
            obs = get_active()
            obs.counter("des.runs").inc()
            obs.counter("des.events").inc(executed)
            if obs.tracing:
                obs.event(
                    "des.run",
                    events=executed,
                    now=round(self._now, 9),
                    until=until,
                )

    def _next_live_time(self) -> Optional[float]:
        """Peek the timestamp of the next non-cancelled event."""
        while self._heap:
            time, _priority, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                self._dead -= 1
                continue
            return time
        return None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"executed={self._events_executed})"
        )
