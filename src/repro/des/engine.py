"""The event-scheduling simulation kernel.

The kernel is a classic future-event-list design: callbacks are scheduled at
absolute simulation times and executed in non-decreasing time order.  Two
properties matter for reproducibility and are guaranteed here:

* **Stable ordering.**  Events at the same timestamp run in the order they
  were scheduled (FIFO), with an optional integer ``priority`` that runs
  lower values first.  Network protocols are full of simultaneous events
  (e.g. a TDMA slot boundary and a packet arrival), and unstable ordering
  would make runs irreproducible.
* **Cheap cancellation.**  Cancelled events stay in the heap but are marked
  dead and skipped on pop, so timers (MAC backoffs, retransmission guards)
  can be cancelled in O(1).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.runtime import get_active

#: Priority lane for environment interventions (fault injection).  An
#: intervention scheduled at time t must take effect before any protocol
#: event at the same timestamp — a node dying at exactly a slot boundary
#: must not transmit in that slot — and the engine's stable (priority,
#: seq) ordering makes that deterministic rather than insertion-order
#: dependent.  Protocol code uses the default priority 0; anything more
#: urgent than a fault would break the "faults preempt protocol" contract.
FAULT_PRIORITY = -100


class Event:
    """A scheduled callback.

    Users get instances back from :meth:`Simulator.schedule` and may call
    :meth:`cancel` while the event is pending.  Executed or cancelled events
    are inert.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "done")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.done = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.done

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("done" if self.done else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """Event-scheduling simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run(until=10.0)

    The simulator is deliberately free of domain knowledge; the WBAN stack
    in :mod:`repro.net` builds on it through callbacks and processes.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._events_executed = 0

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live events still in the queue."""
        return sum(1 for *_rest, ev in self._heap if ev.pending)

    # -- scheduling ---------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        if not math.isfinite(time):
            raise ValueError("event time must be finite")
        event = Event(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    # -- execution ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        while self._heap:
            time, _priority, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            event.done = True
            self._events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), mirroring the
        behaviour of mainstream DES kernels so that time-averaged statistics
        cover the full horizon.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                next_time = self._next_live_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            # Milestone instrumentation: once per run() call, never per
            # event — the event loop above stays untouched.
            obs = get_active()
            obs.counter("des.runs").inc()
            obs.counter("des.events").inc(executed)
            if obs.tracing:
                obs.event(
                    "des.run",
                    events=executed,
                    now=round(self._now, 9),
                    until=until,
                )

    def _next_live_time(self) -> Optional[float]:
        """Peek the timestamp of the next non-cancelled event."""
        while self._heap:
            time, _priority, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"executed={self._events_executed})"
        )
