"""Measurement primitives: counters, time-weighted values, and traces.

These are the bookkeeping tools the network stack uses to produce the
paper's metrics.  They are deliberately simple and allocation-light because
they sit on the simulator's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Counter:
    """A named monotone event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class TimeWeightedValue:
    """Tracks a piecewise-constant signal and its time average.

    Used for radio-state occupancy: the fraction of time a radio spends in
    TX / RX / sleep is the time average of the corresponding indicator.
    """

    __slots__ = ("name", "_last_time", "_last_value", "_integral", "_start_time")

    def __init__(self, name: str, initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self._start_time = start_time
        self._last_time = start_time
        self._last_value = initial
        self._integral = 0.0

    def update(self, now: float, value: float) -> None:
        """Record that the signal takes ``value`` from time ``now`` on."""
        if now < self._last_time:
            raise ValueError(
                f"{self.name}: time went backwards ({now} < {self._last_time})"
            )
        self._integral += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value

    def integral(self, now: float) -> float:
        """Integral of the signal from start to ``now``."""
        return self._integral + self._last_value * (now - self._last_time)

    def average(self, now: float) -> float:
        """Time average of the signal from start to ``now``."""
        horizon = now - self._start_time
        if horizon <= 0:
            return self._last_value
        return self.integral(now) / horizon

    @property
    def current(self) -> float:
        return self._last_value

    def __repr__(self) -> str:
        return f"TimeWeightedValue({self.name!r}, current={self._last_value})"


@dataclass
class TraceRecord:
    """One trace entry: time, category, and free-form payload."""

    time: float
    category: str
    payload: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """An optional structured event trace.

    Tracing is off by default (``enabled=False``) so that production sweeps
    pay no cost; tests and debugging sessions enable it to assert on
    protocol behaviour (e.g. "the coordinator relayed exactly once per
    packet").
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def log(self, time: float, category: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, category, payload))

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


def summarize_counters(counters: Dict[str, Counter]) -> Dict[str, int]:
    """Snapshot a dict of counters into plain integers."""
    return {name: counter.value for name, counter in counters.items()}


def merge_traces(traces: List[TraceLog]) -> List[TraceRecord]:
    """Merge several trace logs into one time-ordered record list."""
    merged: List[Tuple[float, int, TraceRecord]] = []
    for t_index, trace in enumerate(traces):
        for record in trace.records:
            merged.append((record.time, t_index, record))
    merged.sort(key=lambda item: (item[0], item[1]))
    return [record for _t, _i, record in merged]
