"""Generator-based processes on top of the event kernel.

Components whose behaviour is naturally sequential (sense, back off, sense
again, transmit, ...) read better as a coroutine than as a callback chain.
A :class:`Process` wraps a generator that yields:

* :class:`Timeout(delay)` — resume after ``delay`` simulated seconds;
* :class:`Waiter` — resume when another component calls
  :meth:`Waiter.trigger`, optionally carrying a value.

Example::

    def blinker(sim):
        while True:
            yield Timeout(1.0)
            print(f"blink at {sim.now}")

    Process(sim, blinker(sim))
    sim.run(until=5.0)
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.des.engine import Event, Simulator


class Timeout:
    """Yielded by a process to sleep for a fixed simulated duration."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Waiter:
    """A one-shot wakeup channel between components.

    A process yields a waiter to block on it; any other code calls
    :meth:`trigger` to resume the process (at the current simulation time,
    after already-scheduled events at that time).  Triggering an un-awaited
    waiter stores the value so a later ``yield`` returns immediately —
    avoiding the classic lost-wakeup race.
    """

    __slots__ = ("_sim", "_process", "_value", "_triggered", "_consumed")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._process: Optional["Process"] = None
        self._value: Any = None
        self._triggered = False
        self._consumed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    def trigger(self, value: Any = None) -> None:
        """Wake the waiting process (idempotent after the first call)."""
        if self._triggered:
            return
        self._triggered = True
        self._value = value
        if self._process is not None:
            process = self._process
            self._process = None
            self._sim.schedule(0.0, process._resume, self._value)

    def _attach(self, process: "Process") -> bool:
        """Register the waiting process.  Returns True when already
        triggered (i.e. the process should resume immediately)."""
        if self._triggered:
            return True
        self._process = process
        return False


class Process:
    """Drives a generator through the simulator.

    The process starts immediately upon construction (its first segment is
    scheduled at the current time) and runs until the generator returns or
    :meth:`interrupt` is called.
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "process"):
        self.sim = sim
        self.name = name
        self._gen = generator
        self._alive = True
        self._pending_event: Optional[Event] = None
        self._pending_event = sim.schedule(0.0, self._resume, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self) -> None:
        """Stop the process: cancel its pending timer and close the
        generator."""
        if not self._alive:
            return
        self._alive = False
        if self._pending_event is not None and self._pending_event.pending:
            self._pending_event.cancel()
        self._gen.close()

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._pending_event = None
        try:
            yielded = self._gen.send(value)
        except StopIteration:
            self._alive = False
            return
        self._handle(yielded)

    def _handle(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._pending_event = self.sim.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, Waiter):
            if yielded._attach(self):
                self._pending_event = self.sim.schedule(
                    0.0, self._resume, yielded._value
                )
        else:
            self._alive = False
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; expected Timeout or Waiter"
            )

    def __repr__(self) -> str:
        return f"Process({self.name!r}, alive={self._alive})"


def all_processes_dead(processes: List[Process]) -> bool:
    """True when every process in the list has finished."""
    return all(not p.alive for p in processes)
