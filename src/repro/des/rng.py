"""Named, independently seeded random streams.

Every stochastic component in the simulator (per-link fading, MAC backoff,
application jitter, ...) draws from its own stream, keyed by a string name.
Streams are derived from a root seed with ``numpy.random.SeedSequence``
spawned per name, so:

* the same (seed, name) pair always produces the same draws — runs are
  bit-for-bit reproducible;
* adding a new consumer does not perturb the draws of existing ones —
  experiments stay comparable across code revisions;
* replications use disjoint randomness by bumping the ``replicate`` index
  rather than ad hoc seed arithmetic.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngStreams:
    """A factory of named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed of the whole simulation run.
    replicate:
        Replication index; the paper averages metrics over 3 runs, which we
        realize as replicates 0..2 of the same seed.
    """

    def __init__(self, seed: int = 0, replicate: int = 0) -> None:
        self.seed = int(seed)
        self.replicate = int(replicate)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._streams[name] = gen
        return gen

    def _derive(self, name: str) -> np.random.SeedSequence:
        # Hash the name to a stable 64-bit key; SeedSequence mixes it with
        # the root seed and replicate index.
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        name_key = int.from_bytes(digest[:8], "little")
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=(self.replicate, name_key)
        )

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform sample from the named stream."""
        return float(self.stream(name).uniform(low, high))

    def normal(self, name: str, loc: float = 0.0, scale: float = 1.0) -> float:
        """Draw one normal sample from the named stream."""
        return float(self.stream(name).normal(loc, scale))

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential sample with the given mean."""
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer uniformly from ``[low, high)``."""
        return int(self.stream(name).integers(low, high))

    def __repr__(self) -> str:
        return (
            f"RngStreams(seed={self.seed}, replicate={self.replicate}, "
            f"streams={len(self._streams)})"
        )
