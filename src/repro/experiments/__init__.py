"""Experiment harnesses: one module per paper table/figure/claim.

Every experiment accepts a ``preset`` (``"paper"``, ``"ci"``, or
``"smoke"``) controlling the simulation horizon and sweep size — see
:mod:`repro.experiments.scenario`.  The benches under ``benchmarks/`` run
the ``ci`` preset and assert the paper's qualitative shape; the ``paper``
preset reproduces the full protocol (T_sim = 600 s × 3 runs).

Index (mirrors DESIGN.md):

* T1 — :mod:`repro.experiments.table1` (CC2650 specifications table);
* F3 — :mod:`repro.experiments.figure3` (PDR vs. NLT frontier and the
  per-PDR_min optima);
* R1 — :mod:`repro.experiments.reduction` (simulation-count reduction vs.
  exhaustive search);
* R2 — :mod:`repro.experiments.annealing_cmp` (speedup vs. simulated
  annealing);
* A1–A3 — :mod:`repro.experiments.ablations`.
"""

from repro.experiments.scenario import (
    PRESETS,
    Preset,
    make_problem,
    make_scenario,
    make_space,
)
from repro.experiments.table1 import table1_rows, format_table1
from repro.experiments.figure3 import Figure3Data, run_figure3, format_figure3
from repro.experiments.reduction import ReductionData, run_reduction, format_reduction
from repro.experiments.annealing_cmp import (
    AnnealingComparisonData,
    run_annealing_comparison,
    format_annealing_comparison,
)
from repro.experiments.ablations import (
    run_alpha_ablation,
    run_candidate_cap_ablation,
    run_milp_only_ablation,
)
from repro.experiments.extensions import (
    format_dual_staircase,
    format_posture_sensitivity,
    format_routing_comparison,
    run_dual_staircase,
    run_posture_sensitivity,
    run_routing_comparison,
)

__all__ = [
    "Preset",
    "PRESETS",
    "make_scenario",
    "make_problem",
    "make_space",
    "table1_rows",
    "format_table1",
    "Figure3Data",
    "run_figure3",
    "format_figure3",
    "ReductionData",
    "run_reduction",
    "format_reduction",
    "AnnealingComparisonData",
    "run_annealing_comparison",
    "format_annealing_comparison",
    "run_milp_only_ablation",
    "run_alpha_ablation",
    "run_candidate_cap_ablation",
    "run_routing_comparison",
    "format_routing_comparison",
    "run_posture_sensitivity",
    "format_posture_sensitivity",
    "run_dual_staircase",
    "format_dual_staircase",
]
