"""A1–A3 — ablations of the design choices DESIGN.md calls out.

* **A1, MILP-only** (:func:`run_milp_only_ablation`): trust Eq. 9 and the
  analytical model alone — pick the cheapest configuration and *then* check
  it in the simulator.  Quantifies how badly the coarse model's optimum
  violates the reliability constraint, i.e. why the paper needs the
  simulation feedback loop at all.
* **A2, α-correction** (:func:`run_alpha_ablation`): disable the α factor
  in the termination criterion (use P̄* directly instead of P̄*/α).
  Measures the saved simulations and whether the returned optimum degrades
  — the trade the paper's termination bound is designed to avoid.
* **A3, candidate-pool size** (:func:`run_candidate_cap_ablation`): vary
  the per-iteration cap S on simulated MILP optima.  Small pools simulate
  less per power level but may miss the feasible placement at a level and
  push the search to more expensive levels.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.design_space import Configuration
from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.explorer import HumanIntranetExplorer
from repro.core.milp_builder import MilpFormulation
from repro.experiments.scenario import get_preset, make_problem, make_scenario


# -- A1: MILP-only ---------------------------------------------------------------


@dataclass
class MilpOnlyAblation:
    pdr_min: float
    analytic_choice: Configuration
    analytic_power_mw: float
    simulated: EvaluationRecord
    meets_constraint: bool
    #: what the full algorithm returns instead.
    alg1_choice: Optional[Configuration]
    alg1_pdr: Optional[float]


def run_milp_only_ablation(
    pdr_min: float, preset: str = "ci", seed: int = 0
) -> MilpOnlyAblation:
    """Compare 'trust the analytical model' against the full algorithm."""
    p = get_preset(preset)
    problem = make_problem(pdr_min, preset, seed=seed)
    formulation = MilpFormulation(problem)
    status, candidates, p_star = formulation.enumerate_candidates(max_solutions=1)
    if not candidates:
        raise RuntimeError(f"MILP infeasible in ablation (status {status})")
    oracle = SimulationOracle(problem.scenario)
    simulated = oracle.evaluate(candidates[0])

    explorer = HumanIntranetExplorer(
        problem, oracle=oracle, candidate_cap=p.candidate_cap
    )
    alg1 = explorer.explore()
    return MilpOnlyAblation(
        pdr_min=pdr_min,
        analytic_choice=candidates[0],
        analytic_power_mw=p_star if p_star is not None else math.nan,
        simulated=simulated,
        meets_constraint=simulated.pdr >= pdr_min,
        alg1_choice=alg1.best.config if alg1.best else None,
        alg1_pdr=alg1.best.pdr if alg1.best else None,
    )


# -- A2: α-correction -------------------------------------------------------------


@dataclass
class AlphaAblation:
    pdr_min: float
    with_alpha_power_mw: Optional[float]
    with_alpha_simulations: int
    without_alpha_power_mw: Optional[float]
    without_alpha_simulations: int

    @property
    def premature_termination(self) -> bool:
        """True when dropping α returned a worse (higher-power) optimum."""
        if self.with_alpha_power_mw is None or self.without_alpha_power_mw is None:
            return self.with_alpha_power_mw != self.without_alpha_power_mw
        return self.without_alpha_power_mw > self.with_alpha_power_mw + 1e-9


def run_alpha_ablation(
    pdr_min: float, preset: str = "ci", seed: int = 0
) -> AlphaAblation:
    """Algorithm 1 with and without the α-corrected termination bound."""
    p = get_preset(preset)
    problem = make_problem(pdr_min, preset, seed=seed)

    oracle_a = SimulationOracle(problem.scenario)
    with_alpha = HumanIntranetExplorer(
        problem, oracle=oracle_a, candidate_cap=p.candidate_cap
    ).explore()

    oracle_b = SimulationOracle(problem.scenario)
    without_alpha = HumanIntranetExplorer(
        problem, oracle=oracle_b, candidate_cap=p.candidate_cap, use_alpha=False
    ).explore()

    return AlphaAblation(
        pdr_min=pdr_min,
        with_alpha_power_mw=with_alpha.best.power_mw if with_alpha.best else None,
        with_alpha_simulations=with_alpha.simulations_run,
        without_alpha_power_mw=(
            without_alpha.best.power_mw if without_alpha.best else None
        ),
        without_alpha_simulations=without_alpha.simulations_run,
    )


# -- A3: candidate-pool size --------------------------------------------------------


@dataclass
class CandidateCapAblation:
    pdr_min: float
    #: cap -> (simulations, optimum power or None, iterations)
    by_cap: Dict[Optional[int], tuple] = field(default_factory=dict)
    wall_seconds: float = 0.0


def run_candidate_cap_ablation(
    pdr_min: float,
    preset: str = "ci",
    seed: int = 0,
    caps: List[Optional[int]] = (4, 16, 64),
) -> CandidateCapAblation:
    """Sweep the per-iteration candidate pool size S."""
    problem = make_problem(pdr_min, preset, seed=seed)
    data = CandidateCapAblation(pdr_min=pdr_min)
    start = time.perf_counter()
    # One shared oracle: caches make the sweep affordable and the counters
    # below are taken per-run deltas.
    oracle = SimulationOracle(make_scenario(preset, seed=seed))
    for cap in caps:
        before = oracle.simulations_run
        result = HumanIntranetExplorer(
            problem, oracle=oracle, candidate_cap=cap
        ).explore()
        data.by_cap[cap] = (
            oracle.simulations_run - before,
            result.best.power_mw if result.best else None,
            len(result.iterations),
        )
    data.wall_seconds = time.perf_counter() - start
    return data
