"""R2 — the paper's "3× faster than simulated annealing" comparison.

Both optimizers pay per distinct configuration simulated (the dominant
cost on both sides; the paper's wall-clock figures are likewise dominated
by Castalia runs).  The accounting compares *complete runs*, as the paper
does:

* Algorithm 1's cost is the simulations it needs to terminate with a
  certified optimum;
* simulated annealing's cost is its full schedule — SA has no optimality
  certificate, so it cannot stop early even when it happens to pass
  through the optimum; its answer only exists when the schedule ends.

Each row also reports whether SA's final answer *matched* Algorithm 1's
solution quality (feasible with power within tolerance) and, for analysis,
the first-hit time had SA been able to stop at the optimum
(``sa_first_hit_simulations``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.baselines.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.core.evaluator import SimulationOracle
from repro.core.explorer import HumanIntranetExplorer
from repro.experiments.scenario import get_preset, make_problem


@dataclass
class ComparisonRow:
    pdr_min: float
    alg1_simulations: int
    alg1_power_mw: Optional[float]
    sa_simulations: int
    sa_matched_quality: bool
    sa_first_hit_simulations: Optional[int]

    @property
    def speedup(self) -> float:
        if self.alg1_simulations == 0:
            raise ValueError("Algorithm 1 ran no simulations")
        return self.sa_simulations / self.alg1_simulations


@dataclass
class AnnealingComparisonData:
    preset: str
    sa_steps: int = 0
    rows: Dict[float, ComparisonRow] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def mean_speedup(self) -> float:
        if not self.rows:
            raise ValueError("no comparison rows")
        return sum(r.speedup for r in self.rows.values()) / len(self.rows)


def run_annealing_comparison(
    preset: str = "ci",
    seed: int = 0,
    pdr_mins: Optional[Tuple[float, ...]] = None,
    sa_steps: int = 150,
    power_tolerance_mw: float = 1e-6,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> AnnealingComparisonData:
    """Run the head-to-head comparison for each PDR_min.

    Both sides keep separate oracles (separate simulation accounting), but
    both inherit the same ``n_jobs``/``cache_dir`` execution knobs.  The
    paper's cost figures assume a cold cache: with a warm ``cache_dir``
    both optimizers answer repeats from disk and the *distinct simulation*
    counts shrink accordingly.
    """
    p = get_preset(preset)
    sweep = pdr_mins if pdr_mins is not None else p.pdr_min_sweep
    data = AnnealingComparisonData(preset=preset, sa_steps=sa_steps)
    start = time.perf_counter()

    for pdr_min in sweep:
        problem = make_problem(pdr_min, preset, seed=seed, n_jobs=n_jobs,
                               cache_dir=cache_dir)

        alg1_oracle = SimulationOracle(problem.scenario)
        explorer = HumanIntranetExplorer(
            problem, oracle=alg1_oracle, candidate_cap=p.candidate_cap
        )
        alg1 = explorer.explore()

        sa_oracle = SimulationOracle(problem.scenario)
        annealer = SimulatedAnnealing(
            problem,
            oracle=sa_oracle,
            schedule=AnnealingSchedule(steps=sa_steps),
            seed=seed,
        )
        sa = annealer.run()

        if alg1.best is not None:
            target = alg1.best.power_mw + power_tolerance_mw
            first_hit = sa.simulations_to_reach(target)
            matched = sa.best is not None and sa.best.power_mw <= target
        else:
            first_hit = None
            matched = sa.best is None  # both agree it is infeasible
        data.rows[pdr_min] = ComparisonRow(
            pdr_min=pdr_min,
            alg1_simulations=alg1.simulations_run,
            alg1_power_mw=alg1.best.power_mw if alg1.best else None,
            sa_simulations=sa.simulations_run,
            sa_matched_quality=matched,
            sa_first_hit_simulations=first_hit,
        )
        alg1_oracle.close()
        sa_oracle.close()

    data.wall_seconds = time.perf_counter() - start
    return data


def format_annealing_comparison(data: AnnealingComparisonData) -> str:
    lines = [
        f"R2 (preset={data.preset}): Algorithm 1 vs simulated annealing "
        f"({data.sa_steps}-step schedule; complete-run cost in distinct "
        "simulations)",
        f"{'PDRmin':>8}  {'Alg. 1':>8}  {'SA':>8}  {'speedup':>8}  "
        f"{'SA matched?':>12}  {'SA first hit':>13}",
    ]
    for pdr_min in sorted(data.rows):
        row = data.rows[pdr_min]
        first_hit = (
            str(row.sa_first_hit_simulations)
            if row.sa_first_hit_simulations is not None
            else "never"
        )
        lines.append(
            f"{100 * pdr_min:>7.1f}%  {row.alg1_simulations:>8d}  "
            f"{row.sa_simulations:>8d}  {row.speedup:>7.2f}x  "
            f"{str(row.sa_matched_quality):>12}  {first_hit:>13}"
        )
    lines.append(f"mean speedup: {data.mean_speedup:.2f}x  (paper: ~3x)")
    return "\n".join(lines)
