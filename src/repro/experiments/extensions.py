"""E1–E3 — extension experiments beyond the paper's evaluation.

* **E1, routing schemes** (:func:`run_routing_comparison`): star vs.
  controlled flooding vs. point-to-point forwarding on the same placement
  and TX level.  Makes the paper's Sec. 2.1.2 design argument quantitative:
  flooding buys reliability with energy; P2P is cheap but fragile on the
  dynamic body channel.
* **E2, posture sensitivity** (:func:`run_posture_sensitivity`): how much
  reliability the daily-activity posture mixture costs each routing
  scheme — the channel effect the NICTA measurement campaign embeds and
  the synthetic default omits.
* **E3, the dual problem** (:func:`run_dual_staircase`): maximize PDR
  under a lifetime bound, the reliability-first formulation the paper's
  introduction motivates with the insulin-pump example.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.channel.posture import PostureParameters
from repro.core.design_space import Configuration
from repro.core.evaluator import SimulationOracle
from repro.core.explorer import DualExplorationResult, HumanIntranetExplorer
from repro.experiments.scenario import get_preset, make_problem, make_scenario
from repro.library.mac_options import MacKind, RoutingKind
from repro.net.network import simulate_configuration

#: The running example placement of Sec. 4 and the full TX level.
REFERENCE_PLACEMENT: Tuple[int, ...] = (0, 1, 3, 6)
REFERENCE_TX_DBM: float = 0.0


@dataclass
class RoutingComparisonRow:
    routing: RoutingKind
    pdr: float
    power_mw: float
    nlt_days: float
    transmissions: int


@dataclass
class RoutingComparisonData:
    preset: str
    rows: Dict[RoutingKind, RoutingComparisonRow] = field(default_factory=dict)
    wall_seconds: float = 0.0


def run_routing_comparison(
    preset: str = "ci", seed: int = 0,
    placement: Tuple[int, ...] = REFERENCE_PLACEMENT,
    tx_dbm: float = REFERENCE_TX_DBM,
) -> RoutingComparisonData:
    """E1: all three routing schemes on identical placement/PHY/MAC."""
    scenario = make_scenario(preset, seed=seed)
    data = RoutingComparisonData(preset=preset)
    start = time.perf_counter()
    for routing in (RoutingKind.STAR, RoutingKind.MESH, RoutingKind.P2P):
        outcome = simulate_configuration(
            placement=placement,
            radio_spec=scenario.radio,
            tx_mode=scenario.tx_mode(tx_dbm),
            mac_options=scenario.mac_options(MacKind.TDMA),
            routing_options=scenario.routing_options(routing),
            app_params=scenario.app,
            tsim_s=scenario.tsim_s,
            replicates=scenario.replicates,
            seed=seed,
            battery=scenario.battery,
        )
        data.rows[routing] = RoutingComparisonRow(
            routing=routing,
            pdr=outcome.pdr,
            power_mw=outcome.worst_power_mw,
            nlt_days=outcome.nlt_days,
            transmissions=outcome.totals["transmissions"],
        )
    data.wall_seconds = time.perf_counter() - start
    return data


def format_routing_comparison(data: RoutingComparisonData) -> str:
    lines = [
        f"E1 (preset={data.preset}): routing schemes on "
        f"{Configuration(REFERENCE_PLACEMENT, REFERENCE_TX_DBM, MacKind.TDMA, RoutingKind.STAR).label().split(' ')[0]} "
        f"at {REFERENCE_TX_DBM:+.0f} dBm, TDMA",
        f"{'routing':>8}  {'PDR':>8}  {'P (mW)':>8}  {'NLT (d)':>8}  {'tx count':>9}",
    ]
    for routing in (RoutingKind.STAR, RoutingKind.MESH, RoutingKind.P2P):
        row = data.rows[routing]
        lines.append(
            f"{routing.value:>8}  {100 * row.pdr:>7.2f}%  {row.power_mw:>8.3f}  "
            f"{row.nlt_days:>8.1f}  {row.transmissions:>9d}"
        )
    lines.append(
        "Reading: flooding trades energy for redundancy; point-to-point "
        "forwarding is the cheapest and the least reliable (Sec. 2.1.2's "
        "argument, quantified)."
    )
    return "\n".join(lines)


@dataclass
class PostureSensitivityData:
    preset: str
    #: routing -> (pdr without posture, pdr with posture)
    rows: Dict[RoutingKind, Tuple[float, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0


def run_posture_sensitivity(
    preset: str = "ci", seed: int = 0,
    placement: Tuple[int, ...] = REFERENCE_PLACEMENT,
    tx_dbm: float = REFERENCE_TX_DBM,
) -> PostureSensitivityData:
    """E2: PDR with and without daily-activity posture modulation."""
    scenario = make_scenario(preset, seed=seed)
    data = PostureSensitivityData(preset=preset)
    start = time.perf_counter()
    for routing in (RoutingKind.STAR, RoutingKind.MESH, RoutingKind.P2P):
        kwargs = dict(
            placement=placement,
            radio_spec=scenario.radio,
            tx_mode=scenario.tx_mode(tx_dbm),
            mac_options=scenario.mac_options(MacKind.TDMA),
            routing_options=scenario.routing_options(routing),
            app_params=scenario.app,
            tsim_s=scenario.tsim_s,
            replicates=scenario.replicates,
            seed=seed,
            battery=scenario.battery,
        )
        plain = simulate_configuration(**kwargs)
        # Scale the posture dwell to the horizon so even short CI runs see
        # several regime changes (the default 2-minute dwell would leave a
        # 30 s run inside its initial posture).
        dwell = max(5.0, scenario.tsim_s / 6.0)
        postured = simulate_configuration(
            posture_params=PostureParameters(mean_dwell_s=dwell), **kwargs
        )
        data.rows[routing] = (plain.pdr, postured.pdr)
    data.wall_seconds = time.perf_counter() - start
    return data


def format_posture_sensitivity(data: PostureSensitivityData) -> str:
    lines = [
        f"E2 (preset={data.preset}): daily-activity posture cost per "
        "routing scheme",
        f"{'routing':>8}  {'PDR (static)':>13}  {'PDR (activity)':>15}  {'cost':>7}",
    ]
    for routing, (plain, postured) in data.rows.items():
        lines.append(
            f"{routing.value:>8}  {100 * plain:>12.2f}%  "
            f"{100 * postured:>14.2f}%  {100 * (plain - postured):>6.2f}%"
        )
    return "\n".join(lines)


@dataclass
class DualStaircaseData:
    preset: str
    results: Dict[float, DualExplorationResult] = field(default_factory=dict)
    wall_seconds: float = 0.0


def run_dual_staircase(
    preset: str = "ci",
    seed: int = 0,
    lifetime_bounds_days: Tuple[float, ...] = (30.0, 15.0, 5.0),
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> DualStaircaseData:
    """E3: the reliability-maximizing dual across lifetime budgets."""
    p = get_preset(preset)
    problem = make_problem(0.5, preset, seed=seed, n_jobs=n_jobs,
                           cache_dir=cache_dir)  # pdr_min unused by dual
    oracle = SimulationOracle(problem.scenario)
    explorer = HumanIntranetExplorer(
        problem, oracle=oracle, candidate_cap=p.candidate_cap
    )
    data = DualStaircaseData(preset=preset)
    start = time.perf_counter()
    for bound in lifetime_bounds_days:
        data.results[bound] = explorer.explore_max_reliability(bound)
    data.wall_seconds = time.perf_counter() - start
    oracle.close()
    return data


def format_dual_staircase(data: DualStaircaseData) -> str:
    lines = [
        f"E3 (preset={data.preset}): max-reliability dual "
        "(maximize PDR s.t. NLT >= bound)",
    ]
    for bound in sorted(data.results, reverse=True):
        lines.append("  " + data.results[bound].summary())
    lines.append(
        "Reading: relaxing the lifetime requirement buys reliability — the "
        "same frontier as Figure 3, approached from the other axis."
    )
    return "\n".join(lines)
