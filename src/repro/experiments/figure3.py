"""F3 — Figure 3: PDR vs. NLT of MILP-suggested configurations, with the
optimal configuration highlighted for each PDR_min.

The paper's figure plots every feasible configuration *suggested by the
MILP solver* during the optimization runs (not the whole 12,288-point
grid), with arrows marking the optimum for several PDR_min values.  This
experiment reproduces that construction directly: it runs Algorithm 1 once
per PDR_min in the preset's sweep, sharing one simulation oracle so the
scatter accumulates exactly the candidate evaluations the runs performed.

The paper's qualitative findings asserted by the benchmark:

* feasible configurations span the PDR range and NLT from days to a month;
* low PDR_min (≤ ~60%) → minimum-size star at reduced TX power;
* mid PDR_min → star at 0 dBm (higher TX power buys reliability);
* high PDR_min (≥ ~90%) → routing switches from star to mesh;
* the strictest bound → an extra (fifth) node joins the mesh, at the cost
  of a lifetime collapse to a few days.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.explorer import ExplorationResult, HumanIntranetExplorer
from repro.experiments.scenario import get_preset, make_problem, make_scenario
from repro.library.mac_options import RoutingKind


@dataclass
class Figure3Data:
    """Everything needed to redraw Figure 3."""

    preset: str
    #: scatter: every distinct configuration simulated across all runs.
    scatter: List[EvaluationRecord] = field(default_factory=list)
    #: optimum per PDR_min (None where infeasible).
    optima: Dict[float, Optional[EvaluationRecord]] = field(default_factory=dict)
    results: Dict[float, ExplorationResult] = field(default_factory=dict)
    total_simulations: int = 0
    wall_seconds: float = 0.0
    #: Shared-oracle telemetry (cache hit rate across the sweep, wall-time
    #: percentiles, parallel speedup estimate).
    oracle_stats: Dict[str, float] = field(default_factory=dict)
    oracle_stats_line: str = ""

    def scatter_series(self) -> List[Tuple[float, float, str]]:
        """(NLT days, PDR %, label) triples, the figure's point cloud."""
        return [
            (e.nlt_days, e.pdr_percent, e.config.label()) for e in self.scatter
        ]

    def optimum_routing(self, pdr_min: float) -> Optional[RoutingKind]:
        best = self.optima.get(pdr_min)
        return best.config.routing if best else None

    def render_ascii(self, pdr_min_percent: Optional[float] = None) -> str:
        """The scatter as a terminal plot in the paper's Figure 3 layout."""
        from repro.analysis.ascii_plot import render_figure3

        return render_figure3(
            (
                (e.nlt_days, e.pdr_percent, e.config.routing.value,
                 e.config.tx_dbm)
                for e in self.scatter
            ),
            pdr_min_percent=pdr_min_percent,
        )

    def pareto(self):
        """Non-dominated (NLT, PDR) points among the scatter."""
        from repro.analysis.pareto import pareto_front

        return pareto_front(self.scatter)


def run_figure3(
    preset: str = "ci",
    seed: int = 0,
    pdr_mins: Optional[Tuple[float, ...]] = None,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Figure3Data:
    """Run the Figure 3 experiment under a preset.

    ``n_jobs`` parallelizes the shared oracle's candidate batches;
    ``cache_dir`` persists results, making a rerun of the sweep near-free.
    """
    p = get_preset(preset)
    sweep = pdr_mins if pdr_mins is not None else p.pdr_min_sweep
    scenario = make_scenario(preset, seed=seed, n_jobs=n_jobs,
                             cache_dir=cache_dir)
    oracle = SimulationOracle(scenario)
    data = Figure3Data(preset=preset)
    start = time.perf_counter()

    for pdr_min in sweep:
        problem = make_problem(pdr_min, preset, seed=seed, n_jobs=n_jobs,
                               cache_dir=cache_dir)
        explorer = HumanIntranetExplorer(
            problem, oracle=oracle, candidate_cap=p.candidate_cap
        )
        result = explorer.explore()
        data.results[pdr_min] = result
        data.optima[pdr_min] = result.best

    data.scatter = oracle.all_records
    data.total_simulations = oracle.simulations_run
    data.wall_seconds = time.perf_counter() - start
    data.oracle_stats = oracle.stats()
    data.oracle_stats_line = oracle.format_stats()
    oracle.close()
    return data


def format_figure3(data: Figure3Data) -> str:
    """Text rendering: the scatter (sorted by NLT) and the optima rows the
    paper annotates with arrows."""
    lines = [
        f"Figure 3 (preset={data.preset}): PDR vs NLT of MILP-suggested "
        f"configurations ({len(data.scatter)} points, "
        f"{data.total_simulations} simulations)",
        f"{'NLT (days)':>10}  {'PDR (%)':>8}  configuration",
    ]
    for nlt, pdr, label in sorted(data.scatter_series()):
        lines.append(f"{nlt:>10.1f}  {pdr:>8.1f}  {label}")
    lines.append("")
    lines.append(data.render_ascii(pdr_min_percent=50.0))
    lines.append("")
    lines.append("Optima per PDRmin (the paper's arrows):")
    for pdr_min in sorted(data.optima):
        best = data.optima[pdr_min]
        if best is None:
            lines.append(f"  PDRmin={100 * pdr_min:5.1f}%  -> infeasible")
        else:
            lines.append(
                f"  PDRmin={100 * pdr_min:5.1f}%  -> {best.config.label()}  "
                f"PDR={best.pdr_percent:5.1f}%  NLT={best.nlt_days:5.1f} d"
            )
    lines.append("")
    from repro.analysis.pareto import front_summary

    lines.append(front_summary(data.pareto()))
    if data.oracle_stats_line:
        lines.append(data.oracle_stats_line)
    return "\n".join(lines)
