"""R1 — the paper's "87% reduction in required simulations vs. exhaustive
search" claim.

Algorithm 1's cost is the number of distinct configurations it simulates;
exhaustive search must simulate every constraint-satisfying configuration
(1,320 for the design example's space).  The reduction is measured per
PDR_min and averaged, exactly as the paper reports ("each optimization run
... resulting into an 87% reduction").

Exhaustive search's *count* is known without running it (one simulation
per feasible grid point), so this experiment is cheap: only Algorithm 1's
simulations are actually executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.evaluator import SimulationOracle
from repro.core.explorer import HumanIntranetExplorer
from repro.experiments.scenario import get_preset, make_problem, make_scenario


@dataclass
class ReductionData:
    preset: str
    exhaustive_simulations: int
    #: per PDR_min: simulations Algorithm 1 needed.
    algorithm_simulations: Dict[float, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def reduction_percent(self, pdr_min: float) -> float:
        used = self.algorithm_simulations[pdr_min]
        return 100.0 * (1.0 - used / self.exhaustive_simulations)

    @property
    def mean_reduction_percent(self) -> float:
        if not self.algorithm_simulations:
            raise ValueError("no runs recorded")
        return sum(
            self.reduction_percent(p) for p in self.algorithm_simulations
        ) / len(self.algorithm_simulations)


def run_reduction(
    preset: str = "ci",
    seed: int = 0,
    pdr_mins: Optional[Tuple[float, ...]] = None,
    share_oracle: bool = False,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ReductionData:
    """Measure Algorithm 1's simulation count against the exhaustive count.

    ``share_oracle=False`` (default) gives each PDR_min run a fresh cache,
    charging it the full cost of its own exploration — the fair per-run
    accounting behind the paper's figure.  ``share_oracle=True`` shows the
    additional amortization available when sweeping many bounds at once.
    """
    p = get_preset(preset)
    sweep = pdr_mins if pdr_mins is not None else p.pdr_min_sweep
    start = time.perf_counter()

    exhaustive_count = make_problem(sweep[0], preset, seed=seed).space.feasible_count()
    data = ReductionData(preset=preset, exhaustive_simulations=exhaustive_count)

    shared = (
        SimulationOracle(
            make_scenario(preset, seed=seed, n_jobs=n_jobs,
                          cache_dir=cache_dir)
        )
        if share_oracle
        else None
    )
    for pdr_min in sweep:
        problem = make_problem(pdr_min, preset, seed=seed, n_jobs=n_jobs,
                               cache_dir=cache_dir)
        oracle = shared if shared is not None else SimulationOracle(problem.scenario)
        explorer = HumanIntranetExplorer(
            problem, oracle=oracle, candidate_cap=p.candidate_cap
        )
        before = oracle.simulations_run
        explorer.explore()
        data.algorithm_simulations[pdr_min] = oracle.simulations_run - before
        if shared is None:
            oracle.close()

    if shared is not None:
        shared.close()
    data.wall_seconds = time.perf_counter() - start
    return data


def format_reduction(data: ReductionData) -> str:
    lines = [
        f"R1 (preset={data.preset}): simulations, Algorithm 1 vs exhaustive "
        f"({data.exhaustive_simulations} feasible configurations)",
        f"{'PDRmin':>8}  {'Alg. 1 sims':>12}  {'reduction':>10}",
    ]
    for pdr_min in sorted(data.algorithm_simulations):
        lines.append(
            f"{100 * pdr_min:>7.1f}%  "
            f"{data.algorithm_simulations[pdr_min]:>12d}  "
            f"{data.reduction_percent(pdr_min):>9.1f}%"
        )
    lines.append(
        f"mean reduction: {data.mean_reduction_percent:.1f}%  "
        f"(paper: 87%)"
    )
    return "\n".join(lines)
