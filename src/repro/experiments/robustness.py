"""E4 — robustness: nominal-optimal vs. chance-constrained robust design.

The paper optimizes the Human Intranet for a *healthy* network; its own
motivation (safety-critical traffic over a dynamic body channel) argues
the design should also be judged in degraded conditions.  E4 makes that
concrete with the coordinator-hostile workload of
:func:`repro.faults.model.hub_stress_ensemble`:

1. run nominal Algorithm 1 (healthy accept test) and robust Algorithm 1
   (``quantile_q(PDR over the fault ensemble) ≥ PDR_min``) on the same
   problem and compare the winners;
2. evaluate the nominal winner under the same fault ensemble, exposing
   how much reliability the healthy-only design loses when the hub radio
   goes dark;
3. repeat the robust exploration on routing-restricted spaces (star-only
   vs. flooding-only), isolating the topology's contribution: star loses
   every relayed pair during a hub outage, flooding merely loses the
   pairs that involve the hub itself.

All evaluations share one :class:`repro.faults.resilience.EnsembleOracle`
(one worker pool, one metrics registry, per-fault-scenario persistent
caches), so the whole experiment is deterministic at any ``--jobs`` and
replays from a warm cache with zero new simulations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.explorer import (
    ExplorationResult,
    HumanIntranetExplorer,
    RobustExplorationResult,
)
from repro.experiments.scenario import get_preset, make_problem
from repro.faults.model import FaultScenario, hub_stress_ensemble
from repro.faults.resilience import EnsembleOracle, ResilienceRecord
from repro.library.mac_options import RoutingKind
from repro.obs.runtime import Instrumentation

#: E4 defaults: a 20% hub outage separates the topologies (star loses all
#: relayed traffic while it lasts; flooding only the hub's own pairs)
#: without making every design infeasible, and quantile 0 (the ensemble
#: minimum) is the strictest chance constraint.
DEFAULT_OUTAGE_FRACTION = 0.2
DEFAULT_ENSEMBLE_SIZE = 2
DEFAULT_QUANTILE = 0.0


@dataclass
class RobustnessData:
    """Everything E4 measured, ready for formatting or JSON archival."""

    preset: str
    pdr_min: float
    quantile: float
    ensemble: Tuple[FaultScenario, ...]
    nominal: ExplorationResult
    robust: RobustExplorationResult
    #: The nominal winner re-evaluated under the fault ensemble (None when
    #: the nominal problem is infeasible).
    nominal_resilience: Optional[ResilienceRecord] = None
    #: Robust exploration restricted to one routing kind each.
    per_routing: Dict[RoutingKind, RobustExplorationResult] = field(
        default_factory=dict
    )
    oracle_stats: Optional[dict] = None
    wall_seconds: float = 0.0

    @property
    def divergent(self) -> bool:
        """Did the chance constraint change the optimal design?"""
        return (
            self.nominal.best is not None
            and self.robust.best is not None
            and self.nominal.best.config.key() != self.robust.best.config.key()
        )


def run_robustness_comparison(
    preset: str = "ci",
    seed: int = 0,
    pdr_min: float = 0.85,
    quantile: float = DEFAULT_QUANTILE,
    outage_fraction: float = DEFAULT_OUTAGE_FRACTION,
    ensemble_size: int = DEFAULT_ENSEMBLE_SIZE,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
    obs: Optional[Instrumentation] = None,
) -> RobustnessData:
    """E4: nominal vs. robust design under coordinator-hostile faults."""
    p = get_preset(preset)
    problem = make_problem(
        pdr_min, preset, seed=seed, n_jobs=n_jobs, cache_dir=cache_dir,
        batch_mode=batch_mode,
    )
    scenario = problem.scenario
    ensemble = hub_stress_ensemble(
        scenario.tsim_s,
        coordinator=scenario.coordinator_location,
        outage_fraction=outage_fraction,
        size=ensemble_size,
    )
    oracle = EnsembleOracle(
        scenario,
        ensemble,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
        obs=obs,
    )
    start = time.perf_counter()

    # Nominal Algorithm 1 shares the ensemble's healthy sub-oracle, so its
    # evaluations are reused by every robust pass below.
    nominal = HumanIntranetExplorer(
        problem, oracle=oracle.healthy_oracle, candidate_cap=p.candidate_cap
    ).explore()
    robust = HumanIntranetExplorer(
        problem, candidate_cap=p.candidate_cap, obs=oracle.obs
    ).explore_robust(oracle, quantile=quantile)

    nominal_resilience = None
    if nominal.best is not None:
        nominal_resilience = oracle.evaluate(nominal.best.config)

    per_routing: Dict[RoutingKind, RobustExplorationResult] = {}
    for routing in (RoutingKind.STAR, RoutingKind.MESH):
        restricted = replace(
            problem, space=replace(problem.space, routing_kinds=(routing,))
        )
        per_routing[routing] = HumanIntranetExplorer(
            restricted, candidate_cap=p.candidate_cap, obs=oracle.obs
        ).explore_robust(oracle, quantile=quantile)

    data = RobustnessData(
        preset=preset,
        pdr_min=pdr_min,
        quantile=quantile,
        ensemble=ensemble,
        nominal=nominal,
        robust=robust,
        nominal_resilience=nominal_resilience,
        per_routing=per_routing,
        oracle_stats=oracle.stats(),
        wall_seconds=time.perf_counter() - start,
    )
    oracle.close()
    return data


def resilience_line(record: ResilienceRecord, quantile: float) -> str:
    recovery = record.worst_recovery_s
    recovery_text = f"{recovery:.1f}s" if recovery is not None else "n/a"
    return (
        f"under faults: q-PDR={100 * record.pdr_quantile(quantile):.1f}%  "
        f"min={100 * record.pdr_min_fault:.1f}%  "
        f"mean={100 * record.pdr_mean_fault:.1f}%  "
        f"recovery={recovery_text}  "
        f"NLT loss={100 * record.lifetime_degradation:.1f}%"
    )


def format_robustness(data: RobustnessData) -> str:
    lines = [
        f"E4 (preset={data.preset}): nominal vs. chance-constrained robust "
        f"design, PDRmin={100 * data.pdr_min:.0f}%, q={data.quantile:.2f}",
        "fault ensemble: " + "; ".join(fs.describe() for fs in data.ensemble),
        "nominal : " + data.nominal.summary(),
    ]
    if data.nominal_resilience is not None:
        lines.append(
            "          " + resilience_line(data.nominal_resilience, data.quantile)
        )
    lines.append("robust  : " + data.robust.summary())
    if data.robust.best is not None:
        lines.append(
            "          " + resilience_line(data.robust.best, data.quantile)
        )
    for routing, result in data.per_routing.items():
        lines.append(f"{routing.value:>8}-only robust: " + result.summary())
    lines.append(
        "Divergence: the chance constraint "
        + (
            "changed the optimal design (robust != nominal)."
            if data.divergent
            else "did not change the optimal design here."
        )
    )
    lines.append(
        "Reading: a healthy-network optimum may ride the star topology's "
        "single point of failure; pricing hub outages into the accept test "
        "buys back worst-case reliability with watts (flooding) or with "
        "margin (higher TX / more relays)."
    )
    return "\n".join(lines)
