"""Experiment presets: the paper's protocol and scaled-down CI variants.

The paper's evaluation protocol (Sec. 4) simulates each candidate for
T_sim = 600 s and averages over 3 runs, which yields sub-0.5% estimator
error but takes minutes per configuration in a pure-Python simulator.  The
``ci`` preset shortens the horizon (larger estimator noise, same expected
values) so the full benchmark suite completes in CI time; ``smoke`` is for
unit tests that only need the plumbing exercised.

All presets share the identical scenario *physics* (radio, traffic,
channel, constraints) — only the measurement protocol and candidate-pool
size differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.design_space import DesignSpace, PlacementConstraints
from repro.core.problem import DesignProblem, ScenarioParameters


@dataclass(frozen=True)
class Preset:
    """Measurement-protocol knobs for one preset."""

    name: str
    tsim_s: float
    replicates: int
    #: Cap on MILP optima simulated per iteration.  The paper's CPLEX
    #: solution pool is similarly bounded; ``None`` = exact full
    #: enumeration.
    candidate_cap: Optional[int]
    #: PDR_min values swept by Figure 3-style experiments.
    pdr_min_sweep: Tuple[float, ...]


PRESETS: Dict[str, Preset] = {
    "paper": Preset(
        name="paper",
        tsim_s=600.0,
        replicates=3,
        candidate_cap=16,
        pdr_min_sweep=(0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 0.9997),
    ),
    "ci": Preset(
        name="ci",
        tsim_s=30.0,
        replicates=1,
        candidate_cap=16,
        pdr_min_sweep=(0.50, 0.80, 0.95, 0.99, 1.00),
    ),
    "smoke": Preset(
        name="smoke",
        tsim_s=8.0,
        replicates=1,
        candidate_cap=8,
        pdr_min_sweep=(0.50, 0.95),
    ),
}


def get_preset(preset: str) -> Preset:
    try:
        return PRESETS[preset]
    except KeyError:
        raise KeyError(
            f"unknown preset {preset!r}; available: {sorted(PRESETS)}"
        ) from None


def make_scenario(
    preset: str = "ci",
    seed: int = 0,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
) -> ScenarioParameters:
    """The Sec. 4.1 scenario under the given measurement preset.

    ``n_jobs``, ``cache_dir``, and ``batch_mode`` are execution knobs
    threaded through to the simulation oracle (parallel fan-out,
    persistent result cache, batched-lane kernel dispatch); they do not
    change any simulated result.
    """
    p = get_preset(preset)
    return ScenarioParameters(
        tsim_s=p.tsim_s,
        replicates=p.replicates,
        seed=seed,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
        batch_mode=batch_mode,
    )


def make_space(preset: str = "ci") -> DesignSpace:
    """The design example's 12,288-point space (identical across presets;
    kept as a function so tests can build reduced spaces the same way)."""
    del preset  # physics identical across presets by design
    return DesignSpace()


def make_reduced_space(max_nodes: int = 4) -> DesignSpace:
    """A deliberately small space for exhaustive ground-truth tests."""
    return DesignSpace(
        constraints=PlacementConstraints(max_nodes=max_nodes),
    )


def make_problem(
    pdr_min: float,
    preset: str = "ci",
    seed: int = 0,
    n_jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch_mode: str = "auto",
) -> DesignProblem:
    """Assemble the full mapping problem P for one PDR bound."""
    return DesignProblem(
        pdr_min=pdr_min,
        scenario=make_scenario(
            preset, seed=seed, n_jobs=n_jobs, cache_dir=cache_dir,
            batch_mode=batch_mode,
        ),
        space=make_space(preset),
    )
