"""T1 — Table 1: TI CC2650 radio specifications.

Table 1 is a parameter table, not a measurement; reproducing it means
emitting the same rows from the component library (and checking, in the
tests, that the library values match the paper's numbers exactly).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.library.radios import CC2650, RadioSpec

Row = Dict[str, Union[str, float]]


def table1_rows(radio: RadioSpec = CC2650) -> List[Row]:
    """The table's content as records (one per scalar / TX mode)."""
    rows: List[Row] = [
        {"parameter": "fc", "value": radio.carrier_hz / 1e9, "unit": "GHz"},
        {"parameter": "BR", "value": radio.bit_rate_bps / 1e3, "unit": "kbps"},
        {"parameter": "RxdBm", "value": radio.sensitivity_dbm, "unit": "dBm"},
        {"parameter": "RxmW", "value": radio.rx_power_mw, "unit": "mW"},
    ]
    for mode in radio.tx_modes:
        rows.append(
            {
                "parameter": f"Tx mode {mode.name}",
                "TxdBm": mode.output_dbm,
                "TxmW": mode.power_mw,
                "unit": "dBm / mW",
            }
        )
    return rows


def format_table1(radio: RadioSpec = CC2650) -> str:
    """Render the table as the paper lays it out."""
    lines = [f"Table 1: {radio.name} radio specifications"]
    lines.append(f"  fc      {radio.carrier_hz / 1e9:g} GHz")
    lines.append(f"  BR      {radio.bit_rate_bps / 1e3:g} kbps")
    lines.append(f"  RxdBm   {radio.sensitivity_dbm:g}")
    lines.append(f"  RxmW    {radio.rx_power_mw:g}")
    lines.append("  Tx Mode   TxdBm   TxmW")
    for mode in radio.tx_modes:
        lines.append(
            f"  {mode.name:<8}  {mode.output_dbm:>5.0f}  {mode.power_mw:>6.2f}"
        )
    return "\n".join(lines)
