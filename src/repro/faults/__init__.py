"""Fault injection and robust design-space exploration.

The paper motivates the Human Intranet with safety-critical traffic and
argues for mesh flooding precisely because the dynamic body channel makes
single links fragile — yet the base simulator only ever evaluates a
*healthy* network.  This package adds the robustness layer:

* :mod:`repro.faults.model` — declarative fault scenarios (node death,
  battery-depletion acceleration, transient link blackouts, hub radio
  outage with recovery) and seeded ensemble generators;
* :mod:`repro.faults.injector` — compilation of a
  :class:`~repro.faults.model.FaultScenario` into discrete-event-kernel
  events, injected through hooks in the radio/medium/application layers;
* :mod:`repro.faults.resilience` — ensemble evaluation: one configuration
  across a fault-scenario ensemble (parallelized, persistently cached per
  fault fingerprint) reduced to resilience metrics, feeding the
  chance-constrained accept test of
  :meth:`repro.core.explorer.HumanIntranetExplorer.explore_robust`.

Every fault scenario is fully declarative: all randomness is resolved at
ensemble-construction time from dedicated :class:`repro.des.rng.RngStreams`
substreams, so a campaign is a pure function of ``(seed, ensemble spec)``
and bit-reproducible at any ``--jobs`` count.
"""

from repro.faults.model import (
    FaultKind,
    FaultScenario,
    FaultSpec,
    hub_stress_ensemble,
    sample_fault_ensemble,
    torso_crossing_links,
)
from repro.faults.injector import FaultInjector, FaultState

# The resilience layer sits *above* repro.core (it drives the simulation
# oracle), while the model/injector sit *below* it (repro.core.problem
# references FaultScenario).  Loading resilience lazily keeps this package
# importable from both sides of that boundary without a cycle.
_RESILIENCE_EXPORTS = ("EnsembleOracle", "ResilienceRecord", "pdr_quantile")


def __getattr__(name):
    if name in _RESILIENCE_EXPORTS:
        from repro.faults import resilience

        return getattr(resilience, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FaultKind",
    "FaultScenario",
    "FaultSpec",
    "FaultInjector",
    "FaultState",
    "EnsembleOracle",
    "ResilienceRecord",
    "pdr_quantile",
    "sample_fault_ensemble",
    "hub_stress_ensemble",
    "torso_crossing_links",
]
