"""Compiling declarative fault scenarios into deterministic DES events.

The injector owns no randomness: a :class:`~repro.faults.model.FaultScenario`
fully determines what happens and when, and every intervention is scheduled
at :data:`repro.des.engine.FAULT_PRIORITY` so that a fault taking effect at
time t preempts every protocol event at the same timestamp.  Combined with
the kernel's stable event ordering this makes fault campaigns bit-
reproducible at any worker count.

Two pieces:

* :class:`FaultState` — the small mutable blackboard the live network
  consults.  The :class:`repro.net.radio.Medium` reads ``link_blocked`` on
  its hot path; teardown reads ``power_scale`` to fold battery-drain
  faults into the reported node powers.
* :class:`FaultInjector` — walks the scenario's faults that apply to the
  network's placement and schedules the state flips (node death, radio
  outage begin/end, blackout begin/end) as simulator events.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.des.engine import FAULT_PRIORITY
from repro.faults.model import FaultKind, FaultScenario, FaultSpec
from repro.obs.runtime import get_active


class FaultState:
    """Live fault state shared between the injector and the network.

    Link blackouts are reference-counted so overlapping episodes on the
    same pair compose correctly; battery drains are recorded as
    ``(start, end, factor)`` windows and folded into a per-node power
    multiplier at teardown.
    """

    def __init__(self) -> None:
        #: (a, b) sorted pair -> number of active blackout episodes.
        self._blocked: Dict[Tuple[int, int], int] = {}
        #: location -> [(start_s, end_s, factor), ...] drain windows.
        self._drains: Dict[int, List[Tuple[float, float, float]]] = {}

    # -- link blackouts ----------------------------------------------------------

    def block(self, link: Tuple[int, int]) -> None:
        self._blocked[link] = self._blocked.get(link, 0) + 1

    def unblock(self, link: Tuple[int, int]) -> None:
        count = self._blocked.get(link, 0) - 1
        if count <= 0:
            # Drop the key entirely so `link_blocked` stays a cheap
            # empty-dict check once all episodes have cleared.
            self._blocked.pop(link, None)
        else:
            self._blocked[link] = count

    def link_blocked(self, a: int, b: int) -> bool:
        """Hot-path hook: is the (a, b) channel in a blackout episode?"""
        if not self._blocked:
            return False
        key = (a, b) if a < b else (b, a)
        return self._blocked.get(key, 0) > 0

    # -- battery drain -----------------------------------------------------------

    def note_drain(self, location: int, start_s: float, end_s: float, factor: float) -> None:
        self._drains.setdefault(location, []).append((start_s, end_s, factor))

    def power_scale(self, location: int, horizon_s: float) -> float:
        """Effective average-power multiplier for ``location``.

        A battery depleting ``factor`` times faster over a window of
        length w is, for lifetime purposes, a node drawing ``factor``
        times its power for w out of ``horizon_s`` seconds:
        ``scale = 1 + Σ (factor−1) · overlap/horizon``.  This is an
        energy-equivalent approximation — the drain does not perturb the
        simulated traffic, it only degrades the lifetime report.
        """
        windows = self._drains.get(location)
        if not windows:
            return 1.0
        scale = 1.0
        for start, end, factor in windows:
            overlap = max(0.0, min(end, horizon_s) - min(start, horizon_s))
            scale += (factor - 1.0) * (overlap / horizon_s)
        return scale

    @property
    def any_faults_recorded(self) -> bool:
        return bool(self._blocked) or bool(self._drains)


class FaultInjector:
    """Schedules one scenario's applicable faults onto a network's simulator.

    Construct before the :class:`~repro.net.radio.Medium` needs the state
    object, call :meth:`install` once the nodes exist (handlers resolve
    nodes at fire time, but installing late keeps the invariant obvious).
    """

    def __init__(self, network, scenario: FaultScenario) -> None:
        self.network = network
        self.scenario = scenario
        self.state = FaultState()
        self.installed = 0

    def install(self) -> FaultState:
        """Compile the scenario into simulator events; returns the state.

        Blackouts sharing a correlation group are compiled as *one lane*:
        a single begin event blocks every member link and a single end
        event clears them, so the correlated set flips atomically at one
        timestamp instead of as N independent event pairs.  (Member specs
        must agree on their window — one physical shadowing episode has
        one timeline.)
        """
        sim = self.network.sim
        groups: Dict[str, List[FaultSpec]] = {}
        for spec in self.scenario.applicable(self.network.placement):
            if spec.kind is FaultKind.LINK_BLACKOUT and spec.group is not None:
                groups.setdefault(spec.group, []).append(spec)
                continue
            if spec.kind is FaultKind.NODE_DEATH:
                sim.schedule_at(
                    spec.start_s, self._node_death, spec, priority=FAULT_PRIORITY
                )
            elif spec.kind is FaultKind.HUB_OUTAGE:
                sim.schedule_at(
                    spec.start_s, self._outage_begin, spec, priority=FAULT_PRIORITY
                )
                sim.schedule_at(
                    spec.end_s, self._outage_end, spec, priority=FAULT_PRIORITY
                )
            elif spec.kind is FaultKind.LINK_BLACKOUT:
                sim.schedule_at(
                    spec.start_s, self._blackout_begin, spec, priority=FAULT_PRIORITY
                )
                sim.schedule_at(
                    spec.end_s, self._blackout_end, spec, priority=FAULT_PRIORITY
                )
            elif spec.kind is FaultKind.BATTERY_DRAIN:
                # No mid-run behaviour: the drain is an energy bookkeeping
                # effect folded into node power at teardown.
                end = spec.end_s if math.isfinite(spec.end_s) else math.inf
                self.state.note_drain(
                    spec.location, spec.start_s, end, spec.factor
                )
                self._note("battery_drain", spec, at=spec.start_s)
            self.installed += 1
        for name, members in sorted(groups.items()):
            windows = {(m.start_s, m.duration_s) for m in members}
            if len(windows) != 1:
                raise ValueError(
                    f"correlated blackout group {name!r} mixes windows "
                    f"{sorted(windows)}; one group is one shadowing "
                    "episode and must share start/duration"
                )
            lead = members[0]
            sim.schedule_at(
                lead.start_s,
                self._group_blackout_begin,
                name,
                members,
                priority=FAULT_PRIORITY,
            )
            sim.schedule_at(
                lead.end_s,
                self._group_blackout_end,
                name,
                members,
                priority=FAULT_PRIORITY,
            )
            self.installed += len(members)
        return self.state

    # -- event handlers (run inside the simulation) ------------------------------

    def _node_death(self, spec: FaultSpec) -> None:
        self.network.nodes[spec.location].fail(permanent=True)
        self._note("node_death", spec)

    def _outage_begin(self, spec: FaultSpec) -> None:
        self.network.nodes[spec.location].fail(permanent=False)
        self._note("outage_begin", spec)

    def _outage_end(self, spec: FaultSpec) -> None:
        self.network.nodes[spec.location].recover()
        self._note("outage_end", spec)

    def _blackout_begin(self, spec: FaultSpec) -> None:
        self.state.block(spec.link)
        self._note("blackout_begin", spec)

    def _blackout_end(self, spec: FaultSpec) -> None:
        self.state.unblock(spec.link)
        self._note("blackout_end", spec)

    def _group_blackout_begin(
        self, name: str, members: List[FaultSpec]
    ) -> None:
        for spec in members:
            self.state.block(spec.link)
        self._note_group("group_blackout_begin", name, members)

    def _group_blackout_end(
        self, name: str, members: List[FaultSpec]
    ) -> None:
        for spec in members:
            self.state.unblock(spec.link)
        self._note_group("group_blackout_end", name, members)

    def _note_group(
        self, action: str, name: str, members: List[FaultSpec]
    ) -> None:
        obs = get_active()
        obs.counter("faults.injected").inc(len(members))
        if obs.tracing:
            obs.event(
                "faults.inject",
                scenario=self.scenario.name,
                action=action,
                group=name,
                links=[list(m.link) for m in members],
                sim_t=round(self.network.sim.now, 9),
            )

    def _note(self, action: str, spec: FaultSpec, at: float = None) -> None:
        obs = get_active()
        obs.counter("faults.injected").inc()
        if obs.tracing:
            # `sim_t`, not `t`: the tracer stamps every event with a wall
            # clock `t`, and the simulation timestamp must not clobber it.
            obs.event(
                "faults.inject",
                scenario=self.scenario.name,
                action=action,
                fault=spec.describe(),
                sim_t=round(self.network.sim.now if at is None else at, 9),
            )
