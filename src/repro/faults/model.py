"""Declarative fault scenarios for the Human Intranet simulator.

A :class:`FaultScenario` is pure data: a named tuple of :class:`FaultSpec`
entries, each describing one deviation from healthy operation on the
scenario's absolute simulation timeline.  Scenarios reference *body
locations*, not nodes of a particular placement — a fault targeting a
location that a candidate configuration does not occupy is silently
inapplicable, so the same scenario is meaningful across the whole design
space and resilience numbers stay comparable between configurations.

Four fault kinds (the failure modes D'Andreagiovanni et al.'s robust WBAN
design work optimizes against, mapped onto our DES):

* ``NODE_DEATH`` — the node at ``location`` is permanently lost at
  ``start_s`` (crushed sensor, detached electrode).  Its radio goes dark
  and its application stops producing payloads.
* ``HUB_OUTAGE`` — the radio at ``location`` (typically the star
  coordinator) is down for ``duration_s`` seconds and then recovers —
  the transient outage whose aftermath defines *recovery time*.
* ``LINK_BLACKOUT`` — the body channel between the two ``link``
  locations is in a deep-shadowing episode for ``duration_s`` seconds:
  packets between the pair fall below sensitivity in both directions.
* ``BATTERY_DRAIN`` — the battery at ``location`` depletes ``factor``
  times faster from ``start_s`` on (cold, aging, defect); it reduces the
  node's effective lifetime without changing traffic.

All randomness used to *generate* scenarios is drawn from dedicated
``faults/*`` substreams of :class:`repro.des.rng.RngStreams` at ensemble
construction time; injection itself is deterministic event scheduling.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.des.rng import RngStreams


class FaultKind(enum.Enum):
    NODE_DEATH = "node_death"
    HUB_OUTAGE = "hub_outage"
    LINK_BLACKOUT = "link_blackout"
    BATTERY_DRAIN = "battery_drain"


#: Kinds that end and leave the network to recover.
RECOVERABLE_KINDS = frozenset({FaultKind.HUB_OUTAGE, FaultKind.LINK_BLACKOUT})


@dataclass(frozen=True)
class FaultSpec:
    """One fault on the simulation timeline (see the module docstring)."""

    kind: FaultKind
    start_s: float
    #: Episode length; ``inf`` means "until the end of the run".
    duration_s: float = math.inf
    #: Target body location (all kinds except ``LINK_BLACKOUT``).
    location: Optional[int] = None
    #: Target location pair (``LINK_BLACKOUT`` only); stored sorted.
    link: Optional[Tuple[int, int]] = None
    #: Depletion acceleration (``BATTERY_DRAIN`` only, > 1).
    factor: float = 1.0
    #: Correlation-group label (``LINK_BLACKOUT`` only).  Blackouts that
    #: share a group model one physical shadowing event hitting a
    #: spatially correlated link set (e.g. every torso-crossing path when
    #: the wearer turns); the injector compiles the whole group into one
    #: synchronized begin/end lane, and all members must share their
    #: ``start_s``/``duration_s`` window.
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("fault start time cannot be negative")
        if self.duration_s <= 0:
            raise ValueError("fault duration must be positive")
        if self.kind is FaultKind.LINK_BLACKOUT:
            if self.link is None:
                raise ValueError("LINK_BLACKOUT needs a `link` pair")
            a, b = self.link
            if a == b:
                raise ValueError("a link connects two distinct locations")
            object.__setattr__(self, "link", tuple(sorted((a, b))))
            if not math.isfinite(self.duration_s):
                raise ValueError("LINK_BLACKOUT episodes must be finite")
        else:
            if self.location is None:
                raise ValueError(f"{self.kind.value} needs a `location`")
            if self.link is not None:
                raise ValueError(f"{self.kind.value} does not take a `link`")
            if self.group is not None:
                raise ValueError(
                    f"{self.kind.value} does not take a `group` (correlated "
                    "groups are a LINK_BLACKOUT concept)"
                )
        if self.kind is FaultKind.HUB_OUTAGE and not math.isfinite(
            self.duration_s
        ):
            raise ValueError(
                "HUB_OUTAGE must recover; use NODE_DEATH for permanent loss"
            )
        if self.kind is FaultKind.BATTERY_DRAIN and self.factor <= 1.0:
            raise ValueError("BATTERY_DRAIN factor must exceed 1")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def recoverable(self) -> bool:
        return self.kind in RECOVERABLE_KINDS and math.isfinite(self.end_s)

    def applies_to(self, placement: Sequence[int]) -> bool:
        """Whether this fault touches any node of ``placement``."""
        occupied = set(placement)
        if self.link is not None:
            return self.link[0] in occupied and self.link[1] in occupied
        return self.location in occupied

    def describe(self) -> str:
        target = (
            f"link {self.link[0]}-{self.link[1]}"
            if self.link is not None
            else f"loc {self.location}"
        )
        window = (
            f"t={self.start_s:g}s.."
            if not math.isfinite(self.duration_s)
            else f"t={self.start_s:g}s+{self.duration_s:g}s"
        )
        extra = f" x{self.factor:g}" if self.kind is FaultKind.BATTERY_DRAIN else ""
        tag = f" @{self.group}" if self.group is not None else ""
        return f"{self.kind.value}({target}, {window}{extra}{tag})"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "duration_s": self.duration_s if math.isfinite(self.duration_s) else None,
            "location": self.location,
            "link": list(self.link) if self.link is not None else None,
            "factor": self.factor,
            "group": self.group,
        }

    @staticmethod
    def from_dict(payload: dict) -> "FaultSpec":
        duration = payload.get("duration_s")
        link = payload.get("link")
        return FaultSpec(
            kind=FaultKind(payload["kind"]),
            start_s=payload["start_s"],
            duration_s=math.inf if duration is None else duration,
            location=payload.get("location"),
            link=tuple(link) if link is not None else None,
            factor=payload.get("factor", 1.0),
            group=payload.get("group"),
        )


@dataclass(frozen=True)
class FaultScenario:
    """A named, ordered collection of faults — one campaign member.

    The empty scenario (no faults) is the healthy network; it is valid and
    simulates identically to a run with no fault machinery attached.
    """

    name: str
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def applicable(self, placement: Sequence[int]) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.applies_to(placement))

    def clear_time_s(self, placement: Sequence[int]) -> Optional[float]:
        """When the last applicable *recoverable* fault clears — the
        reference point of the recovery-time metric.  ``None`` when the
        scenario has no recoverable fault on this placement."""
        ends = [
            f.end_s for f in self.applicable(placement) if f.recoverable
        ]
        return max(ends) if ends else None

    def describe(self) -> str:
        if not self.faults:
            return f"{self.name}: healthy"
        return f"{self.name}: " + ", ".join(f.describe() for f in self.faults)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "faults": [f.to_dict() for f in self.faults],
        }

    @staticmethod
    def from_dict(payload: dict) -> "FaultScenario":
        return FaultScenario(
            name=payload["name"],
            faults=tuple(
                FaultSpec.from_dict(f) for f in payload.get("faults", ())
            ),
        )


# -- ensemble generators ---------------------------------------------------------


def torso_crossing_links(
    locations: Sequence[int],
) -> Tuple[Tuple[int, int], ...]:
    """Every location pair whose line of sight the torso occludes.

    These links share the dominant shadowing mechanism (the trunk itself),
    so one posture change degrades them *together* — the physical basis of
    the correlated blackout group.
    """
    from repro.channel.body import STANDARD_BODY

    locations = sorted(set(locations))
    return tuple(
        (a, b)
        for i, a in enumerate(locations)
        for b in locations[i + 1 :]
        if STANDARD_BODY.is_occluded(a, b)
    )


def sample_fault_ensemble(
    size: int,
    seed: int,
    horizon_s: float,
    locations: Sequence[int] = tuple(range(10)),
    coordinator: int = 0,
    name: str = "sampled",
    correlated_links: bool = False,
) -> Tuple[FaultScenario, ...]:
    """``size`` single- and double-fault scenarios with seeded randomness.

    Scenario ``k`` draws all its random choices from the ``faults/*``
    streams of ``RngStreams(seed, replicate=k)`` — disjoint from every
    simulation stream and from every other scenario, so the ensemble is a
    pure function of ``(seed, size, horizon_s, locations, coordinator)``.

    Each scenario contains one link blackout in the first half of the run
    plus, round-robin by index, one of: a hub outage, a non-coordinator
    node death, or a battery-drain acceleration.

    With ``correlated_links=True`` the independent single-link blackout is
    replaced by one *correlated group*: every torso-crossing link
    (:func:`torso_crossing_links`) blacks out simultaneously for one
    shared window, modeling a deep whole-trunk shadowing episode.  The
    group window is drawn from dedicated ``faults/group_*`` streams, so
    enabling correlation never perturbs the draws of the default mode.
    """
    if size < 1:
        raise ValueError("ensemble size must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    locations = sorted(set(locations))
    if len(locations) < 2:
        raise ValueError("need at least two locations to draw faults over")
    correlated_pairs = (
        torso_crossing_links(locations) if correlated_links else ()
    )
    if correlated_links and not correlated_pairs:
        raise ValueError(
            "no torso-crossing links among the given locations; "
            "correlated_links has nothing to correlate"
        )
    scenarios: List[FaultScenario] = []
    for k in range(size):
        rng = RngStreams(seed=seed, replicate=k)
        faults: List[FaultSpec] = []

        if correlated_links:
            # One shadowing event, many links: a synchronized blackout of
            # every torso-crossing pair, one shared window per scenario.
            start = rng.uniform("faults/group_start", 0.05, 0.45) * horizon_s
            duration = rng.uniform("faults/group_dur", 0.10, 0.25) * horizon_s
            for pair in correlated_pairs:
                faults.append(
                    FaultSpec(
                        kind=FaultKind.LINK_BLACKOUT,
                        start_s=start,
                        duration_s=duration,
                        link=pair,
                        group=f"torso-{k}",
                    )
                )
        else:
            # A deep-shadowing episode on a random pair, first half of
            # the run.
            idx_a = rng.integers("faults/link_a", 0, len(locations))
            idx_b = rng.integers("faults/link_b", 0, len(locations) - 1)
            if idx_b >= idx_a:
                idx_b += 1
            start = rng.uniform("faults/link_start", 0.05, 0.45) * horizon_s
            duration = rng.uniform("faults/link_dur", 0.10, 0.25) * horizon_s
            faults.append(
                FaultSpec(
                    kind=FaultKind.LINK_BLACKOUT,
                    start_s=start,
                    duration_s=duration,
                    link=(locations[idx_a], locations[idx_b]),
                )
            )

        mode = k % 3
        if mode == 0:
            start = rng.uniform("faults/hub_start", 0.30, 0.50) * horizon_s
            duration = rng.uniform("faults/hub_dur", 0.10, 0.25) * horizon_s
            faults.append(
                FaultSpec(
                    kind=FaultKind.HUB_OUTAGE,
                    start_s=start,
                    duration_s=duration,
                    location=coordinator,
                )
            )
        elif mode == 1:
            others = [loc for loc in locations if loc != coordinator]
            victim = others[rng.integers("faults/death_loc", 0, len(others))]
            start = rng.uniform("faults/death_start", 0.50, 0.90) * horizon_s
            faults.append(
                FaultSpec(
                    kind=FaultKind.NODE_DEATH, start_s=start, location=victim
                )
            )
        else:
            victim = locations[rng.integers("faults/drain_loc", 0, len(locations))]
            factor = rng.uniform("faults/drain_factor", 1.5, 4.0)
            start = rng.uniform("faults/drain_start", 0.0, 0.50) * horizon_s
            faults.append(
                FaultSpec(
                    kind=FaultKind.BATTERY_DRAIN,
                    start_s=start,
                    location=victim,
                    factor=factor,
                )
            )
        scenarios.append(FaultScenario(name=f"{name}-{k}", faults=tuple(faults)))
    return tuple(scenarios)


def hub_stress_ensemble(
    horizon_s: float,
    coordinator: int = 0,
    outage_fraction: float = 0.35,
    size: int = 3,
) -> Tuple[FaultScenario, ...]:
    """A deterministic coordinator-hostile ensemble (no sampling).

    Every member takes the hub radio down for ``outage_fraction`` of the
    horizon, each at a different phase of the run.  Star topologies lose
    all relay traffic during the outage while flooding merely loses one
    relay, so this is the canonical workload under which the nominal- and
    robust-optimal designs diverge (experiment E4).
    """
    if not 0.0 < outage_fraction < 1.0:
        raise ValueError("outage fraction must be in (0, 1)")
    if size < 1:
        raise ValueError("ensemble size must be positive")
    duration = outage_fraction * horizon_s
    scenarios = []
    for k in range(size):
        # Phases spread over the feasible window, always clearing before
        # the horizon so recovery is observable.
        latest_start = horizon_s - duration
        start = latest_start * (k + 1) / (size + 1)
        scenarios.append(
            FaultScenario(
                name=f"hub-stress-{k}",
                faults=(
                    FaultSpec(
                        kind=FaultKind.HUB_OUTAGE,
                        start_s=start,
                        duration_s=duration,
                        location=coordinator,
                    ),
                ),
            )
        )
    return tuple(scenarios)
