"""Ensemble resilience evaluation: one configuration, many fault worlds.

:class:`EnsembleOracle` evaluates a candidate configuration under the
healthy scenario *and* under every member of a fault-scenario ensemble,
reducing the results to a :class:`ResilienceRecord`:

* **PDR under fault** — min / mean / lower-quantile of the network PDR
  across the ensemble.  The quantile feeds the chance-constrained accept
  test of :meth:`repro.core.explorer.HumanIntranetExplorer.explore_robust`
  (``quantile_q(PDR) ≥ PDR_min`` ⇒ at least a (1−q) fraction of fault
  worlds meets the reliability bound).
* **Recovery time** — per recoverable scenario, how long after the last
  applicable fault clears the time-resolved PDR climbs back to within a
  tolerance of the healthy PDR.
* **Lifetime degradation** — fractional network-lifetime loss of the
  worst fault world relative to healthy operation.

Execution reuses the whole oracle stack: one
:class:`repro.core.evaluator.SimulationOracle` per (scenario, fault
scenario) pair, all sharing a single :class:`repro.core.parallel.WorkerPool`
and one metrics registry.  Misses across the ensemble are fanned out over
the pool in a single ordered batch, and every sub-oracle keeps its own
persistent cache file (the fault scenario is part of the scenario
fingerprint), so a warm cache replays a whole campaign with zero new
simulations — bit-identically at any ``--jobs`` count.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.batch import batch_unsupported_reason, evaluate_batch
from repro.core.design_space import Configuration
from repro.core.evaluator import EvaluationRecord, SimulationOracle
from repro.core.parallel import WorkerPool, evaluate_configuration_task
from repro.core.problem import ScenarioParameters
from repro.faults.model import FaultScenario
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import Instrumentation, get_active

#: How close (in absolute PDR) the time-resolved delivery ratio must get
#: to the healthy PDR to count as "recovered".
RECOVERY_TOLERANCE = 0.05

#: Default chance-constraint quantile: the accept test holds in at least
#: 75% of fault worlds.
DEFAULT_QUANTILE = 0.25


def pdr_quantile(values: Sequence[float], q: float) -> float:
    """Lower nearest-rank quantile (deterministic, no interpolation).

    ``q = 0`` is the minimum, ``q = 1`` the maximum; the result is always
    one of ``values``, so the chance constraint is evaluated against an
    actually observed fault world rather than an interpolated fiction.
    """
    if not values:
        raise ValueError("quantile of an empty ensemble")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


@dataclass(frozen=True)
class ResilienceRecord:
    """One configuration's healthy + under-fault evaluation results."""

    config: Configuration
    healthy: EvaluationRecord
    #: ``((fault_scenario, record), ...)`` in ensemble order.
    faulted: Tuple[Tuple[FaultScenario, EvaluationRecord], ...]
    recovery_tolerance: float = RECOVERY_TOLERANCE

    @property
    def fault_pdrs(self) -> Tuple[float, ...]:
        return tuple(record.pdr for _scenario, record in self.faulted)

    @property
    def pdr_min_fault(self) -> float:
        return min(self.fault_pdrs)

    @property
    def pdr_mean_fault(self) -> float:
        pdrs = self.fault_pdrs
        return sum(pdrs) / len(pdrs)

    def pdr_quantile(self, q: float) -> float:
        """Lower ``q``-quantile of PDR over the fault ensemble."""
        return pdr_quantile(self.fault_pdrs, q)

    # -- recovery ---------------------------------------------------------------

    def recovery_times_s(self) -> Dict[str, Optional[float]]:
        """Per-scenario recovery time after the last recoverable fault
        clears; ``None`` for scenarios with no recoverable fault on this
        placement or whose PDR never returns within tolerance."""
        out: Dict[str, Optional[float]] = {}
        target = self.healthy.pdr - self.recovery_tolerance
        for scenario, record in self.faulted:
            clear = scenario.clear_time_s(self.config.placement)
            if clear is None:
                out[scenario.name] = None
                continue
            recovered = None
            for t_end, ratio in record.outcome.windowed_pdr:
                if t_end <= clear:
                    continue
                if ratio is not None and ratio >= target:
                    recovered = t_end - clear
                    break
            out[scenario.name] = recovered
        return out

    @property
    def worst_recovery_s(self) -> Optional[float]:
        """Slowest measured recovery across the ensemble (``None`` when
        no scenario has a measurable recovery)."""
        measured = [t for t in self.recovery_times_s().values() if t is not None]
        return max(measured) if measured else None

    # -- lifetime ---------------------------------------------------------------

    @property
    def lifetime_degradation(self) -> float:
        """Fractional NLT loss of the worst fault world vs. healthy
        (0 = no loss, 0.5 = half the lifetime gone)."""
        if self.healthy.nlt_days <= 0:
            return 0.0
        worst = min(record.nlt_days for _s, record in self.faulted)
        return max(0.0, 1.0 - worst / self.healthy.nlt_days)

    def to_dict(self) -> dict:
        return {
            "config": self.config.label(),
            "healthy_pdr": self.healthy.pdr,
            "healthy_power_mw": self.healthy.power_mw,
            "healthy_nlt_days": self.healthy.nlt_days,
            "fault_pdrs": {
                scenario.name: record.pdr for scenario, record in self.faulted
            },
            "pdr_min_fault": self.pdr_min_fault,
            "pdr_mean_fault": self.pdr_mean_fault,
            "recovery_times_s": self.recovery_times_s(),
            "worst_recovery_s": self.worst_recovery_s,
            "lifetime_degradation": self.lifetime_degradation,
        }


class EnsembleOracle:
    """Resilience evaluator bound to one scenario and one fault ensemble.

    Parameters mirror :class:`~repro.core.evaluator.SimulationOracle`; the
    ensemble is a sequence of :class:`FaultScenario`.  The base scenario's
    own ``fault_scenario`` field must be ``None`` — the ensemble defines
    the fault worlds.
    """

    def __init__(
        self,
        scenario: ScenarioParameters,
        ensemble: Sequence[FaultScenario],
        n_jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        obs: Optional[Instrumentation] = None,
        recovery_tolerance: float = RECOVERY_TOLERANCE,
    ) -> None:
        if scenario.fault_scenario is not None:
            raise ValueError(
                "the base scenario must be healthy; the ensemble supplies "
                "the fault scenarios"
            )
        ensemble = tuple(ensemble)
        if not ensemble:
            raise ValueError("the fault ensemble cannot be empty")
        names = [fs.name for fs in ensemble]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names in ensemble: {names}")
        self.scenario = scenario
        self.ensemble = ensemble
        self.recovery_tolerance = recovery_tolerance
        requested = n_jobs if n_jobs is not None else getattr(scenario, "n_jobs", 1)
        self._pool = WorkerPool(requested)
        self.n_jobs = self._pool.n_jobs
        # One shared registry: every sub-oracle feeds the same `oracle.*`
        # instruments, so stats() aggregates for free.
        self.obs = obs if obs is not None else Instrumentation(
            MetricsRegistry(), get_active().tracer
        )
        kwargs = dict(cache_dir=cache_dir, obs=self.obs, pool=self._pool)
        self._oracles: List[SimulationOracle] = [
            SimulationOracle(scenario, **kwargs)
        ]
        for fault_scenario in ensemble:
            self._oracles.append(
                SimulationOracle(
                    replace(scenario, fault_scenario=fault_scenario), **kwargs
                )
            )
        self._c_elapsed = self.obs.counter("oracle.elapsed_seconds")
        self._c_evals = self.obs.counter("faults.ensemble_evaluations")

    @property
    def healthy_oracle(self) -> SimulationOracle:
        return self._oracles[0]

    # -- journal replay (checkpoint/resume, DESIGN.md §9) ------------------------

    def preload_journal(self, payloads: Sequence[dict]) -> None:
        """Stage journaled robust candidates into the sub-oracles.

        Each payload is one ``robust_candidate`` journal entry: a healthy
        record plus per-fault-world records keyed by scenario name.  Each
        record is routed to the sub-oracle owning that fault world, where
        its first request is adopted as-if-simulated (see
        :meth:`SimulationOracle.preload_journal`), so a resumed robust
        run replays the journaled prefix with zero re-simulation.
        Payloads naming fault worlds outside this ensemble are rejected —
        that is a journal/arguments mismatch, not recoverable drift.
        """
        from repro.core.result_cache import record_from_dict

        by_name = {
            fs.name: self._oracles[oi + 1]
            for oi, fs in enumerate(self.ensemble)
        }
        healthy_records = []
        world_records: Dict[str, List[EvaluationRecord]] = {
            name: [] for name in by_name
        }
        for payload in payloads:
            healthy_records.append(record_from_dict(payload["healthy"]))
            for name, record_dict in payload["faulted"]:
                if name not in world_records:
                    raise ValueError(
                        f"journaled fault world {name!r} is not in this "
                        f"ensemble ({sorted(by_name)}); the journal "
                        "belongs to a different campaign"
                    )
                world_records[name].append(record_from_dict(record_dict))
        self.healthy_oracle.preload_journal(healthy_records)
        for name, oracle in by_name.items():
            oracle.preload_journal(world_records[name])

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, config: Configuration) -> ResilienceRecord:
        return self.evaluate_many([config])[0]

    def evaluate_many(
        self, configs: Sequence[Configuration]
    ) -> List[ResilienceRecord]:
        """Evaluate each configuration across the whole ensemble.

        All cache misses — across configurations *and* fault worlds — are
        dispatched to the shared pool as one ordered batch, then handed
        back to the owning sub-oracle for storage.  Because every task's
        outcome is a pure function of its (scenario, configuration) pair,
        the result is bit-identical to the serial loop at any worker
        count.
        """
        configs = list(configs)
        with self.obs.span(
            "faults.ensemble_evaluate",
            n=len(configs),
            scenarios=len(self.ensemble),
        ):
            grid: Dict[Tuple[int, int], EvaluationRecord] = {}
            pending: List[Tuple[int, int]] = []
            for ci, config in enumerate(configs):
                for oi, oracle in enumerate(self._oracles):
                    record = oracle.lookup(config)
                    if record is None:
                        pending.append((ci, oi))
                    else:
                        grid[(ci, oi)] = record
            if pending and getattr(self.scenario, "batch_mode", "auto") != "off":
                pending = self._dispatch_batched(configs, pending, grid)
            if pending:
                start = time.perf_counter()
                results = self._pool.map_ordered(
                    evaluate_configuration_task,
                    [
                        (self._oracles[oi].scenario, configs[ci])
                        for ci, oi in pending
                    ],
                )
                self._c_elapsed.inc(time.perf_counter() - start)
                self.obs.counter("oracle.scalar_evaluations").inc(len(pending))
                for (ci, oi), (outcome, wall) in zip(pending, results):
                    grid[(ci, oi)] = self._oracles[oi].record_outcome(
                        configs[ci], outcome, wall
                    )

            records = []
            for ci, config in enumerate(configs):
                record = ResilienceRecord(
                    config=config,
                    healthy=grid[(ci, 0)],
                    faulted=tuple(
                        (fault_scenario, grid[(ci, oi + 1)])
                        for oi, fault_scenario in enumerate(self.ensemble)
                    ),
                    recovery_tolerance=self.recovery_tolerance,
                )
                records.append(record)
                self._c_evals.inc()
                if self.obs.tracing:
                    self.obs.event(
                        "faults.resilience",
                        config=config.label(),
                        healthy_pdr=record.healthy.pdr,
                        pdr_min_fault=record.pdr_min_fault,
                        pdr_mean_fault=record.pdr_mean_fault,
                        worst_recovery_s=record.worst_recovery_s,
                        lifetime_degradation=record.lifetime_degradation,
                    )
            return records

    # -- batched dispatch (repro.core.batch, DESIGN.md §10) ----------------------

    def _dispatch_batched(
        self,
        configs: List[Configuration],
        pending: List[Tuple[int, int]],
        grid: Dict[Tuple[int, int], EvaluationRecord],
    ) -> List[Tuple[int, int]]:
        """Evaluate batchable ``(config, fault world)`` cells through the
        batched kernel; returns the cells left for the pool.

        Configurations sharing a topology *and* missing the same world
        set merge into one kernel call — their lanes differ only in TX
        power and fault masks, exactly the sharing the kernel exploits.
        Each produced outcome is handed to the sub-oracle owning its
        world via ``record_outcome``, so journal order, persistence, and
        counters match the pool path cell for cell.
        """
        mode = getattr(self.scenario, "batch_mode", "auto")
        min_lanes = 1 if mode == "on" else 2
        by_ci: Dict[int, List[int]] = {}
        for ci, oi in pending:
            by_ci.setdefault(ci, []).append(oi)
        merged: Dict[Tuple, List[int]] = {}
        leftovers: List[Tuple[int, int]] = []
        for ci, ois in by_ci.items():
            config = configs[ci]
            if batch_unsupported_reason(self.scenario, config) is not None:
                leftovers.extend((ci, oi) for oi in ois)
                continue
            key = (
                config.placement,
                config.mac,
                config.routing,
                tuple(sorted(ois)),
            )
            merged.setdefault(key, []).append(ci)
        for (_placement, _mac, _routing, ois), cis in merged.items():
            lanes = len(cis) * len(ois)
            if lanes < min_lanes:
                leftovers.extend((ci, oi) for ci in cis for oi in ois)
                continue
            worlds = [
                None if oi == 0 else self.ensemble[oi - 1] for oi in ois
            ]
            start = time.perf_counter()
            outcomes = evaluate_batch(
                self.scenario, [configs[ci] for ci in cis], worlds
            )
            wall = time.perf_counter() - start
            self._c_elapsed.inc(wall)
            self.obs.counter("oracle.batch_calls").inc()
            self.obs.counter("oracle.batched_evaluations").inc(lanes)
            self.obs.counter("oracle.batched_lanes").inc(
                lanes * self.scenario.replicates
            )
            share = wall / lanes
            for bi, ci in enumerate(cis):
                for wi, oi in enumerate(ois):
                    grid[(ci, oi)] = self._oracles[oi].record_outcome(
                        configs[ci], outcomes[(bi, wi)], share
                    )
            if self.obs.tracing:
                self.obs.event(
                    "oracle.batch",
                    configs=len(cis),
                    worlds=len(ois),
                    lanes=lanes,
                    wall_s=round(wall, 6),
                )
        return leftovers

    # -- telemetry / lifecycle ---------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Aggregate telemetry over all sub-oracles.  They share one
        metrics registry, so any sub-oracle's ``stats()`` already reports
        ensemble-wide totals; this adds the ensemble shape."""
        out = self.healthy_oracle.stats()
        out["ensemble_size"] = len(self.ensemble)
        out["ensemble_evaluations"] = int(self._c_evals.value)
        out["n_jobs"] = self.n_jobs
        return out

    def close(self) -> None:
        """Shut down the shared pool (idempotent)."""
        self._pool.shutdown()

    def __enter__(self) -> "EnsembleOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
