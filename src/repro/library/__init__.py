"""Component library: radios, batteries, body locations, protocol options.

The paper follows platform-based design: system requirements are mapped
onto an *aggregation of components from a library* spanning all network
layers.  This package is that library.  Its headline entry is the Texas
Instruments CC2650 radio whose Table 1 parameters drive the design example;
additional radios and batteries are included so that the exploration
framework can be exercised beyond the paper's single-radio scenario.
"""

from repro.library.radios import (
    CC2650,
    RadioSpec,
    TxMode,
    RADIO_CATALOG,
    radio_by_name,
)
from repro.library.batteries import BatterySpec, CR2032, BATTERY_CATALOG, battery_by_name
from repro.library.mac_options import MacKind, RoutingKind, MacOptions, RoutingOptions

__all__ = [
    "RadioSpec",
    "TxMode",
    "CC2650",
    "RADIO_CATALOG",
    "radio_by_name",
    "BatterySpec",
    "CR2032",
    "BATTERY_CATALOG",
    "battery_by_name",
    "MacKind",
    "RoutingKind",
    "MacOptions",
    "RoutingOptions",
]
