"""Battery (energy storage) component models.

Network lifetime (Eq. 4) is ``NLT = min_i Ebat_i / P_i``.  The paper's
design example powers every non-coordinator node from a CR2032 coin cell;
the coordinator "relies on larger energy storage to perform its function",
which we model with a generously sized pack so that the coordinator never
determines the lifetime (consistent with the paper's assumption that the
minimum in Eq. 4 is achieved by a non-coordinator node).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

#: Seconds per day, used when converting lifetimes for reporting.
SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class BatterySpec:
    """An energy source in the component library."""

    name: str
    capacity_mah: float
    nominal_voltage_v: float

    @property
    def energy_j(self) -> float:
        """Total stored energy in joules (capacity × voltage)."""
        return self.capacity_mah * 1e-3 * 3600.0 * self.nominal_voltage_v

    @property
    def energy_mwh(self) -> float:
        """Total stored energy in milliwatt-hours."""
        return self.capacity_mah * self.nominal_voltage_v

    def lifetime_days(
        self, power_mw: float, harvest_mw: float = 0.0
    ) -> float:
        """Days of operation at a constant power draw.

        ``harvest_mw`` models a constant energy-harvesting income (the
        autonomy goal the paper's Sec. 2.2 names: "maximize the
        effectiveness of energy harvesting").  When the income covers the
        draw, the node is energy-neutral and the lifetime is infinite.
        """
        if power_mw <= 0:
            raise ValueError("power draw must be positive")
        if harvest_mw < 0:
            raise ValueError("harvest income cannot be negative")
        net_mw = power_mw - harvest_mw
        if net_mw <= 0:
            return math.inf
        hours = self.energy_mwh / net_mw
        return hours / 24.0

    def lifetime_s(self, power_mw: float, harvest_mw: float = 0.0) -> float:
        """Seconds of operation at a constant power draw."""
        return self.lifetime_days(power_mw, harvest_mw) * SECONDS_PER_DAY


#: Standard 3 V lithium coin cell used by the paper's sensor nodes.
CR2032 = BatterySpec("CR2032", capacity_mah=225.0, nominal_voltage_v=3.0)

#: Larger coin cell option.
CR2477 = BatterySpec("CR2477", capacity_mah=1000.0, nominal_voltage_v=3.0)

#: Small rechargeable pack representative of a hub/coordinator device.
LIPO_110 = BatterySpec("LiPo-110mAh", capacity_mah=110.0, nominal_voltage_v=3.7)

#: The coordinator's "larger energy storage" — sized so the coordinator
#: never limits the network lifetime in Eq. 4.
COORDINATOR_PACK = BatterySpec("coordinator-pack", capacity_mah=10000.0,
                               nominal_voltage_v=3.7)

BATTERY_CATALOG: Dict[str, BatterySpec] = {
    spec.name: spec for spec in (CR2032, CR2477, LIPO_110, COORDINATOR_PACK)
}


def battery_by_name(name: str) -> BatterySpec:
    """Fetch a battery from the catalog by name."""
    try:
        return BATTERY_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown battery {name!r}; catalog has {sorted(BATTERY_CATALOG)}"
        ) from None
