"""Location roles for the paper's design example (Sec. 4.1).

The topological constraints of the design example are driven by sensing
roles: respiration at the chest, gait at hip and foot, vitals at the wrist.
This module names those roles so the constraint builder and the examples
can speak in application terms instead of raw indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.channel.body import (
    BACK,
    CHEST,
    HEAD,
    LEFT_ANKLE,
    LEFT_HIP,
    LEFT_UPPER_ARM,
    LEFT_WRIST,
    RIGHT_ANKLE,
    RIGHT_HIP,
    RIGHT_WRIST,
)


@dataclass(frozen=True)
class LocationRole:
    """A sensing role and the body locations that can host it."""

    name: str
    description: str
    eligible_locations: Tuple[int, ...]
    min_nodes: int = 1


#: Sec. 4.1: "one node must be placed on the chest for respiration rate
#: monitoring as well as the coordination in a star topology".
RESPIRATION = LocationRole(
    "respiration",
    "respiration-rate monitoring; doubles as the star coordinator",
    (CHEST,),
)

#: "At least one node should be at the hip and one at the foot for gait
#: analysis."
GAIT_HIP = LocationRole(
    "gait_hip", "gait analysis, pelvis kinematics", (LEFT_HIP, RIGHT_HIP)
)
GAIT_FOOT = LocationRole(
    "gait_foot", "gait analysis, foot strike", (LEFT_ANKLE, RIGHT_ANKLE)
)

#: "At least one node should be placed at the wrist to gather several
#: biological signals including temperature, heart rate, pulse oxygenation,
#: and motion."
VITALS_WRIST = LocationRole(
    "vitals_wrist",
    "temperature, heart rate, SpO2, motion",
    (LEFT_WRIST, RIGHT_WRIST),
)

#: Extra locations available for the up-to-two optional relay nodes.
OPTIONAL_RELAY_LOCATIONS: Tuple[int, ...] = (
    LEFT_HIP,
    RIGHT_HIP,
    LEFT_ANKLE,
    RIGHT_ANKLE,
    LEFT_WRIST,
    RIGHT_WRIST,
    LEFT_UPPER_ARM,
    HEAD,
    BACK,
)

#: The design example's role set in one place.
DESIGN_EXAMPLE_ROLES: List[LocationRole] = [
    RESPIRATION,
    GAIT_HIP,
    GAIT_FOOT,
    VITALS_WRIST,
]

#: Short names for reporting, indexed by location id.
LOCATION_SHORT_NAMES: Dict[int, str] = {
    CHEST: "chest",
    LEFT_HIP: "hipL",
    RIGHT_HIP: "hipR",
    LEFT_ANKLE: "ankL",
    RIGHT_ANKLE: "ankR",
    LEFT_WRIST: "wriL",
    RIGHT_WRIST: "wriR",
    LEFT_UPPER_ARM: "armL",
    HEAD: "head",
    BACK: "back",
}


def describe_placement(locations: Tuple[int, ...]) -> str:
    """Human-readable rendering of a placement, e.g. ``[chest,hipL,ankL]``."""
    names = [LOCATION_SHORT_NAMES.get(i, str(i)) for i in sorted(locations)]
    return "[" + ",".join(names) + "]"
