"""MAC and routing protocol options of the component library.

These enums and option records mirror the paper's configuration vectors:

* χ_MAC = (P_MAC, B_MAC, AM, T_slot) — protocol selector, buffer size,
  CSMA access mode, TDMA slot duration (Sec. 2.1.2, "Media Access
  Control");
* χ_rt = (P_rt, n_coor, N_hops) — routing selector (0 = star, 1 = mesh),
  coordinator location for star, and maximum hop count for mesh flooding
  (Sec. 2.1.2, "Routing Mechanism").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MacKind(enum.Enum):
    """P_MAC: the MAC protocol selector."""

    CSMA = "csma"
    TDMA = "tdma"


class CsmaAccessMode(enum.Enum):
    """AM: CSMA access mode.

    The paper's design example uses Castalia's TunableMAC with
    *non-persistent* access: on busy medium, back off for a random time and
    re-sense, which trades latency for fewer collisions.  Persistent mode
    (wait for idle, then transmit immediately) is included for exploration.
    """

    NON_PERSISTENT = "non_persistent"
    PERSISTENT = "persistent"


class RoutingKind(enum.Enum):
    """P_rt: the routing protocol selector.

    The paper's library offers star (0) and controlled-flooding mesh (1).
    ``P2P`` is this reproduction's extension: the *point-to-point
    forwarding* mesh scheme the paper cites as flooding's alternative
    (Sec. 2.1.2, [15]) — packets follow precomputed least-loss routes
    instead of being rebroadcast by everyone.
    """

    STAR = "star"
    MESH = "mesh"
    P2P = "p2p"

    @property
    def prt(self) -> int:
        """The binary encoding used in Eqs. 5 and 9 (any multi-hop scheme
        maps to the mesh branch)."""
        return 0 if self is RoutingKind.STAR else 1


@dataclass(frozen=True)
class MacOptions:
    """χ_MAC with the paper's defaults.

    ``slot_s`` is the TDMA slot duration (1 ms in Sec. 4.1), ``buffer_size``
    the MAC transmit queue depth B_MAC, and the backoff window bounds apply
    to non-persistent CSMA.
    """

    kind: MacKind
    buffer_size: int = 32
    access_mode: CsmaAccessMode = CsmaAccessMode.NON_PERSISTENT
    slot_s: float = 1e-3
    csma_backoff_min_s: float = 0.5e-3
    csma_backoff_max_s: float = 4e-3
    #: Power threshold above which the medium reads as busy while sensing.
    carrier_sense_dbm: float = -100.0

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError("MAC buffer size must be positive")
        if self.slot_s <= 0:
            raise ValueError("TDMA slot duration must be positive")
        if not (0 < self.csma_backoff_min_s <= self.csma_backoff_max_s):
            raise ValueError("CSMA backoff window is empty or negative")


@dataclass(frozen=True)
class RoutingOptions:
    """χ_rt with the paper's defaults.

    ``coordinator`` is n_coor (the chest location in Sec. 4.1; only
    meaningful for star), ``max_hops`` is N_hops for mesh flooding (2 in the
    design example).
    """

    kind: RoutingKind
    coordinator: int = 0
    max_hops: int = 2

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ValueError("mesh flooding needs at least one hop")

    def retx_count(self, num_nodes: int) -> int:
        """N_reTx: how many times a packet is transmitted in total.

        Controlled flooding on a fully connected network: the origin
        transmits once; a copy is rebroadcast by every node that is not
        the destination, is absent from the copy's visited history, and
        sees a hop counter below N_hops.  Ring k therefore contains

            (N−2) · (N−3) · ... · (N−1−k)

        copies (a falling factorial: each extra ring excludes one more
        visited node), giving

            N_reTx = 1 + Σ_{k=1..N_hops} (N−2)(N−3)···(N−1−k).

        At N_hops = 2 this collapses to the paper's ``N² − 4N + 5``
        (Sec. 4.1); at N_hops = 1 it is ``N − 1`` (one relay ring).  The
        discrete-event simulator's flooding layer realizes exactly these
        mechanics, so the coarse model and the simulation agree whenever
        every link closes.
        """
        n = num_nodes
        if self.kind is RoutingKind.STAR:
            return 1
        if self.kind is RoutingKind.P2P:
            # A routed packet is transmitted once per traversed hop; the
            # coarse model uses the hop limit as the (conservative) bound
            # on the route length.
            return max(1, min(self.max_hops, n - 1))
        total = 1
        ring = 1
        for k in range(1, self.max_hops + 1):
            ring *= max(0, n - 1 - k)
            if ring == 0:
                break
            total += ring
        return max(1, total)
