"""Radio (physical layer) component models.

A radio is characterized by the paper's configuration vector (Eq. 2):

    χ_rd = (fc, BR, Tx_dBm, Tx_mW, Rx_dBm, Rx_mW)

The CC2650 entry transcribes Table 1 exactly, including the footnote that
the −20 and −10 dBm power-consumption values are extrapolations not present
in the datasheet.  Additional catalog entries let users explore radios
beyond the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class TxMode:
    """One selectable transmitter operating point.

    Attributes
    ----------
    name:
        Label (Table 1 uses p1, p2, p3).
    output_dbm:
        Transmitter output power in dBm.
    power_mw:
        Power drawn from the supply while transmitting, in milliwatts.
    """

    name: str
    output_dbm: float
    power_mw: float


@dataclass(frozen=True)
class RadioSpec:
    """A radio chip available in the component library.

    Attributes mirror Eq. 2: carrier frequency ``fc`` (Hz), bit rate
    (bits/s), receiver sensitivity (dBm), receive power draw (mW), and the
    set of selectable transmit modes.
    """

    name: str
    carrier_hz: float
    bit_rate_bps: float
    sensitivity_dbm: float
    rx_power_mw: float
    tx_modes: Tuple[TxMode, ...]

    def packet_airtime_s(self, payload_bytes: int) -> float:
        """Transmission duration of an L-byte packet: Tpkt = 8L/BR."""
        if payload_bytes <= 0:
            raise ValueError("packet length must be positive")
        return 8.0 * payload_bytes / self.bit_rate_bps

    def tx_mode(self, name: str) -> TxMode:
        """Look up a transmit mode by its label."""
        for mode in self.tx_modes:
            if mode.name == name:
                return mode
        raise KeyError(f"radio {self.name!r} has no TX mode {name!r}")

    def tx_mode_by_dbm(self, output_dbm: float) -> TxMode:
        """Look up a transmit mode by its output power."""
        for mode in self.tx_modes:
            if mode.output_dbm == output_dbm:
                return mode
        raise KeyError(
            f"radio {self.name!r} has no TX mode at {output_dbm} dBm "
            f"(available: {[m.output_dbm for m in self.tx_modes]})"
        )

    @property
    def num_tx_modes(self) -> int:
        return len(self.tx_modes)


#: Table 1 — TI CC2650 radio specifications.  The p1/p2 power-consumption
#: figures carry the paper's footnote: "Not present in datasheet and based
#: on extrapolation."
CC2650 = RadioSpec(
    name="CC2650",
    carrier_hz=2.4e9,
    bit_rate_bps=1024e3,
    sensitivity_dbm=-97.0,
    rx_power_mw=17.7,
    tx_modes=(
        TxMode("p1", -20.0, 9.55),
        TxMode("p2", -10.0, 11.56),
        TxMode("p3", 0.0, 18.3),
    ),
)

#: A lower-power narrowband radio, loosely modeled on sub-GHz SoCs, for
#: exploration studies beyond the paper's scenario: lower bit rate (longer
#: airtime) but better sensitivity and lower draw.
CC1310_LIKE = RadioSpec(
    name="CC1310-like",
    carrier_hz=868e6,
    bit_rate_bps=500e3,
    sensitivity_dbm=-110.0,
    rx_power_mw=5.4,
    tx_modes=(
        TxMode("p1", -10.0, 12.3),
        TxMode("p2", 0.0, 16.9),
        TxMode("p3", 10.0, 41.2),
    ),
)

#: An aggressive wideband radio with worse sensitivity but very short
#: airtime, exercising the throughput-vs-budget tradeoff.
UWB_LIKE = RadioSpec(
    name="UWB-like",
    carrier_hz=6.5e9,
    bit_rate_bps=6800e3,
    sensitivity_dbm=-88.0,
    rx_power_mw=48.0,
    tx_modes=(
        TxMode("p1", -14.0, 31.0),
        TxMode("p2", -8.0, 37.0),
    ),
)

RADIO_CATALOG: Dict[str, RadioSpec] = {
    spec.name: spec for spec in (CC2650, CC1310_LIKE, UWB_LIKE)
}


def radio_by_name(name: str) -> RadioSpec:
    """Fetch a radio from the catalog by name."""
    try:
        return RADIO_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown radio {name!r}; catalog has {sorted(RADIO_CATALOG)}"
        ) from None
