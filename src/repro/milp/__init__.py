"""A self-contained mixed integer linear programming (MILP) toolkit.

The DAC'17 Human Intranet paper drives its design-space exploration with the
CPLEX solver accessed through PuLP.  This package is the reproduction's
substitute: a small but complete MILP stack consisting of

* a modeling layer (:mod:`repro.milp.expr`, :mod:`repro.milp.model`) with
  variables, linear expressions, constraints, and an objective;
* a bounded-variable primal simplex LP solver (:mod:`repro.milp.simplex`);
* a best-first branch-and-bound MILP solver
  (:mod:`repro.milp.branch_bound`);
* an optimum-set enumerator (:mod:`repro.milp.enumerate_optima`) used by
  Algorithm 1, which consumes *sets* of MILP optima rather than a single
  incumbent; and
* an optional cross-check backend built on ``scipy.optimize.milp``
  (:mod:`repro.milp.scipy_backend`).

Quick example::

    from repro.milp import Model

    m = Model("knapsack", sense="max")
    x = [m.add_var(f"x{i}", lb=0, ub=1, is_integer=True) for i in range(4)]
    m.set_objective(3 * x[0] + 5 * x[1] + 4 * x[2] + 2 * x[3])
    m.add_constraint(2 * x[0] + 4 * x[1] + 3 * x[2] + 1 * x[3] <= 6)
    result = m.solve()
    assert result.is_optimal
"""

from repro.milp.expr import LinExpr, Var
from repro.milp.model import Constraint, Model
from repro.milp.solution import SolveResult, SolveStatus
from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.simplex import LinearProgram, SimplexSolver, SimplexStatus
from repro.milp.enumerate_optima import enumerate_optimal_solutions
from repro.milp.scipy_backend import solve_with_scipy

__all__ = [
    "Var",
    "LinExpr",
    "Constraint",
    "Model",
    "SolveResult",
    "SolveStatus",
    "BranchAndBoundSolver",
    "LinearProgram",
    "SimplexSolver",
    "SimplexStatus",
    "enumerate_optimal_solutions",
    "solve_with_scipy",
]
