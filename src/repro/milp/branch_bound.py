"""Best-first branch-and-bound MILP solver on top of the simplex LP engine.

The solver follows the classic LP-relaxation scheme:

1. Solve the LP relaxation of the node (integrality dropped, but with the
   node's tightened bounds).
2. Prune if infeasible or if the relaxation bound cannot beat the incumbent.
3. If the relaxation is integral, update the incumbent.
4. Otherwise pick the *most fractional* integer variable and branch on
   ``x <= floor(v)`` / ``x >= ceil(v)``.

Nodes are explored best-bound-first (a heap keyed on the parent relaxation
value), which gives strong pruning on the Human Intranet models where the
coarse power objective takes few distinct values.  Determinism: ties in the
heap break on node creation order, so repeated solves of the same model
produce identical trajectories.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.milp.model import Model
from repro.milp.simplex import (
    LinearProgram,
    SimplexSolver,
    SimplexStatus,
    WarmStartBasis,
)
from repro.milp.solution import SolveResult, SolveStatus

#: A solution component within this distance of an integer counts as integral.
INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node: bound tightenings relative to the root.

    Ordering is (bound, sequence) so the heap pops the most promising node
    first and is deterministic under ties.
    """

    bound: float
    sequence: int
    lower: np.ndarray = None  # type: ignore[assignment]
    upper: np.ndarray = None  # type: ignore[assignment]
    #: Parent relaxation's optimal basis: the child LP differs by one
    #: bound, so re-optimizing from here is a few dual pivots instead of
    #: a full two-phase solve.  Never part of the heap ordering (bound,
    #: sequence) key.
    basis: Optional[WarmStartBasis] = None

    def __post_init__(self) -> None:
        # dataclass(order=True) would compare arrays; exclude them by
        # keeping them out of the comparison via field order — bound and
        # sequence always differ before arrays are reached because sequence
        # is unique.
        pass


class BranchAndBoundSolver:
    """Exact MILP solver.

    Parameters
    ----------
    max_nodes:
        Node budget; the Human Intranet models need well under 1000.
    gap_tol:
        Absolute optimality gap at which a node is pruned against the
        incumbent.  Zero-ish keeps the solver exact for the coarse power
        objective whose distinct values are well separated.
    lp_solver:
        Simplex engine; injectable for testing.
    use_warm_starts:
        Re-optimize each child relaxation from its parent's optimal basis
        (and the root from ``root_warm_start``, when given) instead of a
        cold two-phase solve.  The simplex layer falls back cold on any
        numerical doubt, so the search trajectory and results do not
        depend on this flag — only the pivot counts do.
    """

    def __init__(
        self,
        max_nodes: int = 100000,
        gap_tol: float = 1e-9,
        lp_solver: Optional[SimplexSolver] = None,
        use_warm_starts: bool = True,
    ) -> None:
        self.max_nodes = max_nodes
        self.gap_tol = gap_tol
        self.lp_solver = lp_solver or SimplexSolver()
        self.use_warm_starts = use_warm_starts

    def solve(
        self, model: Model, root_warm_start: Optional[WarmStartBasis] = None
    ) -> SolveResult:
        """Solve ``model`` to optimality (in the model's objective sense)."""
        c, a_ub, b_ub, a_eq, b_eq, bounds, c0 = model.to_standard_arrays()
        int_indices = np.array(model.integer_indices, dtype=int)

        # Integer variables with infinite bounds would make the search
        # potentially endless; the Human Intranet models never need them.
        for j in int_indices:
            if not (math.isfinite(bounds[j, 0]) and math.isfinite(bounds[j, 1])):
                raise ValueError(
                    f"integer variable {model.variables[j].name!r} must have "
                    "finite bounds for branch and bound"
                )

        counter = itertools.count()
        root = _Node(-math.inf, next(counter))
        root.lower = bounds[:, 0].copy()
        root.upper = bounds[:, 1].copy()
        if self.use_warm_starts:
            root.basis = root_warm_start
        heap: List[_Node] = [root]

        incumbent_value: Optional[np.ndarray] = None
        incumbent_obj = math.inf  # in minimization space
        nodes = 0
        lp_iters = 0
        incumbent_updates = 0
        warm_lp_solves = 0
        root_basis: Optional[WarmStartBasis] = None
        saw_unbounded_relaxation = False
        warm = self.use_warm_starts

        while heap and nodes < self.max_nodes:
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - self.gap_tol:
                continue  # cannot improve
            nodes += 1

            lp = LinearProgram(
                c, a_ub, b_ub, a_eq, b_eq,
                np.column_stack([node.lower, node.upper]), 0.0,
            )
            result = self.lp_solver.solve(
                lp, warm_start=node.basis if warm else None, want_basis=warm
            )
            lp_iters += result.iterations
            if result.warm_started:
                warm_lp_solves += 1
            if node is root:
                root_basis = result.basis
            if result.status is SimplexStatus.INFEASIBLE:
                continue
            if result.status is SimplexStatus.UNBOUNDED:
                saw_unbounded_relaxation = True
                # An unbounded relaxation at any node means the MILP itself
                # is unbounded or infeasible; with bounded integers the
                # continuous directions dominate, so report unbounded.
                break
            if result.status is SimplexStatus.ITERATION_LIMIT:
                raise RuntimeError("simplex iteration limit hit inside branch and bound")
            assert result.x is not None and result.objective is not None
            relax_obj = result.objective  # includes no c0 (added at the end)
            if relax_obj >= incumbent_obj - self.gap_tol:
                continue

            frac_j, frac_val = self._most_fractional(result.x, int_indices)
            if frac_j is None:
                # Integral within tolerance.  Rounding can nudge a point
                # across a constraint that is only epsilon-deep (e.g. the
                # explorer's strict power cuts), so validate the rounded
                # point before accepting it; if it fails, branch on the
                # least-integral variable instead of accepting a bogus
                # incumbent.
                x = result.x.copy()
                x[int_indices] = np.round(x[int_indices])
                if self._rounded_point_feasible(x, a_ub, b_ub, a_eq, b_eq):
                    incumbent_obj = float(c @ x)
                    incumbent_value = x
                    incumbent_updates += 1
                    continue
                frac_j, frac_val = self._most_fractional(
                    result.x, int_indices, tol=1e-12
                )
                if frac_j is None:
                    # Exactly integral yet infeasible after rounding:
                    # a genuinely infeasible LP vertex cannot happen, so
                    # treat as numerical noise and prune this node.
                    continue

            # Branch point: children are x <= k and x >= k + 1.  For a
            # genuinely fractional value, k = floor(v).  For a
            # near-integral value that failed rounded-point validation,
            # k = round(v) - 1 so the up child *pins* the variable at its
            # rounded value (where the LP itself decides feasibility) and
            # the down child excludes it — both children strictly shrink
            # the box, which floor(v + tol) would not.
            dist_to_int = abs(frac_val - round(frac_val))
            if dist_to_int <= INT_TOL:
                floor_v = int(round(frac_val)) - 1
            else:
                floor_v = math.floor(frac_val)
            # Down child: x_j <= floor(v)
            down = _Node(relax_obj, next(counter))
            down.lower = node.lower.copy()
            down.upper = node.upper.copy()
            down.upper[frac_j] = float(floor_v)
            down.basis = result.basis
            if down.lower[frac_j] <= down.upper[frac_j]:
                heapq.heappush(heap, down)
            # Up child: x_j >= floor(v) + 1
            up = _Node(relax_obj, next(counter))
            up.lower = node.lower.copy()
            up.upper = node.upper.copy()
            up.lower[frac_j] = float(floor_v + 1)
            up.basis = result.basis
            if up.lower[frac_j] <= up.upper[frac_j]:
                heapq.heappush(heap, up)

        if saw_unbounded_relaxation and incumbent_value is None:
            return SolveResult(SolveStatus.UNBOUNDED, nodes_explored=nodes,
                               lp_iterations=lp_iters,
                               warm_lp_solves=warm_lp_solves,
                               root_basis=root_basis)
        if incumbent_value is None:
            status = (
                SolveStatus.NODE_LIMIT if heap and nodes >= self.max_nodes
                else SolveStatus.INFEASIBLE
            )
            return SolveResult(status, nodes_explored=nodes, lp_iterations=lp_iters,
                               warm_lp_solves=warm_lp_solves,
                               root_basis=root_basis)
        if heap and nodes >= self.max_nodes:
            # Incumbent exists but optimality was not proven: report it as a
            # best-effort bound under the NODE_LIMIT status.
            min_obj = incumbent_obj + c0
            return SolveResult(
                SolveStatus.NODE_LIMIT,
                objective=float(min_obj if model.sense == "min" else -min_obj),
                values={i: float(v) for i, v in enumerate(incumbent_value)},
                nodes_explored=nodes,
                lp_iterations=lp_iters,
                incumbent_updates=incumbent_updates,
                warm_lp_solves=warm_lp_solves,
                root_basis=root_basis,
            )

        # incumbent_obj is in minimization space without c0; map back.
        min_obj = incumbent_obj + c0
        reported = min_obj if model.sense == "min" else -min_obj
        values = {i: float(v) for i, v in enumerate(incumbent_value)}
        for j in int_indices:
            values[int(j)] = float(round(values[int(j)]))
        return SolveResult(
            SolveStatus.OPTIMAL,
            objective=float(reported),
            values=values,
            nodes_explored=nodes,
            lp_iterations=lp_iters,
            incumbent_updates=incumbent_updates,
            warm_lp_solves=warm_lp_solves,
            root_basis=root_basis,
        )

    @staticmethod
    def _most_fractional(
        x: np.ndarray, int_indices: np.ndarray, tol: float = INT_TOL
    ) -> Tuple[Optional[int], float]:
        """Return the integer index whose value is farthest from integral."""
        best_j: Optional[int] = None
        best_dist = tol
        for j in int_indices:
            v = x[j]
            dist = abs(v - round(v))
            if dist > best_dist:
                best_dist = dist
                best_j = int(j)
        if best_j is None:
            return None, 0.0
        return best_j, float(x[best_j])

    @staticmethod
    def _rounded_point_feasible(
        x: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        tol: float = 1e-7,
    ) -> bool:
        """Constraint check for a rounded candidate incumbent."""
        if a_ub.shape[0] and np.any(a_ub @ x > b_ub + tol):
            return False
        if a_eq.shape[0] and np.any(np.abs(a_eq @ x - b_eq) > tol):
            return False
        return True
