"""Enumerate the full set of optimal solutions of a binary-heavy MILP.

Algorithm 1 in the paper (line 3, ``RunMILP``) returns a *set* of candidate
configurations ``S = {(nu*_j, chi*_j)}`` — all solutions attaining the
minimum of the coarse power objective — because the analytical model of
Eq. 9 does not distinguish between, e.g., different node placements with the
same node count.  This module provides that set-valued solve.

The enumeration uses the standard no-good-cut loop:

1. Solve the MILP; record the optimum value ``z*``.
2. Pin the objective to ``z*`` (within a tolerance) and repeatedly:
   a. solve, record the binary assignment found,
   b. add a no-good cut excluding that assignment,
   until the pinned model becomes infeasible or ``max_solutions`` is hit.

No-good cuts require the distinguishing variables to be binary, which holds
for the Human Intranet encoding (placement bits, power-level selectors, MAC
and routing selectors are all 0/1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.milp.expr import LinExpr, Var
from repro.milp.model import Model
from repro.milp.solution import SolveResult, SolveStatus


def enumerate_optimal_solutions(
    model: Model,
    distinguish_vars: Optional[Sequence[Var]] = None,
    max_solutions: int = 64,
    objective_tol: float = 1e-6,
    solver_kwargs: Optional[dict] = None,
) -> Tuple[SolveStatus, List[SolveResult], Optional[float]]:
    """Return ``(status, solutions, optimum)`` for the given model.

    Parameters
    ----------
    model:
        The MILP to enumerate.  It is copied; the caller's model is not
        mutated.
    distinguish_vars:
        Binary variables whose assignment defines solution identity.  When
        ``None``, all binary variables of the model are used.  Two optima
        with identical assignments on these variables count as one solution.
    max_solutions:
        Upper bound on the number of enumerated optima (a safety valve —
        Algorithm 1 only needs a representative candidate set per
        iteration).
    objective_tol:
        Slack allowed when pinning the objective to the optimum, absorbing
        simplex round-off.
    solver_kwargs:
        Extra keyword arguments for the branch-and-bound solver.

    Returns
    -------
    status:
        ``OPTIMAL`` when at least one solution was found, otherwise the
        first solve's status (e.g. ``INFEASIBLE``).
    solutions:
        Solutions in discovery order; deterministic for a fixed model.
    optimum:
        The shared objective value, or ``None`` when infeasible.
    """
    solver_kwargs = solver_kwargs or {}
    work = model.copy()
    first = work.solve(**solver_kwargs)
    if not first.is_optimal:
        return first.status, [], None
    assert first.objective is not None
    optimum = first.objective

    if distinguish_vars is None:
        keys = [v for v in work.variables if v.is_binary]
    else:
        keys = [work.var_by_name(v.name) for v in distinguish_vars]
    if not keys:
        # Nothing to distinguish on: the optimum is unique by definition.
        return SolveStatus.OPTIMAL, [first], optimum

    # Pin the objective at the optimal value.
    obj = work.objective
    if work.sense == "min":
        work.add_constraint(obj <= optimum + objective_tol, name="pin_obj_ub")
        work.add_constraint(obj >= optimum - objective_tol, name="pin_obj_lb")
    else:
        work.add_constraint(obj >= optimum - objective_tol, name="pin_obj_lb")
        work.add_constraint(obj <= optimum + objective_tol, name="pin_obj_ub")

    solutions: List[SolveResult] = [first]
    seen = {_assignment_key(first, keys)}
    _add_no_good_cut(work, first, keys)

    while len(solutions) < max_solutions:
        nxt = work.solve(**solver_kwargs)
        if nxt.status is SolveStatus.INFEASIBLE:
            break
        if not nxt.is_optimal:
            # Node limit or numerical trouble: stop enumerating but keep
            # what we have — Algorithm 1 degrades gracefully with a partial
            # candidate set.
            break
        key = _assignment_key(nxt, keys)
        if key in seen:
            # The cut failed to exclude the point (should not happen for
            # binary keys); bail out rather than loop forever.
            break
        seen.add(key)
        solutions.append(nxt)
        _add_no_good_cut(work, nxt, keys)

    return SolveStatus.OPTIMAL, solutions, optimum


def _assignment_key(result: SolveResult, keys: Sequence[Var]) -> Tuple[int, ...]:
    return tuple(int(round(result.values[v.index])) for v in keys)


def _add_no_good_cut(model: Model, result: SolveResult, keys: Sequence[Var]) -> None:
    """Exclude the binary assignment of ``result`` on ``keys``.

    For assignment a in {0,1}^k the cut is
    ``sum_{a_i=1} (1 - x_i) + sum_{a_i=0} x_i >= 1``.
    """
    terms: List[LinExpr] = []
    ones = 0
    for v in keys:
        a = int(round(result.values[v.index]))
        if a == 1:
            ones += 1
            terms.append(-v.to_expr())
        else:
            terms.append(v.to_expr())
    lhs = LinExpr.sum_of(terms) + ones
    model.add_constraint(lhs >= 1, name=f"nogood_{len(model.constraints)}")


def solution_values_by_name(model: Model, result: SolveResult) -> Dict[str, float]:
    """Convenience: map variable names to their values in a result."""
    return {v.name: result.value(v) for v in model.variables}
