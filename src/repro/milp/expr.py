"""Decision variables and affine expressions for the MILP modeling layer.

The design follows the conventions of mainstream modeling front-ends
(PuLP, gurobipy): variables support arithmetic with numbers and with each
other, producing :class:`LinExpr` objects; comparison operators on
expressions produce constraint triples consumed by
:class:`repro.milp.model.Model`.

Expressions are stored as ``{var_index: coefficient}`` dictionaries plus a
constant term, which keeps construction of the sparse constraint matrices in
the solver straightforward.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, float]

#: Infinity used for unbounded variable bounds.
INF = math.inf


class Var:
    """A single decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_var` and
    carry an index into their owning model's variable table.  They are
    hashable and compare by identity, so they can be used as dictionary keys.

    Parameters
    ----------
    index:
        Position of the variable in the model's column ordering.
    name:
        Human-readable name, unique within a model.
    lb, ub:
        Lower and upper bounds.  Use ``-math.inf`` / ``math.inf`` for free
        variables.
    is_integer:
        Whether the variable is restricted to integer values by the MILP
        solver.  A binary variable is an integer variable with bounds [0, 1].
    """

    __slots__ = ("index", "name", "lb", "ub", "is_integer")

    def __init__(
        self,
        index: int,
        name: str,
        lb: Number = 0.0,
        ub: Number = INF,
        is_integer: bool = False,
    ) -> None:
        if lb > ub:
            raise ValueError(
                f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}"
            )
        self.index = index
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.is_integer = bool(is_integer)

    @property
    def is_binary(self) -> bool:
        """True when the variable is integer with bounds [0, 1]."""
        return self.is_integer and self.lb == 0.0 and self.ub == 1.0

    # -- conversion ---------------------------------------------------------

    def to_expr(self) -> "LinExpr":
        """Return this variable as a single-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0)

    # -- arithmetic (delegates to LinExpr) ----------------------------------

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    def __truediv__(self, other: Number) -> "LinExpr":
        return self.to_expr() / other

    def __neg__(self) -> "LinExpr":
        return -self.to_expr()

    # -- comparisons produce constraint specs -------------------------------

    def __le__(self, other: "ExprLike") -> "ConstraintSpec":
        return self.to_expr() <= other

    def __ge__(self, other: "ExprLike") -> "ConstraintSpec":
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "bin" if self.is_binary else ("int" if self.is_integer else "cont")
        return f"Var({self.name!r}, {kind}, [{self.lb}, {self.ub}])"


ExprLike = Union[Var, "LinExpr", Number]


class LinExpr:
    """An affine expression ``sum_i coeff_i * x_i + constant``.

    Instances are immutable from the caller's perspective: all arithmetic
    returns new expressions.  Terms with coefficient exactly zero are dropped
    so that expression equality and constraint sparsity stay predictable.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: Mapping[int, float] | None = None, constant: Number = 0.0
    ) -> None:
        cleaned: Dict[int, float] = {}
        if terms:
            for idx, coeff in terms.items():
                c = float(coeff)
                if c != 0.0:
                    cleaned[int(idx)] = c
        self.terms = cleaned
        self.constant = float(constant)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def from_operand(value: ExprLike) -> "LinExpr":
        """Coerce a variable, expression, or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, value)
        raise TypeError(f"cannot build a linear expression from {value!r}")

    @staticmethod
    def sum_of(operands: Iterable[ExprLike]) -> "LinExpr":
        """Sum an iterable of variables/expressions/numbers efficiently."""
        terms: Dict[int, float] = {}
        constant = 0.0
        for op in operands:
            expr = LinExpr.from_operand(op)
            constant += expr.constant
            for idx, coeff in expr.terms.items():
                terms[idx] = terms.get(idx, 0.0) + coeff
        return LinExpr(terms, constant)

    # -- queries -------------------------------------------------------------

    def coefficient(self, var: Var) -> float:
        """Return the coefficient of ``var`` (0.0 when absent)."""
        return self.terms.get(var.index, 0.0)

    def evaluate(self, values: Mapping[int, float]) -> float:
        """Evaluate the expression at a point given as ``{index: value}``."""
        total = self.constant
        for idx, coeff in self.terms.items():
            total += coeff * values[idx]
        return total

    @property
    def is_constant(self) -> bool:
        return not self.terms

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        rhs = LinExpr.from_operand(other)
        terms = dict(self.terms)
        for idx, coeff in rhs.terms.items():
            terms[idx] = terms.get(idx, 0.0) + coeff
        return LinExpr(terms, self.constant + rhs.constant)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + (-LinExpr.from_operand(other))

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-self) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        return LinExpr(
            {idx: coeff * scalar for idx, coeff in self.terms.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self * scalar

    def __truediv__(self, scalar: Number) -> "LinExpr":
        if scalar == 0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self * (1.0 / scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons ---------------------------------------------------------

    def __le__(self, other: ExprLike) -> "ConstraintSpec":
        return ConstraintSpec(self - LinExpr.from_operand(other), "<=")

    def __ge__(self, other: ExprLike) -> "ConstraintSpec":
        return ConstraintSpec(self - LinExpr.from_operand(other), ">=")

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return ConstraintSpec(self - LinExpr.from_operand(other), "==")
        return NotImplemented

    def __hash__(self) -> int:
        return hash((tuple(sorted(self.terms.items())), self.constant))

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*x{idx}" for idx, coeff in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class ConstraintSpec:
    """Result of comparing expressions: ``body (sense) 0``.

    ``body`` is the left-hand side minus the right-hand side, so the
    constraint reads ``body <= 0``, ``body >= 0``, or ``body == 0``.  A spec
    becomes a real :class:`repro.milp.model.Constraint` once it is added to a
    model.
    """

    __slots__ = ("body", "sense")

    def __init__(self, body: LinExpr, sense: str) -> None:
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {sense!r}")
        self.body = body
        self.sense = sense

    def as_row(self) -> Tuple[Dict[int, float], str, float]:
        """Return ``(coeffs, sense, rhs)`` with the constant moved right."""
        return dict(self.body.terms), self.sense, -self.body.constant

    def __repr__(self) -> str:
        return f"ConstraintSpec({self.body!r} {self.sense} 0)"
