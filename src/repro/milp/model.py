"""The :class:`Model` container tying variables, constraints, and objective.

A model is the single entry point users need: create variables with
:meth:`Model.add_var`, add constraints with :meth:`Model.add_constraint`,
set an objective, and call :meth:`Model.solve`.  The model also knows how to
lower itself into the standard-form arrays consumed by the simplex and
branch-and-bound solvers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.milp.expr import INF, ConstraintSpec, ExprLike, LinExpr, Var


class Constraint:
    """A named linear constraint ``sum coeffs * x (sense) rhs``."""

    __slots__ = ("name", "coeffs", "sense", "rhs")

    def __init__(self, name: str, coeffs: Dict[int, float], sense: str, rhs: float):
        self.name = name
        self.coeffs = coeffs
        self.sense = sense
        self.rhs = float(rhs)

    def violation(self, values: Dict[int, float], tol: float = 1e-9) -> float:
        """Amount by which a point violates this constraint (0 if satisfied)."""
        lhs = sum(c * values[i] for i, c in self.coeffs.items())
        if self.sense == "<=":
            return max(0.0, lhs - self.rhs - tol)
        if self.sense == ">=":
            return max(0.0, self.rhs - lhs - tol)
        return max(0.0, abs(lhs - self.rhs) - tol)

    def __repr__(self) -> str:
        body = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"Constraint({self.name!r}: {body} {self.sense} {self.rhs:g})"


class Model:
    """A mixed integer linear program.

    Parameters
    ----------
    name:
        Label used in reprs and error messages.
    sense:
        ``"min"`` or ``"max"``.  Internally everything is minimized; a max
        objective is negated on the way in and the reported objective value
        is negated back on the way out.
    """

    def __init__(self, name: str = "model", sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ValueError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self.name = name
        self.sense = sense
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: Dict[str, Var] = {}
        self._constraint_counter = 0

    # -- building ------------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = INF,
        is_integer: bool = False,
    ) -> Var:
        """Create and register a decision variable.

        Raises :class:`ValueError` on duplicate names so that model-building
        bugs surface immediately instead of silently aliasing columns.
        """
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r} in model {self.name!r}")
        var = Var(len(self.variables), name, lb=lb, ub=ub, is_integer=is_integer)
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str) -> Var:
        """Shorthand for an integer variable with bounds [0, 1]."""
        return self.add_var(name, lb=0.0, ub=1.0, is_integer=True)

    def add_vars(
        self, names: Iterable[str], lb: float = 0.0, ub: float = INF, is_integer: bool = False
    ) -> List[Var]:
        """Create several variables sharing the same bounds and type."""
        return [self.add_var(n, lb=lb, ub=ub, is_integer=is_integer) for n in names]

    def var_by_name(self, name: str) -> Var:
        """Look up a variable by its name."""
        try:
            return self._names[name]
        except KeyError:
            raise KeyError(f"model {self.name!r} has no variable {name!r}") from None

    def add_constraint(self, spec: ConstraintSpec, name: Optional[str] = None) -> Constraint:
        """Add a constraint built with ``<=``, ``>=``, or ``==`` comparisons."""
        if not isinstance(spec, ConstraintSpec):
            raise TypeError(
                "add_constraint expects an expression comparison such as "
                "'x + y <= 3'; got " + repr(spec)
            )
        coeffs, sense, rhs = spec.as_row()
        if not coeffs:
            # Constant constraint: either trivially true (keep nothing) or
            # an immediate modeling error worth failing loudly on.
            satisfied = {
                "<=": 0.0 <= rhs + 1e-12,
                ">=": 0.0 >= rhs - 1e-12,
                "==": abs(rhs) <= 1e-12,
            }[sense]
            if not satisfied:
                raise ValueError(
                    f"constraint {name or ''} is constant and infeasible: 0 {sense} {rhs}"
                )
        if name is None:
            name = f"c{self._constraint_counter}"
        self._constraint_counter += 1
        con = Constraint(name, coeffs, sense, rhs)
        self.constraints.append(con)
        return con

    def set_objective(self, expr: ExprLike, sense: Optional[str] = None) -> None:
        """Set the objective expression (optionally changing the sense)."""
        if sense is not None:
            if sense not in ("min", "max"):
                raise ValueError("sense must be 'min' or 'max'")
            self.sense = sense
        self.objective = LinExpr.from_operand(expr)

    # -- queries -------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def integer_indices(self) -> List[int]:
        """Column indices of integer-restricted variables."""
        return [v.index for v in self.variables if v.is_integer]

    def is_feasible_point(self, values: Dict[int, float], tol: float = 1e-6) -> bool:
        """Check bounds, integrality, and constraints at a given point."""
        for var in self.variables:
            x = values[var.index]
            if x < var.lb - tol or x > var.ub + tol:
                return False
            if var.is_integer and abs(x - round(x)) > tol:
                return False
        return all(c.violation(values, tol) == 0.0 for c in self.constraints)

    # -- lowering to arrays ----------------------------------------------------

    def to_standard_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
        """Lower the model to ``(c, A_ub, b_ub, A_eq, b_eq, bounds, c0)``.

        The returned objective ``c`` always encodes a *minimization*;
        for a max model, ``c`` is the negated coefficient vector and callers
        must negate the optimal value (handled by the solvers).  ``c0`` is
        the objective's constant offset (already sign-adjusted).

        ``>=`` rows are negated into ``<=`` rows.  Bounds is an ``(n, 2)``
        array of per-variable ``[lb, ub]``.
        """
        n = self.num_vars
        c = np.zeros(n)
        for idx, coeff in self.objective.terms.items():
            c[idx] = coeff
        c0 = self.objective.constant
        if self.sense == "max":
            c = -c
            c0 = -c0

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for idx, coeff in con.coeffs.items():
                row[idx] = coeff
            if con.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(con.rhs)
            elif con.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-con.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(con.rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)
        bounds = np.array([[v.lb, v.ub] for v in self.variables]).reshape(n, 2)
        return c, a_ub, b_ub, a_eq, b_eq, bounds, c0

    # -- solving ---------------------------------------------------------------

    def solve(self, **kwargs):
        """Solve with the bundled branch-and-bound solver.

        Keyword arguments are forwarded to
        :class:`repro.milp.branch_bound.BranchAndBoundSolver`.
        """
        from repro.milp.branch_bound import BranchAndBoundSolver

        return BranchAndBoundSolver(**kwargs).solve(self)

    def copy(self) -> "Model":
        """Deep-copy the model (variables, constraints, objective)."""
        clone = Model(self.name, self.sense)
        for v in self.variables:
            clone.add_var(v.name, lb=v.lb, ub=v.ub, is_integer=v.is_integer)
        for con in self.constraints:
            clone.constraints.append(
                Constraint(con.name, dict(con.coeffs), con.sense, con.rhs)
            )
        clone._constraint_counter = self._constraint_counter
        clone.objective = LinExpr(dict(self.objective.terms), self.objective.constant)
        return clone

    def __repr__(self) -> str:
        n_int = len(self.integer_indices)
        return (
            f"Model({self.name!r}, {self.sense}, vars={self.num_vars} "
            f"({n_int} integer), constraints={self.num_constraints})"
        )


def lp_values_to_dict(values: Sequence[float]) -> Dict[int, float]:
    """Convert a dense solution vector to the ``{index: value}`` mapping."""
    return {i: float(v) for i, v in enumerate(values)}
