"""Optional cross-check backend using ``scipy.optimize.milp`` (HiGHS).

The bundled branch-and-bound solver is the primary MILP engine of this
reproduction (the paper used CPLEX; we implement our own exact solver).
This module exposes the same :class:`repro.milp.model.Model` interface on
top of SciPy's HiGHS wrapper, used by the test suite to validate the
home-grown solver on randomized models and available to users who prefer a
battle-tested engine.
"""

from __future__ import annotations

import numpy as np

from repro.milp.model import Model
from repro.milp.solution import SolveResult, SolveStatus


def solve_with_scipy(model: Model) -> SolveResult:
    """Solve a model with ``scipy.optimize.milp`` and adapt the result.

    Raises :class:`ImportError` when SciPy lacks the ``milp`` entry point
    (SciPy < 1.9).
    """
    from scipy.optimize import LinearConstraint, Bounds, milp  # noqa: WPS433

    c, a_ub, b_ub, a_eq, b_eq, bounds, c0 = model.to_standard_arrays()
    n = model.num_vars

    constraints = []
    if a_ub.shape[0]:
        constraints.append(LinearConstraint(a_ub, -np.inf, b_ub))
    if a_eq.shape[0]:
        constraints.append(LinearConstraint(a_eq, b_eq, b_eq))

    integrality = np.zeros(n)
    for j in model.integer_indices:
        integrality[j] = 1

    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(bounds[:, 0], bounds[:, 1]),
    )

    if res.status == 0:
        min_obj = float(res.fun) + c0
        reported = min_obj if model.sense == "min" else -min_obj
        values = {i: float(v) for i, v in enumerate(res.x)}
        for j in model.integer_indices:
            values[j] = float(round(values[j]))
        return SolveResult(SolveStatus.OPTIMAL, objective=reported, values=values)
    if res.status == 2:
        return SolveResult(SolveStatus.INFEASIBLE)
    if res.status == 3:
        return SolveResult(SolveStatus.UNBOUNDED)
    # Statuses 1 (iteration/time limit) and 4 (numerical) map to NODE_LIMIT
    # as the closest "gave up" analogue.
    return SolveResult(SolveStatus.NODE_LIMIT)
