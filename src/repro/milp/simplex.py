"""A two-phase primal simplex solver for linear programs with bounds.

This is the LP engine underneath the branch-and-bound MILP solver.  It
accepts problems in the general form

    minimize    c' x + c0
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb <= x <= ub        (entries may be +/- infinity)

and reduces them internally to the textbook standard form

    minimize    c' y
    subject to  A y == b,   y >= 0,  b >= 0

via variable shifting (finite lower bounds), reflection (upper-bounded free
variables), splitting (fully free variables), explicit upper-bound rows, and
slack variables.  Phase 1 minimizes the sum of artificial variables to find
a basic feasible solution; phase 2 optimizes the true objective.

Pivoting uses Dantzig's rule with an automatic switch to Bland's rule after
a cycling-suspicion threshold, which guarantees termination.  The dense
tableau implementation is appropriate for the problem sizes that appear in
Human Intranet design-space exploration (tens of variables and rows) and is
validated against ``scipy.optimize.linprog`` in the test suite.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.runtime import get_active

#: Numerical tolerance for reduced costs, ratio tests, and feasibility.
EPS = 1e-9


class SimplexStatus(enum.Enum):
    """Outcome of a simplex solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LinearProgram:
    """A linear program in general (bounded-variable) form.

    All arrays are dense numpy arrays.  ``bounds`` has shape ``(n, 2)`` with
    columns ``[lb, ub]``; infinities are allowed.  ``c0`` is a constant
    objective offset added to the reported optimum.
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: np.ndarray
    c0: float = 0.0

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        n = self.c.shape[0]
        self.a_ub = np.asarray(self.a_ub, dtype=float).reshape(-1, n)
        self.b_ub = np.asarray(self.b_ub, dtype=float).reshape(-1)
        self.a_eq = np.asarray(self.a_eq, dtype=float).reshape(-1, n)
        self.b_eq = np.asarray(self.b_eq, dtype=float).reshape(-1)
        self.bounds = np.asarray(self.bounds, dtype=float).reshape(n, 2)
        if self.a_ub.shape[0] != self.b_ub.shape[0]:
            raise ValueError("A_ub and b_ub row counts disagree")
        if self.a_eq.shape[0] != self.b_eq.shape[0]:
            raise ValueError("A_eq and b_eq row counts disagree")

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]


@dataclass(frozen=True)
class WarmStartBasis:
    """An optimal basis exported from one solve for reuse in the next.

    ``basis`` holds the standard-form column index that is basic in each
    row; ``signature`` fingerprints the standard form it belongs to
    (row count, column count, and the per-variable encoding kinds).  A
    warm start is only attempted against an LP whose standard form has
    the identical signature — which is exactly the Algorithm-1 situation
    (same model, one cut rhs tightened) and the B&B parent→child situation
    (same model, one finite bound moved).  Anything else falls back to the
    cold two-phase solve.
    """

    basis: np.ndarray
    signature: Tuple

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "basis", np.asarray(self.basis, dtype=int).copy()
        )


@dataclass
class SimplexResult:
    """Solution report: status, point in the *original* variable space,
    objective value (including ``c0``), and iteration count.

    ``basis`` is populated (on optimal solves) only when the caller asked
    for it with ``want_basis=True``; ``warm_started`` records whether the
    reported solution actually came from the warm path rather than the
    two-phase fallback."""

    status: SimplexStatus
    x: Optional[np.ndarray]
    objective: Optional[float]
    iterations: int = 0
    phase1_objective: float = 0.0
    basis: Optional[WarmStartBasis] = None
    warm_started: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status is SimplexStatus.OPTIMAL


@dataclass
class _Transform:
    """Bookkeeping for mapping standard-form columns back to original vars.

    Each original variable maps to one of three encodings:

    * ``("shift", col, lb)``      — x = lb + y[col]
    * ``("reflect", col, ub)``    — x = ub - y[col]
    * ``("split", col+, col-)``   — x = y[col+] - y[col-]
    """

    encodings: List[Tuple] = field(default_factory=list)
    num_std_vars: int = 0

    def recover(self, y: np.ndarray) -> np.ndarray:
        x = np.zeros(len(self.encodings))
        for i, enc in enumerate(self.encodings):
            kind = enc[0]
            if kind == "shift":
                x[i] = enc[2] + y[enc[1]]
            elif kind == "reflect":
                x[i] = enc[2] - y[enc[1]]
            else:
                x[i] = y[enc[1]] - y[enc[2]]
        return x


class SimplexSolver:
    """Two-phase dense-tableau simplex.

    Parameters
    ----------
    max_iterations:
        Hard cap on pivots per phase; generous relative to problem size.
    bland_threshold:
        Number of degenerate pivots tolerated before switching from
        Dantzig's rule to Bland's anti-cycling rule.
    """

    def __init__(self, max_iterations: int = 20000, bland_threshold: int = 50) -> None:
        self.max_iterations = max_iterations
        self.bland_threshold = bland_threshold

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        lp: LinearProgram,
        warm_start: Optional[WarmStartBasis] = None,
        want_basis: bool = False,
    ) -> SimplexResult:
        """Solve the LP and return a :class:`SimplexResult`.

        ``warm_start`` (from a previous solve's ``result.basis``) skips
        phase 1 entirely: the stored basis is refactorized against the new
        constraint data, primal feasibility is restored with a handful of
        dual-simplex pivots, and phase 2 polishes to optimality.  Any sign
        of trouble — signature mismatch, singular or ill-conditioned
        basis, iteration budget, an infeasibility verdict — abandons the
        warm path and reruns the cold two-phase solve, so the result is
        the same with or without a warm start.  ``want_basis=True``
        attaches the optimal basis to the result for the next solve.
        """
        std, transform = self._to_standard_form(lp)
        if std is None:
            # A variable had lb > ub (caught upstream normally) or an
            # immediately contradictory bound row.
            return SimplexResult(SimplexStatus.INFEASIBLE, None, None)
        a, b, c = std
        signature = (
            a.shape[0], a.shape[1], tuple(e[0] for e in transform.encodings),
        )
        result: Optional[SimplexResult] = None
        basis: Optional[np.ndarray] = None
        warm_used = False
        if warm_start is not None and warm_start.signature == signature:
            warm = self._warm_solve(a, b, c, warm_start.basis)
            if warm is not None:
                result, basis = warm
                warm_used = True
        if result is None:
            result, basis = self._two_phase(a, b, c)
        # Per-solve (not per-pivot) instrumentation: two counter adds per
        # LP relaxation, invisible next to the pivoting work above.
        obs = get_active()
        obs.counter("simplex.solves").inc()
        obs.counter("simplex.pivots").inc(result.iterations)
        if warm_used:
            obs.counter("simplex.warm_solves").inc()
        if result.status is not SimplexStatus.OPTIMAL:
            result.warm_started = warm_used
            return result
        assert result.x is not None
        x_original = transform.recover(result.x)
        objective = float(lp.c @ x_original + lp.c0)
        exported = None
        if want_basis and basis is not None:
            exported = WarmStartBasis(basis=basis, signature=signature)
        return SimplexResult(
            SimplexStatus.OPTIMAL, x_original, objective, result.iterations,
            result.phase1_objective, basis=exported, warm_started=warm_used,
        )

    # -- warm-start path --------------------------------------------------------

    def _warm_solve(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, basis0: np.ndarray
    ) -> Optional[Tuple[SimplexResult, Optional[np.ndarray]]]:
        """Re-optimize from a previously optimal basis; None = go cold.

        The stored basis B is refactorized against the *new* (A, b) by one
        dense solve ``B⁻¹ [A | b]``.  Constraint-data changes that keep the
        signature (a cut rhs tightened, a variable bound moved) typically
        leave the basis dual-feasible but primal-infeasible in a few rows,
        which dual-simplex pivots repair; a final primal pass certifies
        optimality, so even a stale or dual-infeasible start still ends at
        a true optimum — or falls back cold.
        """
        m, n = a.shape
        basis = np.asarray(basis0, dtype=int)
        if m == 0 or basis.shape[0] != m:
            return None
        if np.any(basis < 0) or np.any(basis >= n):
            return None
        if len(np.unique(basis)) != m:
            return None
        try:
            sol = np.linalg.solve(
                a[:, basis], np.concatenate([a, b[:, None]], axis=1)
            )
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(sol)):
            return None
        tableau = np.ascontiguousarray(sol[:, :n])
        rhs = sol[:, n].copy()
        # Snap the basic columns to exact unit vectors: _optimize/_pivot
        # maintain this invariant and the refactorization only gives it up
        # to round-off.
        for i in range(m):
            tableau[:, basis[i]] = 0.0
            tableau[i, basis[i]] = 1.0

        iterations = 0
        while np.any(rhs < -EPS):
            if iterations >= self.max_iterations:
                return None
            # Dual simplex: leave the most infeasible row, enter the column
            # minimizing the dual ratio (first index on ties — deterministic).
            leaving = int(np.argmin(rhs))
            row = tableau[leaving]
            candidates = np.nonzero(row < -EPS)[0]
            if len(candidates) == 0:
                # Dual-simplex proof of primal infeasibility; let the cold
                # two-phase solve deliver that verdict through its own
                # (numerically independent) route.
                return None
            reduced = c - c[basis] @ tableau
            reduced[basis] = 0.0
            ratios = reduced[candidates] / -row[candidates]
            entering = int(candidates[np.argmin(ratios)])
            self._pivot(tableau, rhs, basis, leaving, entering)
            iterations += 1

        status, iters = self._optimize(tableau, rhs, c, basis)
        iterations += iters
        if status is SimplexStatus.ITERATION_LIMIT:
            return None
        if status is not SimplexStatus.OPTIMAL:
            # UNBOUNDED: a sound conclusion from a primal-feasible basis.
            return SimplexResult(status, None, None, iterations), None
        y = np.zeros(n)
        y[basis] = rhs
        return (
            SimplexResult(SimplexStatus.OPTIMAL, y, float(c @ y), iterations),
            basis,
        )

    # -- standard-form reduction ----------------------------------------------

    def _to_standard_form(
        self, lp: LinearProgram
    ) -> Tuple[Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]], _Transform]:
        n = lp.num_vars
        transform = _Transform()
        columns_per_var: List[List[Tuple[int, float]]] = []  # (std col, sign)
        shifts = np.zeros(n)  # contribution of the shift constant to each row
        extra_ub_rows: List[Tuple[int, float]] = []  # (std col, rhs) for y <= u

        col = 0
        for j in range(n):
            lb, ub = lp.bounds[j]
            if lb > ub:
                return None, transform
            if math.isfinite(lb):
                transform.encodings.append(("shift", col, lb))
                columns_per_var.append([(col, 1.0)])
                shifts[j] = lb
                if math.isfinite(ub):
                    extra_ub_rows.append((col, ub - lb))
                col += 1
            elif math.isfinite(ub):
                # Free below, bounded above: x = ub - y.
                transform.encodings.append(("reflect", col, ub))
                columns_per_var.append([(col, -1.0)])
                shifts[j] = ub
                col += 1
            else:
                transform.encodings.append(("split", col, col + 1))
                columns_per_var.append([(col, 1.0), (col + 1, -1.0)])
                shifts[j] = 0.0
                col += 2
        transform.num_std_vars = col

        m_ub, m_eq = lp.a_ub.shape[0], lp.a_eq.shape[0]
        m_bound = len(extra_ub_rows)
        m = m_ub + m_bound + m_eq
        num_slacks = m_ub + m_bound
        total_cols = col + num_slacks

        a = np.zeros((m, total_cols))
        b = np.zeros(m)
        c = np.zeros(total_cols)

        # Objective in transformed space.
        for j in range(n):
            for std_col, sign in columns_per_var[j]:
                c[std_col] += sign * lp.c[j]

        # Inequality rows, then bound rows, then equality rows.
        row = 0
        for i in range(m_ub):
            rhs = lp.b_ub[i] - float(lp.a_ub[i] @ shifts)
            for j in range(n):
                coeff = lp.a_ub[i, j]
                if coeff != 0.0:
                    for std_col, sign in columns_per_var[j]:
                        a[row, std_col] += sign * coeff
            a[row, col + row] = 1.0  # slack
            b[row] = rhs
            row += 1
        for std_col, rhs in extra_ub_rows:
            a[row, std_col] = 1.0
            a[row, col + row] = 1.0
            b[row] = rhs
            row += 1
        for i in range(m_eq):
            rhs = lp.b_eq[i] - float(lp.a_eq[i] @ shifts)
            for j in range(n):
                coeff = lp.a_eq[i, j]
                if coeff != 0.0:
                    for std_col, sign in columns_per_var[j]:
                        a[row, std_col] += sign * coeff
            b[row] = rhs
            row += 1

        # Normalize to b >= 0 (flipping rows, including their slack signs).
        for i in range(m):
            if b[i] < 0:
                a[i] *= -1.0
                b[i] *= -1.0
        return (a, b, c), transform

    # -- two-phase driver -------------------------------------------------------

    def _two_phase(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray
    ) -> Tuple[SimplexResult, Optional[np.ndarray]]:
        """Cold solve; returns the result and, on optimal solves whose
        final basis is artificial-free, the basis for warm-start export."""
        m, n = a.shape
        if m == 0:
            # No constraints: minimum of c'y over y >= 0 is 0 unless some
            # cost is negative, in which case the LP is unbounded.
            if np.any(c < -EPS):
                return SimplexResult(SimplexStatus.UNBOUNDED, None, None), None
            return SimplexResult(SimplexStatus.OPTIMAL, np.zeros(n), 0.0), None

        # Identify rows already covered by a positive slack column usable as
        # an initial basic variable; give the rest artificial variables.
        basis = np.full(m, -1, dtype=int)
        for j in range(n):
            col = a[:, j]
            nz = np.nonzero(np.abs(col) > EPS)[0]
            if len(nz) == 1 and abs(col[nz[0]] - 1.0) < EPS and basis[nz[0]] == -1:
                # Unit column: usable as basic if its cost-free (slack) — we
                # only accept columns whose value b[i] >= 0, always true here.
                basis[nz[0]] = j

        needs_artificial = [i for i in range(m) if basis[i] == -1]
        n_art = len(needs_artificial)
        total = n + n_art
        tableau = np.zeros((m, total))
        tableau[:, :n] = a
        for k, i in enumerate(needs_artificial):
            tableau[i, n + k] = 1.0
            basis[i] = n + k
        rhs = b.copy()

        iterations = 0
        phase1_obj = 0.0
        if n_art > 0:
            phase1_cost = np.zeros(total)
            phase1_cost[n:] = 1.0
            status, iters = self._optimize(tableau, rhs, phase1_cost, basis)
            iterations += iters
            if status is not SimplexStatus.OPTIMAL:
                return SimplexResult(status, None, None, iterations), None
            phase1_obj = float(
                sum(rhs[i] for i in range(m) if basis[i] >= n)
            )
            if phase1_obj > 1e-7:
                return SimplexResult(
                    SimplexStatus.INFEASIBLE, None, None, iterations, phase1_obj
                ), None
            # Drive any remaining (degenerate, zero-valued) artificials out
            # of the basis, or drop their rows if they are redundant.
            for i in range(m):
                if basis[i] >= n:
                    pivoted = False
                    for j in range(n):
                        if abs(tableau[i, j]) > 1e-7:
                            self._pivot(tableau, rhs, basis, i, j)
                            pivoted = True
                            break
                    if not pivoted:
                        # Redundant row: zero it so it never constrains.
                        tableau[i, :] = 0.0
                        rhs[i] = 0.0

        # Phase 2 on the real costs (artificial columns forbidden).
        phase2_cost = np.zeros(total)
        phase2_cost[:n] = c
        forbidden = np.zeros(total, dtype=bool)
        forbidden[n:] = True
        status, iters = self._optimize(tableau, rhs, phase2_cost, basis, forbidden)
        iterations += iters
        if status is not SimplexStatus.OPTIMAL:
            return SimplexResult(status, None, None, iterations, phase1_obj), None

        y = np.zeros(n)
        for i in range(m):
            if basis[i] < n:
                y[basis[i]] = rhs[i]
        # Export the basis only when fully artificial-free (a zeroed
        # redundant row keeps its artificial and cannot be refactorized
        # against a future A).
        exportable = basis.copy() if bool(np.all(basis < n)) else None
        return SimplexResult(
            SimplexStatus.OPTIMAL, y, float(c @ y), iterations, phase1_obj
        ), exportable

    # -- core pivoting loop -------------------------------------------------------

    def _optimize(
        self,
        tableau: np.ndarray,
        rhs: np.ndarray,
        cost: np.ndarray,
        basis: np.ndarray,
        forbidden: Optional[np.ndarray] = None,
    ) -> Tuple[SimplexStatus, int]:
        """Run primal simplex pivots in place until optimality."""
        m, total = tableau.shape
        degenerate_streak = 0
        use_bland = False
        for iteration in range(self.max_iterations):
            # Reduced costs: r = cost - cost_B' * B^-1 A, computed directly
            # from the maintained tableau (already in B^-1 A form).
            cost_basis = cost[basis]
            reduced = cost - cost_basis @ tableau
            reduced[basis] = 0.0
            if forbidden is not None:
                reduced = np.where(forbidden, np.inf, reduced)

            if use_bland:
                candidates = np.nonzero(reduced < -EPS)[0]
                if len(candidates) == 0:
                    return SimplexStatus.OPTIMAL, iteration
                entering = int(candidates[0])
            else:
                entering = int(np.argmin(reduced))
                if reduced[entering] >= -EPS:
                    return SimplexStatus.OPTIMAL, iteration

            column = tableau[:, entering]
            positive = column > EPS
            if not np.any(positive):
                return SimplexStatus.UNBOUNDED, iteration
            ratios = np.where(positive, rhs / np.where(positive, column, 1.0), np.inf)
            leaving = int(np.argmin(ratios))
            if use_bland:
                # Tie-break the ratio test by smallest basis index.
                best = ratios[leaving]
                ties = np.nonzero(np.abs(ratios - best) <= EPS)[0]
                leaving = int(min(ties, key=lambda i: basis[i]))

            if ratios[leaving] <= EPS:
                degenerate_streak += 1
                if degenerate_streak >= self.bland_threshold:
                    use_bland = True
            else:
                degenerate_streak = 0

            self._pivot(tableau, rhs, basis, leaving, entering)
        return SimplexStatus.ITERATION_LIMIT, self.max_iterations

    @staticmethod
    def _pivot(
        tableau: np.ndarray, rhs: np.ndarray, basis: np.ndarray, row: int, col: int
    ) -> None:
        """Gauss-Jordan pivot bringing ``col`` into the basis at ``row``.

        Fully vectorized: the elimination is a rank-1 update of the whole
        tableau, which keeps the per-pivot cost in BLAS rather than a
        Python row loop.
        """
        pivot = tableau[row, col]
        tableau[row] /= pivot
        rhs[row] /= pivot
        factors = tableau[:, col].copy()
        factors[row] = 0.0
        tableau -= np.outer(factors, tableau[row])
        rhs -= factors * rhs[row]
        # The pivot column must be exactly a unit vector; enforce it to
        # stop round-off from accumulating across pivots.
        tableau[:, col] = 0.0
        tableau[row, col] = 1.0
        basis[row] = col


def solve_lp(lp: LinearProgram, **kwargs) -> SimplexResult:
    """Convenience wrapper: solve an LP with default solver settings."""
    return SimplexSolver(**kwargs).solve(lp)
