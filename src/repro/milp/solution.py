"""Solve status and result types shared by all MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.milp.expr import Var


class SolveStatus(enum.Enum):
    """Outcome of a MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"

    @property
    def ok(self) -> bool:
        return self is SolveStatus.OPTIMAL


@dataclass
class SolveResult:
    """Result of solving a :class:`repro.milp.model.Model`.

    Attributes
    ----------
    status:
        Terminal status of the search.
    objective:
        Optimal objective value in the *model's* sense (a max model reports
        the maximum, not its negation), or ``None`` when no solution exists.
    values:
        Mapping from variable index to value at the optimum.
    nodes_explored:
        Number of branch-and-bound nodes processed.
    lp_iterations:
        Total simplex pivots across all node relaxations.
    incumbent_updates:
        How many times the search improved its best integral solution —
        1 on the Human Intranet models when best-bound search walks
        straight to the optimum; larger values indicate weak pruning.
    warm_lp_solves:
        Node relaxations solved from a warm-start basis rather than the
        cold two-phase path (see :mod:`repro.milp.simplex`).
    root_basis:
        The root relaxation's optimal basis, exported so the *next* solve
        of the same formulation (an Algorithm-1 cut iteration) can warm
        start; ``None`` when the root was infeasible or the solver was
        built with warm starts disabled.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[int, float] = field(default_factory=dict)
    nodes_explored: int = 0
    lp_iterations: int = 0
    incumbent_updates: int = 0
    warm_lp_solves: int = 0
    root_basis: Optional[object] = None

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value(self, var: Var) -> float:
        """Value of a variable at the optimum (integer-rounded if integral)."""
        raw = self.values[var.index]
        if var.is_integer:
            return float(round(raw))
        return raw

    def __repr__(self) -> str:
        obj = "None" if self.objective is None else f"{self.objective:.6g}"
        return (
            f"SolveResult({self.status.value}, objective={obj}, "
            f"nodes={self.nodes_explored})"
        )
