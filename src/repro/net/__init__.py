"""The WBAN network stack: PHY, MAC, routing, and application layers.

This package realizes the node architecture of the paper's Fig. 1 on top of
the :mod:`repro.des` kernel and the :mod:`repro.channel` models.  Each node
runs the four standard layers (Sec. 2.1.2):

* **Radio** (:mod:`repro.net.radio`) — broadcast transmission over the
  shared body channel with link-budget reception, collision/capture
  modeling, half-duplex constraint, and TX/RX energy accounting;
* **MAC** (:mod:`repro.net.mac_csma`, :mod:`repro.net.mac_tdma`) —
  non-persistent CSMA with random backoff (Castalia's TunableMAC
  configuration from Sec. 4.1) and round-robin TDMA with 1 ms slots;
* **Routing** (:mod:`repro.net.routing_star`,
  :mod:`repro.net.routing_flood`) — star relay through a coordinator and
  controlled flooding with hop counter and visited history;
* **Application** (:mod:`repro.net.app`) — periodic traffic generation
  with sequence numbers and the PDR bookkeeping of Eqs. 6-7.

:class:`repro.net.network.Network` assembles a complete simulation from a
:class:`repro.core.design_space.Configuration`.
"""

from repro.net.packet import Packet
from repro.net.stats import NodeStats, NetworkStats
from repro.net.radio import Radio, Medium, RadioState
from repro.net.node import Node
from repro.net.network import Network, SimulationOutcome, simulate_configuration

__all__ = [
    "Packet",
    "NodeStats",
    "NetworkStats",
    "Radio",
    "Medium",
    "RadioState",
    "Node",
    "Network",
    "SimulationOutcome",
    "simulate_configuration",
]
