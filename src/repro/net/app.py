"""Application layer: periodic traffic generation and PDR bookkeeping.

Each node generates L_pkt-byte payloads at the configured throughput φ
(packets per second, equal for all nodes — Sec. 2.1.2, χ_app).  The paper's
PDR estimator (Eq. 6) is defined over source/destination pairs, so
destinations rotate round-robin over all other nodes: every pair (i, k)
carries φ/(N−1) payloads per second and accumulates the per-pair statistics
``N^(s)_{i→k}`` and ``N^(r)_{i→k}``.

Sequence numbers identify payloads; the application counts each payload at
most once no matter how many relayed copies arrive (``unique packets`` in
the paper's wording).  A uniformly random initial phase desynchronizes the
generators so that CSMA does not see pathological simultaneous arrivals at
t = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.net.packet import Packet
from repro.net.stats import NodeStats


@dataclass(frozen=True)
class AppParameters:
    """χ_app: baseline power P_bl (mW), packet length L_pkt (bytes), and
    throughput φ (packets/second)."""

    baseline_mw: float = 0.1
    packet_bytes: int = 100
    throughput_pps: float = 10.0

    def __post_init__(self) -> None:
        if self.packet_bytes <= 0:
            raise ValueError("packet length must be positive")
        if self.throughput_pps <= 0:
            raise ValueError("throughput must be positive")
        if self.baseline_mw < 0:
            raise ValueError("baseline power cannot be negative")

    @property
    def period_s(self) -> float:
        return 1.0 / self.throughput_pps


class Application:
    """Traffic source/sink for one node."""

    def __init__(
        self,
        sim: Simulator,
        location: int,
        peers: List[int],
        params: AppParameters,
        stats: NodeStats,
        rng: RngStreams,
        routing_send,
        warmup_s: float = 0.0,
    ) -> None:
        if location in peers:
            raise ValueError("a node cannot be its own peer")
        self.sim = sim
        self.location = location
        self.peers = sorted(peers)
        self.params = params
        self.stats = stats
        self.rng = rng
        self.routing_send = routing_send
        self.warmup_s = warmup_s
        self._seq = 0
        self._dst_cursor = 0
        self._generation_stopped = False
        self._halted = False
        self._stop_at: Optional[float] = None
        if self.peers:
            phase = rng.uniform(f"app_phase/{location}", 0.0, params.period_s)
            sim.schedule(warmup_s + phase, self._generate)

    def stop_generation_at(self, t: float) -> None:
        """Stop creating new payloads at time t (lets in-flight packets
        drain before metrics are read, avoiding end-of-run truncation
        bias)."""
        self._stop_at = t

    def halt(self) -> None:
        """Permanently stop producing payloads (fault injection: a dead
        node creates no data).  Unlike :meth:`stop_generation_at`, this
        takes effect at the next scheduled generation regardless of its
        timestamp."""
        self._halted = True

    # -- traffic generation ---------------------------------------------------

    def _generate(self) -> None:
        if self._halted or (
            self._stop_at is not None and self.sim.now >= self._stop_at
        ):
            self._generation_stopped = True
            return
        destination = self.peers[self._dst_cursor % len(self.peers)]
        self._dst_cursor += 1
        packet = Packet(
            origin=self.location,
            seq=self._seq,
            destination=destination,
            length_bytes=self.params.packet_bytes,
            created_at=self.sim.now,
        )
        self._seq += 1
        self.stats.record_sent(destination, t=self.sim.now)
        self.routing_send(packet)
        self.sim.schedule(self.params.period_s, self._generate)

    # -- reception -----------------------------------------------------------------

    def on_receive(self, packet: Packet, rssi_dbm: float) -> None:
        """Called by the routing layer for every decoded copy; counts the
        payload once if this node is its destination."""
        if packet.destination != self.location:
            return
        self.stats.record_delivery(
            packet.origin,
            packet.uid,
            self.sim.now - packet.created_at,
            created_at=packet.created_at,
        )

    @property
    def packets_generated(self) -> int:
        return self._seq
