"""Common MAC machinery: the transmit queue (B_MAC) and the MAC interface.

A MAC owns a bounded FIFO of packet copies awaiting transmission.  The
buffer size is the χ_MAC parameter B_MAC; arrivals to a full buffer are
dropped and counted (a real loss mechanism the coarse analytical model
cannot see, and one of the reasons simulation is needed for PDR).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.des.engine import Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import MacOptions
from repro.net.packet import Packet
from repro.net.radio import Radio
from repro.net.stats import NodeStats


class MacBase:
    """Shared queueing behaviour for CSMA and TDMA MACs.

    Subclasses implement :meth:`_kick`, which must arrange for the head of
    the queue to eventually be transmitted, and are driven by the radio's
    transmission-complete callback through :meth:`_on_tx_done`.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        options: MacOptions,
        stats: NodeStats,
        rng: RngStreams,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.options = options
        self.stats = stats
        self.rng = rng
        self.queue: Deque[Packet] = deque()
        self._in_flight: Optional[Packet] = None
        radio.on_tx_done = self._on_tx_done

    @property
    def location(self) -> int:
        return self.radio.location

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet copy for transmission.

        Returns False (and counts a buffer drop) when B_MAC is exceeded.
        """
        if len(self.queue) >= self.options.buffer_size:
            self.stats.buffer_drops += 1
            return False
        self.queue.append(packet)
        self._kick()
        return True

    def _start_transmission(self) -> None:
        """Pop the queue head and put it on the air."""
        if self._in_flight is not None:
            raise RuntimeError(
                f"MAC at {self.location} started a transmission while one is in flight"
            )
        packet = self.queue.popleft()
        self._in_flight = packet
        self.radio.transmit(packet)

    def _on_tx_done(self, packet: Packet) -> None:
        self._in_flight = None
        self._after_tx()

    # -- subclass hooks ----------------------------------------------------------

    def _kick(self) -> None:
        """Called whenever new work may be available."""
        raise NotImplementedError

    def _after_tx(self) -> None:
        """Called when a transmission completes; default: look for more."""
        self._kick()
