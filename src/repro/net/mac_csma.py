"""Non-persistent CSMA, mirroring Castalia's TunableMAC configuration.

Protocol (Sec. 2.1.2 and 4.1): before transmitting, the node senses the
medium.  If idle, it transmits immediately.  If busy, *non-persistent*
access backs off for a random time drawn uniformly from the configured
window and then senses again (rather than continuously monitoring for the
idle transition, which is what makes the scheme collision-thrifty at the
price of extra latency).  Collisions still happen when two nodes sense an
idle medium within each other's vulnerable window or are hidden from each
other by the body (deep around-torso path loss below the carrier-sense
threshold) — both effects emerge naturally from the PHY model.

The persistent access mode (AM in χ_MAC) is also implemented: on busy
medium the node re-senses after a minimal spin interval, approximating
1-persistent listening within the event-driven framework.
"""

from __future__ import annotations

from typing import Optional

from repro.des.engine import Event, Simulator
from repro.des.rng import RngStreams
from repro.library.mac_options import CsmaAccessMode, MacOptions
from repro.net.mac_base import MacBase
from repro.net.radio import Radio
from repro.net.stats import NodeStats

#: Re-sense interval approximating continuous listening in persistent mode.
PERSISTENT_SPIN_S = 0.2e-3


class CsmaMac(MacBase):
    """Non-persistent (or persistent) CSMA MAC."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        options: MacOptions,
        stats: NodeStats,
        rng: RngStreams,
    ) -> None:
        super().__init__(sim, radio, options, stats, rng)
        self._pending_attempt: Optional[Event] = None
        self.backoffs = 0
        # Stream handle cached once: the backoff draw is on the contention
        # hot path and the name-keyed registry lookup is not.
        self._backoff_stream = rng.stream(f"csma_backoff/{self.location}")

    def _kick(self) -> None:
        if not self.queue or self._in_flight is not None:
            return
        if self._pending_attempt is not None and self._pending_attempt.pending:
            return  # an attempt is already scheduled
        self._pending_attempt = self.sim.schedule(0.0, self._attempt)

    def _attempt(self) -> None:
        self._pending_attempt = None
        if not self.queue or self._in_flight is not None:
            return
        busy = self.radio.medium.sensed_busy(
            self.location, self.options.carrier_sense_dbm
        )
        if not busy:
            self._start_transmission()
            return
        self.backoffs += 1
        if self.options.access_mode is CsmaAccessMode.NON_PERSISTENT:
            delay = float(
                self._backoff_stream.uniform(
                    self.options.csma_backoff_min_s,
                    self.options.csma_backoff_max_s,
                )
            )
        else:
            delay = PERSISTENT_SPIN_S
        self._pending_attempt = self.sim.schedule(delay, self._attempt)
